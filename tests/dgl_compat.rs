//! The paper's §5.3 integration path: DGL-style `update_all` /
//! `apply_edges` calls lower onto uGrapher operators and run on any
//! backend, with identical results.

use ugrapher::baselines::{DglBackend, PygBackend};
use ugrapher::gnn::dgl_compat::{apply_edges, update_all, MessageFn, ReduceFn};
use ugrapher::gnn::{GraphOpBackend, UGrapherBackend};
use ugrapher::graph::generate::uniform_random;
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

#[test]
fn update_all_agrees_across_backends() {
    let g = uniform_random(120, 700, 21);
    let h = Tensor2::from_fn(120, 6, |r, c| ((r * 3 + c) % 9) as f32 * 0.5);
    let w = Tensor2::from_fn(700, 1, |r, _| 1.0 + (r % 4) as f32);

    let device = DeviceConfig::v100();
    let dgl = DglBackend::new(device.clone());
    let pyg = PygBackend::new(device.clone());
    let ug = UGrapherBackend::quick(device);
    let backends: [&dyn GraphOpBackend; 3] = [&dgl, &pyg, &ug];

    for (message, needs_b) in [
        (MessageFn::CopyU, false),
        (MessageFn::UMulE, true),
        (MessageFn::UAddV, true),
    ] {
        for reduce in [ReduceFn::Sum, ReduceFn::Max, ReduceFn::Mean] {
            let b = if message == MessageFn::UAddV { &h } else { &w };
            let mut reference: Option<Tensor2> = None;
            for backend in backends {
                let (out, _) =
                    update_all(&g, message, reduce, Some(&h), needs_b.then_some(b), backend)
                        .unwrap_or_else(|e| {
                            panic!("{} {message:?}/{reduce:?}: {e}", backend.name())
                        });
                match &reference {
                    Some(r) => assert!(
                        out.approx_eq(r, 1e-4).unwrap(),
                        "{} diverged on {message:?}/{reduce:?}",
                        backend.name()
                    ),
                    None => reference = Some(out),
                }
            }
        }
    }
}

#[test]
fn apply_edges_matches_direct_computation() {
    let g = uniform_random(40, 160, 22);
    let h = Tensor2::from_fn(40, 3, |r, c| (r * 10 + c) as f32);
    let backend = UGrapherBackend::quick(DeviceConfig::v100());
    let (out, _) = apply_edges(&g, MessageFn::USubV, Some(&h), Some(&h), &backend).unwrap();
    let coo = g.to_coo();
    for (e, (u, v)) in coo.iter_edges().enumerate() {
        for c in 0..3 {
            assert_eq!(
                out[(e, c)],
                h[(u as usize, c)] - h[(v as usize, c)],
                "edge {e} feature {c}"
            );
        }
    }
}

#[test]
fn string_names_round_trip_like_dgl() {
    // DGL passes built-ins by name; the integration recognises them.
    for name in ["copy_u", "u_mul_e", "u_add_v", "e_div_v"] {
        assert!(MessageFn::parse(name).is_some(), "{name}");
    }
    for name in ["sum", "max", "min", "mean"] {
        assert!(ReduceFn::parse(name).is_some(), "{name}");
    }
}
