//! Qualitative claims of the paper, checked end-to-end on the simulator at
//! reduced scale. These are the *shape* properties the reproduction must
//! preserve (DESIGN.md §2): who wins where, and why.

use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::api::Runtime;
use ugrapher::core::exec::{Fidelity, MeasureOptions};
use ugrapher::core::schedule::{ParallelInfo, Strategy};
use ugrapher::core::tune::grid_search_space;
use ugrapher::graph::datasets::{by_abbrev, Scale};
use ugrapher::sim::DeviceConfig;

const SCALE: Scale = Scale::Ratio(0.03);

fn options() -> MeasureOptions {
    MeasureOptions::auto(DeviceConfig::v100())
}

/// Fig. 7 / §4.3: the optimal basic strategy differs across datasets and
/// feature sizes — no single fixed strategy wins everywhere.
#[test]
fn no_single_basic_strategy_wins_everywhere() {
    let mut winners = std::collections::HashSet::new();
    for abbrev in ["CI", "PR", "AR", "SB", "TW"] {
        for feat in [8usize, 16] {
            let graph = by_abbrev(abbrev).unwrap().build(SCALE);
            let res = grid_search_space(
                &graph,
                &OpInfo::aggregation_sum(),
                feat,
                &options(),
                &ParallelInfo::basics(),
            )
            .unwrap();
            winners.insert(res.best.strategy);
        }
    }
    assert!(
        winners.len() >= 2,
        "expected multiple optimal strategies across datasets, got {winners:?}"
    );
}

/// §2.2 / Fig. 3: under DGL's fixed kernel, degree-imbalanced graphs achieve
/// lower occupancy than balanced ones.
#[test]
fn imbalanced_graphs_get_lower_occupancy_under_fixed_kernels() {
    let rt = Runtime::new(DeviceConfig::v100());
    let occ = |abbrev: &str| {
        let g = by_abbrev(abbrev).unwrap().build(SCALE);
        rt.measure_only(
            &g,
            &OpInfo::aggregation_sum(),
            32,
            ParallelInfo::basic(Strategy::WarpVertex),
        )
        .unwrap()
        .achieved_occupancy
    };
    // AR and SB are the paper's imbalance examples, PR and DD the balanced
    // ones (Fig. 3).
    let imbalanced = (occ("AR") + occ("SB")) / 2.0;
    let balanced = (occ("PR") + occ("DD")) / 2.0;
    assert!(
        imbalanced < balanced,
        "imbalanced occ {imbalanced} !< balanced occ {balanced}"
    );
}

/// §2.2 / Fig. 3: small graphs get lower SM efficiency (not enough blocks)
/// but higher L2 hit rates (working set fits) than large graphs.
#[test]
fn small_graphs_low_sm_efficiency_high_cache_hit() {
    let rt = Runtime::new(DeviceConfig::v100()).with_fidelity(Fidelity::Full);
    let metrics = |abbrev: &str, scale: Scale| {
        let g = by_abbrev(abbrev).unwrap().build(scale);
        let r = rt
            .measure_only(
                &g,
                &OpInfo::aggregation_sum(),
                32,
                ParallelInfo::basic(Strategy::WarpVertex),
            )
            .unwrap();
        (r.sm_efficiency, r.l2_hit_rate)
    };
    // CO/CI are the paper's small graphs; SW/OV its large ones. Keep small
    // graphs at full size (they are tiny) and scale the large ones down.
    let (sm_small, l2_small) = metrics("CO", Scale::Full);
    let (sm_large, l2_large) = metrics("SW", Scale::Ratio(0.05));
    assert!(
        sm_small < sm_large,
        "small-graph SM efficiency {sm_small} !< large-graph {sm_large}"
    );
    assert!(
        l2_small > l2_large,
        "small-graph L2 hit {l2_small} !> large-graph {l2_large}"
    );
}

/// Fig. 17: fine-grained knobs matter — the tuned optimum beats the best
/// basic strategy for at least some (operator, dataset) pairs.
#[test]
fn knobs_beat_basic_strategies_somewhere() {
    let mut improved = false;
    for abbrev in ["AR", "TW", "PU"] {
        let graph = by_abbrev(abbrev).unwrap().build(SCALE);
        let op = OpInfo::aggregation_sum();
        let basic = grid_search_space(&graph, &op, 32, &options(), &ParallelInfo::basics())
            .unwrap()
            .best_time_ms;
        let full = grid_search_space(&graph, &op, 32, &options(), &ParallelInfo::space())
            .unwrap()
            .best_time_ms;
        assert!(full <= basic + 1e-12, "full space contains the basics");
        if full < basic * 0.95 {
            improved = true;
        }
    }
    assert!(improved, "grouping/tiling never improved on basics");
}

/// Table 6: thread-edge needs atomics (work-efficiency loss), vertex
/// strategies do not; warp strategies launch more parallelism.
#[test]
fn tradeoff_table_directions_hold() {
    let g = by_abbrev("PU").unwrap().build(SCALE);
    let rt = Runtime::new(DeviceConfig::v100());
    let run = |s: Strategy| {
        rt.measure_only(&g, &OpInfo::aggregation_sum(), 32, ParallelInfo::basic(s))
            .unwrap()
    };
    let tv = run(Strategy::ThreadVertex);
    let te = run(Strategy::ThreadEdge);
    let wv = run(Strategy::WarpVertex);
    let we = run(Strategy::WarpEdge);

    // Work-efficiency: only edge-parallel reductions pay atomics.
    assert_eq!(tv.atomic_ops, 0.0);
    assert_eq!(wv.atomic_ops, 0.0);
    assert!(te.atomic_ops > 0.0);
    assert!(we.atomic_ops > 0.0);

    // Parallelism: warp variants launch more concurrent work than their
    // thread counterparts (more warps for the same items).
    assert!(wv.achieved_occupancy >= tv.achieved_occupancy);
    assert!(we.achieved_occupancy >= te.achieved_occupancy);
}

/// §7.3: the V100 (fewer SMs) favors vertex/locality strategies at least as
/// often as the A100, which has more SMs to feed.
#[test]
fn devices_can_prefer_different_schedules() {
    let mut differs = false;
    for abbrev in ["CO", "PR", "AR", "TW"] {
        let graph = by_abbrev(abbrev).unwrap().build(SCALE);
        let op = OpInfo::aggregation_sum();
        let on = |device: DeviceConfig| {
            grid_search_space(
                &graph,
                &op,
                16,
                &MeasureOptions::auto(device),
                &ParallelInfo::space(),
            )
            .unwrap()
            .best
        };
        if on(DeviceConfig::v100()) != on(DeviceConfig::a100()) {
            differs = true;
            break;
        }
    }
    assert!(
        differs,
        "V100 and A100 chose identical schedules everywhere"
    );
}
