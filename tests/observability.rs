//! Integration tests for the observability layer: span accounting of a
//! budgeted grid search through the public `Runtime` API, trace-id joins,
//! and the zero-cost-when-disabled contract.

use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::api::{GraphTensor, OpArgs, Runtime};
use ugrapher::core::schedule::ParallelInfo;
use ugrapher::core::tune::TuneBudget;
use ugrapher::graph::generate::uniform_random;
use ugrapher::graph::Graph;
use ugrapher::obs::{AttrValue, Recorder, RingHandle, Span, SpanKind};
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

const FEAT: usize = 8;

fn setup() -> (Graph, Tensor2) {
    let g = uniform_random(200, 1200, 3);
    let x = Tensor2::from_fn(g.num_vertices(), FEAT, |r, c| ((r + 2 * c) % 5) as f32);
    (g, x)
}

fn ring_recorder() -> (Recorder, RingHandle) {
    let mut b = Recorder::builder();
    let ring = b.ring(4096);
    (b.build(), ring)
}

fn named<'a>(spans: &'a [Span], name: &str) -> Vec<&'a Span> {
    spans.iter().filter(|s| s.name == name).collect()
}

/// Satellite (c): a grid search under `TuneBudget::max_candidates(N)`
/// records exactly N `tune.candidate` spans, and the schedule attribute of
/// the `tune.choose` / `ugrapher.run` spans matches the schedule the
/// result reports.
#[test]
fn budgeted_search_records_exactly_budget_many_candidate_spans() {
    let (g, x) = setup();
    let graph = GraphTensor::new(&g);
    let (rec, ring) = ring_recorder();
    let budget = 3;
    let space = ParallelInfo::basics();
    assert!(budget < space.len(), "budget must actually truncate");
    let rt = Runtime::new(DeviceConfig::v100())
        .with_recorder(rec)
        .with_search_space(space)
        .with_tune_budget(TuneBudget::max_candidates(budget));
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);
    let res = rt.run(&graph, &args, None).expect("run succeeds");

    let spans = ring.snapshot();
    let candidates = named(&spans, "tune.candidate");
    assert_eq!(
        candidates.len(),
        budget,
        "one span per measured candidate, stopped by the budget"
    );
    let labels: Vec<String> = candidates
        .iter()
        .map(|s| s.attr_str("schedule").expect("candidate has schedule attr"))
        .collect();
    assert!(
        labels.contains(&res.schedule.label()),
        "chosen schedule {} must be among the measured candidates {labels:?}",
        res.schedule.label()
    );

    // The choose and run spans both report the schedule the result carries.
    let choose = named(&spans, "tune.choose");
    assert_eq!(choose.len(), 1);
    assert_eq!(
        choose[0].attr_str("schedule"),
        Some(res.schedule.label()),
        "tune.choose schedule attr matches UGrapherResult"
    );
    let run = named(&spans, "ugrapher.run");
    assert_eq!(run.len(), 1);
    assert_eq!(run[0].attr_str("schedule"), Some(res.schedule.label()));
    assert_eq!(run[0].attr("ok"), Some(&AttrValue::Bool(true)));

    // The truncated search is reported as a downgrade, not an error.
    assert!(
        res.robustness.degraded(),
        "budget truncation records a downgrade"
    );
}

/// Every span of one `Runtime::run` carries the result's trace id, so a
/// trace can be joined back to the invocation after the fact.
#[test]
fn all_spans_of_a_run_share_the_results_trace_id() {
    let (g, x) = setup();
    let graph = GraphTensor::new(&g);
    let (rec, ring) = ring_recorder();
    let rt = Runtime::new(DeviceConfig::v100())
        .with_recorder(rec)
        .with_search_space(ParallelInfo::basics());
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);
    let res = rt.run(&graph, &args, None).expect("run succeeds");

    assert_ne!(res.trace_id, 0, "trace ids are non-zero even untraced");
    assert_eq!(res.robustness.trace_id, res.trace_id);
    let spans = ring.snapshot();
    assert!(!spans.is_empty());
    for span in &spans {
        assert_eq!(
            span.trace_id, res.trace_id,
            "span {} must join the run's trace",
            span.name
        );
    }
    // The full stack is represented: runtime, tuner, exec, and kernels.
    for name in [
        "ugrapher.run",
        "tune.choose",
        "tune.candidate",
        "exec.functional",
        "sim.kernel",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "expected a {name} span in {:?}",
            spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }
    // Kernel spans carry the SimReport metric set as attributes.
    let kernel = named(&spans, "sim.kernel");
    for attr in ["schedule", "time_ms", "dram_bytes", "achieved_occupancy"] {
        assert!(
            kernel[0].attr(attr).is_some(),
            "sim.kernel span missing {attr}"
        );
    }
}

/// An explicit-schedule run emits no tuner spans and still stamps its
/// schedule and trace id.
#[test]
fn explicit_schedule_skips_tuner_spans() {
    let (g, x) = setup();
    let graph = GraphTensor::new(&g);
    let (rec, ring) = ring_recorder();
    let rt = Runtime::new(DeviceConfig::v100()).with_recorder(rec);
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);
    let schedule = ParallelInfo::basics()[0];
    let res = rt.run(&graph, &args, Some(schedule)).expect("run succeeds");

    assert_eq!(res.schedule, schedule);
    let spans = ring.snapshot();
    assert!(named(&spans, "tune.candidate").is_empty());
    assert!(named(&spans, "tune.choose").is_empty());
    let run = named(&spans, "ugrapher.run");
    assert_eq!(run.len(), 1);
    assert_eq!(
        run[0].attr("explicit_schedule"),
        Some(&AttrValue::Bool(true))
    );
    assert_eq!(run[0].kind, SpanKind::Runtime);
    // Exactly one kernel measurement: the executed schedule itself.
    assert_eq!(named(&spans, "sim.kernel").len(), 1);
}

/// The disabled recorder changes nothing about the computation: identical
/// output, schedule, and report as a traced run.
#[test]
fn disabled_recorder_is_behavior_preserving() {
    let (g, x) = setup();
    let graph = GraphTensor::new(&g);
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);
    let (rec, ring) = ring_recorder();
    let traced = Runtime::new(DeviceConfig::v100())
        .with_recorder(rec)
        .with_search_space(ParallelInfo::basics())
        .run(&graph, &args, None)
        .expect("traced run");
    let silent = Runtime::new(DeviceConfig::v100())
        .with_recorder(Recorder::disabled())
        .with_search_space(ParallelInfo::basics())
        .run(&graph, &args, None)
        .expect("silent run");

    assert!(!ring.snapshot().is_empty(), "traced run recorded spans");
    assert_eq!(traced.schedule, silent.schedule);
    assert_eq!(traced.report, silent.report);
    assert_eq!(traced.output.as_slice(), silent.output.as_slice());
    assert_ne!(traced.trace_id, silent.trace_id, "ids stay unique");
}
