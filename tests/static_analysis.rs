//! Cross-crate checks for the static analyzer through the umbrella crate:
//! the `ugrapher::analyze` re-exports must compose with the graph, core and
//! sim crates exactly as the README advertises.

use ugrapher::analyze::{analyze_static, audit_plan, cross_check, AnalyzeError};
use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::ir::{AccessPattern, DeterminismClass};
use ugrapher::core::plan::KernelPlan;
use ugrapher::core::schedule::{ParallelInfo, Strategy};
use ugrapher::graph::generate::uniform_random;
use ugrapher::sim::DeviceConfig;

const FEAT: usize = 8;

#[test]
fn readme_analyze_snippet_holds() {
    let graph = uniform_random(100, 800, 42);
    let op = OpInfo::aggregation_sum();
    let schedule = ParallelInfo::basic(Strategy::ThreadEdge);

    let report = analyze_static(&graph, op, schedule, FEAT).expect("static analysis succeeds");
    assert!(report.race.needs_atomic);
    assert!(report.race.witness.is_some());
    assert!(report.is_clean());
    assert!(report.bounds.num_accesses() >= 2);
    assert_eq!(
        report.determinism.class,
        DeterminismClass::AtomicOrderDependent
    );

    let check = cross_check(&graph, op, schedule, FEAT, &DeviceConfig::v100())
        .expect("dynamic cross-check succeeds");
    assert!(check.observed_conflicts());
}

#[test]
fn static_verdict_matches_dynamic_oracle_across_strategies() {
    let graph = uniform_random(80, 600, 7);
    let op = OpInfo::aggregation_max();
    for strategy in Strategy::ALL {
        let schedule = ParallelInfo::basic(strategy);
        let report = analyze_static(&graph, op, schedule, FEAT).expect("static analysis succeeds");
        let check = cross_check(&graph, op, schedule, FEAT, &DeviceConfig::v100())
            .expect("dynamic cross-check succeeds");
        assert_eq!(
            report.race.witness.is_some(),
            check.observed_conflicts(),
            "witness/conflict disagreement under {schedule}"
        );
    }
}

#[test]
fn tampered_plan_is_rejected_by_audit() {
    let graph = uniform_random(60, 400, 3);
    let schedule = ParallelInfo::basic(Strategy::WarpEdge);
    let mut plan = KernelPlan::generate(
        OpInfo::aggregation_sum(),
        schedule,
        graph.num_vertices(),
        graph.num_edges(),
        FEAT,
    )
    .expect("plan generation succeeds");
    assert!(plan.needs_atomic);

    // Simulate a cached/deserialized plan whose atomic flag was dropped.
    plan.needs_atomic = false;
    match audit_plan(&graph, &plan) {
        Err(AnalyzeError::AtomicMismatch { derived_atomic, .. }) => assert!(derived_atomic),
        other => panic!("expected AtomicMismatch, got {other:?}"),
    }
}

#[test]
fn ir_verifier_passes_surface_through_the_report() {
    let graph = uniform_random(100, 800, 5);
    let op = OpInfo::aggregation_sum();

    // Edge-parallel sum: atomic, order-dependent, gathered input.
    let report = analyze_static(&graph, op, ParallelInfo::basic(Strategy::ThreadEdge), FEAT)
        .expect("static analysis succeeds");
    assert!(report.bounds.num_accesses() >= 2, "every access is proved");
    assert_eq!(
        report.determinism.class,
        DeterminismClass::AtomicOrderDependent
    );
    assert!(report.ir.store_races());
    assert_eq!(report.access.a, Some(AccessPattern::Gather));
    assert!(
        report.cuda.contains("atomicAdd"),
        "report IR renders the CUDA"
    );

    // Vertex-parallel sum: sequential reduction, no atomics anywhere.
    let report = analyze_static(
        &graph,
        op,
        ParallelInfo::basic(Strategy::ThreadVertex),
        FEAT,
    )
    .expect("static analysis succeeds");
    assert_eq!(report.determinism.class, DeterminismClass::Sequential);
    assert!(report.determinism.class.bitwise_deterministic());
    assert!(!report.ir.store_races());
    assert!(!report.cuda.contains("atomicAdd(") && !report.cuda.contains("atomicCAS("));
}

#[test]
fn quick_sweep_labels_every_combo_and_exports_json() {
    use ugrapher::analyze::{analyze_registry, SweepConfig};
    let cfg = SweepConfig::quick();
    let report = analyze_registry(&DeviceConfig::v100(), &cfg);
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.bounds_proved, report.combos_checked);
    assert_eq!(report.determinism.total(), report.combos_checked);
    assert_ne!(report.trace_id, 0);
    let json = report.to_json();
    let v = ugrapher::util::json::parse(&json).expect("report JSON parses");
    assert_eq!(
        v.field("bounds_proved").unwrap().as_f64().unwrap() as usize,
        report.combos_checked
    );
    assert!(v.field("clean").unwrap().as_bool().unwrap());
    // Verifier-pass outcomes land in the process-wide metrics registry
    // (counters are cumulative, so only lower-bound them).
    use ugrapher::obs::{metrics, MetricsRegistry};
    let m = MetricsRegistry::global();
    let pass = |v: &str| m.counter(&metrics::labeled(metrics::ANALYZE_VERIFIER, "pass", v));
    assert!(pass("bounds-ok") >= report.bounds_proved as u64);
    assert!(pass("race-ok") >= report.bounds_proved as u64);
    assert!(pass("dynamic-ok") >= report.combos_checked as u64);
    let class = |v: &str| m.counter(&metrics::labeled(metrics::ANALYZE_DETERMINISM, "class", v));
    assert!(class("sequential") >= report.determinism.sequential as u64);
    assert!(class("atomic-order-dependent") >= report.determinism.atomic_order_dependent as u64);
}
