//! Cross-crate checks for the static analyzer through the umbrella crate:
//! the `ugrapher::analyze` re-exports must compose with the graph, core and
//! sim crates exactly as the README advertises.

use ugrapher::analyze::{analyze_static, audit_plan, cross_check, AnalyzeError};
use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::plan::KernelPlan;
use ugrapher::core::schedule::{ParallelInfo, Strategy};
use ugrapher::graph::generate::uniform_random;
use ugrapher::sim::DeviceConfig;

const FEAT: usize = 8;

#[test]
fn readme_analyze_snippet_holds() {
    let graph = uniform_random(100, 800, 42);
    let op = OpInfo::aggregation_sum();
    let schedule = ParallelInfo::basic(Strategy::ThreadEdge);

    let report = analyze_static(&graph, op, schedule, FEAT).expect("static analysis succeeds");
    assert!(report.race.needs_atomic);
    assert!(report.race.witness.is_some());
    assert!(report.is_clean());

    let check = cross_check(&graph, op, schedule, FEAT, &DeviceConfig::v100())
        .expect("dynamic cross-check succeeds");
    assert!(check.observed_conflicts());
}

#[test]
fn static_verdict_matches_dynamic_oracle_across_strategies() {
    let graph = uniform_random(80, 600, 7);
    let op = OpInfo::aggregation_max();
    for strategy in Strategy::ALL {
        let schedule = ParallelInfo::basic(strategy);
        let report = analyze_static(&graph, op, schedule, FEAT).expect("static analysis succeeds");
        let check = cross_check(&graph, op, schedule, FEAT, &DeviceConfig::v100())
            .expect("dynamic cross-check succeeds");
        assert_eq!(
            report.race.witness.is_some(),
            check.observed_conflicts(),
            "witness/conflict disagreement under {schedule}"
        );
    }
}

#[test]
fn tampered_plan_is_rejected_by_audit() {
    let graph = uniform_random(60, 400, 3);
    let schedule = ParallelInfo::basic(Strategy::WarpEdge);
    let mut plan = KernelPlan::generate(
        OpInfo::aggregation_sum(),
        schedule,
        graph.num_vertices(),
        graph.num_edges(),
        FEAT,
    )
    .expect("plan generation succeeds");
    assert!(plan.needs_atomic);

    // Simulate a cached/deserialized plan whose atomic flag was dropped.
    plan.needs_atomic = false;
    match audit_plan(&graph, &plan) {
        Err(AnalyzeError::AtomicMismatch { derived_atomic, .. }) => assert!(derived_atomic),
        other => panic!("expected AtomicMismatch, got {other:?}"),
    }
}
