//! Adversarial inputs against the hardened execution pipeline.
//!
//! Every case here feeds the public API something hostile — degenerate
//! graphs, poisoned tensors, illegal schedules, faulty simulators — and
//! asserts the same contract throughout: a typed [`CoreError`] or a
//! correct result, never a panic, and valid inputs always agree with the
//! functional executor.

use ugrapher::core::abstraction::{registry, OpInfo, TensorType};
use ugrapher::core::api::{uGrapher, GraphTensor, OpArgs, Runtime};
use ugrapher::core::exec::{execute, OpOperands};
use ugrapher::core::schedule::{ParallelInfo, Strategy};
use ugrapher::core::tune::TuneBudget;
use ugrapher::core::CoreError;
use ugrapher::graph::generate::uniform_random;
use ugrapher::graph::{Coo, Graph};
use ugrapher::sim::{Access, DeviceConfig, Fault, FaultInjector, LaunchConfig};
use ugrapher::tensor::Tensor2;

const STRATEGIES: [Strategy; 4] = [
    Strategy::ThreadVertex,
    Strategy::ThreadEdge,
    Strategy::WarpVertex,
    Strategy::WarpEdge,
];

/// The adversarial graph zoo: `(name, graph)`.
fn hostile_graphs() -> Vec<(&'static str, Graph)> {
    let coo = |nv, src: Vec<u32>, dst: Vec<u32>| {
        Graph::from_coo(&Coo::new(nv, src, dst).expect("test edges are in bounds"))
    };
    let mut star_src = Vec::new();
    let mut star_dst = Vec::new();
    for v in 1..64u32 {
        // Every spoke feeds the hub and the hub feeds every spoke:
        // one vertex carries essentially all edges.
        star_src.push(v);
        star_dst.push(0);
        star_src.push(0);
        star_dst.push(v);
    }
    vec![
        ("empty graph", coo(0, vec![], vec![])),
        ("single vertex, no edges", coo(1, vec![], vec![])),
        ("single vertex, self-loop", coo(1, vec![0], vec![0])),
        (
            "self-loops everywhere",
            coo(5, vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3, 4]),
        ),
        (
            "duplicate parallel edges",
            coo(3, vec![0, 0, 0, 0, 1], vec![1, 1, 1, 1, 2]),
        ),
        ("extreme skew (star hub)", coo(64, star_src, star_dst)),
        ("isolated tail vertices", coo(10, vec![0, 1], vec![1, 0])),
    ]
}

/// An operand tensor matching `t` for `graph`, with deterministic non-zero
/// values.
fn tensor_for(t: TensorType, graph: &Graph, feat: usize, salt: usize) -> Option<Tensor2> {
    let rows = match t {
        TensorType::SrcV | TensorType::DstV => graph.num_vertices(),
        TensorType::Edge => graph.num_edges(),
        TensorType::Null => return None,
    };
    Some(Tensor2::from_fn(rows, feat, |r, c| {
        ((r * 31 + c * 7 + salt * 13) % 17) as f32 * 0.25 + 0.5
    }))
}

fn run_case(
    rt: &Runtime,
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    schedule: ParallelInfo,
    context: &str,
) {
    let a = tensor_for(op.a, graph, feat, 1);
    let b = tensor_for(op.b, graph, feat, 2);
    let operands = match (&a, &b) {
        (Some(a), Some(b)) => OpOperands::pair(a, b),
        (Some(a), None) => OpOperands::single(a),
        _ => return,
    };
    let args = OpArgs { op: *op, operands };
    let gt = GraphTensor::new(graph);
    match rt.run(&gt, &args, Some(schedule)) {
        Ok(res) => {
            // A run that succeeds must agree with the functional executor.
            let reference = execute(graph, op, &operands)
                .unwrap_or_else(|e| panic!("{context}: executor rejected what run accepted: {e}"));
            assert_eq!(res.output, reference, "{context}: output diverges");
        }
        Err(e) => {
            // A run that fails must fail with a *typed input* error; the
            // panic shield variant means a bug slipped through.
            assert!(
                e.is_input_error(),
                "{context}: expected input error, got {e:?}"
            );
        }
    }
}

#[test]
fn hostile_graphs_never_panic_and_match_the_executor() {
    let rt = Runtime::new(DeviceConfig::v100());
    for (name, graph) in hostile_graphs() {
        assert!(
            graph.validate().is_ok(),
            "{name}: constructor produced an invalid graph"
        );
        for strategy in STRATEGIES {
            for schedule in [
                ParallelInfo::basic(strategy),
                ParallelInfo {
                    strategy,
                    grouping: 64,
                    tiling: 64,
                },
            ] {
                run_case(
                    &rt,
                    &graph,
                    &OpInfo::aggregation_sum(),
                    4,
                    schedule,
                    &format!("{name} / {strategy:?} / {schedule:?}"),
                );
            }
        }
    }
}

#[test]
fn every_valid_op_on_hostile_graphs_is_safe() {
    let rt = Runtime::new(DeviceConfig::v100());
    for (name, graph) in hostile_graphs() {
        for op in registry::all_valid_ops() {
            run_case(
                &rt,
                &graph,
                &op,
                3,
                ParallelInfo::basic(Strategy::ThreadEdge),
                &format!("{name} / {op:?}"),
            );
        }
    }
}

#[test]
fn nan_features_are_typed_errors_under_every_strategy() {
    let g = uniform_random(40, 160, 21);
    let gt = GraphTensor::new(&g);
    let rt = Runtime::new(DeviceConfig::v100());
    for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut x = Tensor2::full(40, 4, 1.0);
        x[(13, 1)] = poison;
        for strategy in STRATEGIES {
            let err = rt
                .run(
                    &gt,
                    &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                    Some(ParallelInfo::basic(strategy)),
                )
                .unwrap_err();
            assert!(
                matches!(err, CoreError::TensorInvalid { .. }),
                "{poison} under {strategy:?}: {err:?}"
            );
        }
    }
}

#[test]
fn zero_feature_dim_is_a_typed_error_under_every_strategy() {
    let g = uniform_random(20, 60, 22);
    let gt = GraphTensor::new(&g);
    let rt = Runtime::new(DeviceConfig::v100());
    let x = Tensor2::zeros(20, 0);
    for strategy in STRATEGIES {
        let err = rt
            .run(
                &gt,
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(ParallelInfo::basic(strategy)),
            )
            .unwrap_err();
        assert!(err.is_input_error(), "{strategy:?}: {err:?}");
    }
}

#[test]
fn illegal_schedules_are_rejected_not_executed() {
    let g = uniform_random(30, 120, 23);
    let gt = GraphTensor::new(&g);
    let x = Tensor2::full(30, 4, 1.0);
    let rt = Runtime::new(DeviceConfig::v100());
    for (grouping, tiling) in [(0, 1), (1, 0), (0, 0)] {
        let bad = ParallelInfo {
            strategy: Strategy::WarpVertex,
            grouping,
            tiling,
        };
        let err = rt
            .run(
                &gt,
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(bad),
            )
            .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidSchedule { .. }),
            "G={grouping} T={tiling}: {err:?}"
        );
    }
    // Off-grid but non-zero knobs are legal: they run and stay correct.
    for (grouping, tiling) in [(3, 1), (1, 999)] {
        let odd = ParallelInfo {
            strategy: Strategy::WarpVertex,
            grouping,
            tiling,
        };
        let res = rt
            .run(
                &gt,
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(odd),
            )
            .unwrap();
        for v in 0..30 {
            assert_eq!(res.output[(v, 0)], g.in_degree(v) as f32);
        }
    }
}

#[test]
fn auto_tuning_survives_hostile_graphs_with_a_tight_budget() {
    let rt = Runtime::new(DeviceConfig::v100())
        .with_search_space(ParallelInfo::basics())
        .with_tune_budget(TuneBudget::max_candidates(1));
    for (name, graph) in hostile_graphs() {
        let x = Tensor2::full(graph.num_vertices(), 4, 1.0);
        let gt = GraphTensor::new(&graph);
        match rt.run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &x), None) {
            Ok(res) => {
                let reference =
                    execute(&graph, &OpInfo::aggregation_sum(), &OpOperands::single(&x)).unwrap();
                assert_eq!(res.output, reference, "{name}");
            }
            Err(e) => assert!(e.is_input_error(), "{name}: {e:?}"),
        }
    }
}

#[test]
fn fault_injected_devices_fail_typed_or_simulate_sanely() {
    let base = DeviceConfig::v100();
    // A perturbation that zeroes the device is a typed error, not a panic
    // or a division-by-zero later.
    assert!(FaultInjector::new()
        .with(Fault::PerturbDevice { factor: 0.0 })
        .device(&base)
        .is_err());
    assert!(FaultInjector::new()
        .with(Fault::AtomicStorm { multiplier: 0.5 })
        .instrument(&base, LaunchConfig::new(2, 128))
        .is_err());

    // Corrupting injectors still produce finite, bounded reports.
    let injectors = [
        FaultInjector::new(),
        FaultInjector::new().with(Fault::TruncateTrace { keep_events: 3 }),
        FaultInjector::new().with(Fault::ZeroCaches),
        FaultInjector::new().with(Fault::AtomicStorm { multiplier: 64.0 }),
        FaultInjector::new()
            .with(Fault::TruncateTrace { keep_events: 1 })
            .with(Fault::ZeroCaches)
            .with(Fault::PerturbDevice { factor: 0.5 }),
    ];
    for (i, inj) in injectors.iter().enumerate() {
        let mut sim = inj.instrument(&base, LaunchConfig::new(4, 256)).unwrap();
        for b in 0..4 {
            sim.begin_block(b);
            sim.load(Access::Coalesced {
                base: 4096 * u64::from(b),
                lanes: 32,
            });
            sim.atomic(Access::Broadcast { addr: 64 }, [u64::from(b)]);
            sim.compute(10.0);
            sim.end_block();
        }
        let report = sim.finish();
        assert!(
            report.time_ms.is_finite() && report.time_ms >= 0.0,
            "injector {i}: bad time {}",
            report.time_ms
        );
    }
}

#[test]
fn default_entry_point_is_shielded() {
    // The free-function entry point routes through the panic shield and
    // the full validation stack: a hostile call mixes several problems and
    // still comes back as a typed error.
    let g = uniform_random(10, 30, 24);
    let mut x = Tensor2::full(10, 2, 1.0);
    x[(9, 1)] = f32::NAN;
    let err = uGrapher(
        &GraphTensor::new(&g),
        &OpArgs::fused(OpInfo::aggregation_sum(), &x),
        Some(ParallelInfo {
            strategy: Strategy::ThreadVertex,
            grouping: 0,
            tiling: 0,
        }),
    )
    .unwrap_err();
    assert!(err.is_input_error(), "{err:?}");
    assert!(!matches!(err, CoreError::Internal { .. }));
}
