//! Edge-case integration tests: degenerate graphs through the whole stack.

use ugrapher::baselines::{DglBackend, PygBackend};
use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::api::{uGrapher, GraphTensor, OpArgs};
use ugrapher::core::schedule::{ParallelInfo, Strategy};
use ugrapher::gnn::{run_inference, ModelConfig, ModelKind, UGrapherBackend};
use ugrapher::graph::Graph;
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

fn models() -> [ModelKind; 6] {
    ModelKind::ALL
}

#[test]
fn edgeless_graph_runs_every_model() {
    let g = Graph::from_edges(20, vec![], vec![]).unwrap();
    let x = Tensor2::full(20, 8, 1.0);
    let backend = UGrapherBackend::quick(DeviceConfig::v100());
    for kind in models() {
        let res = run_inference(&ModelConfig::paper_default(kind), &g, &x, 3, &backend)
            .unwrap_or_else(|e| panic!("{kind:?} on edgeless graph: {e}"));
        assert!(
            res.output.as_slice().iter().all(|v| v.is_finite()),
            "{kind:?} produced non-finite output on an edgeless graph"
        );
    }
}

#[test]
fn single_vertex_self_loop() {
    let g = Graph::from_edges(1, vec![0], vec![0]).unwrap();
    let x = Tensor2::full(1, 4, 2.0);
    let out = uGrapher(
        &GraphTensor::new(&g),
        &OpArgs::fused(OpInfo::aggregation_sum(), &x),
        Some(ParallelInfo::basic(Strategy::WarpEdge)),
    )
    .unwrap();
    assert_eq!(out.output.row(0), &[2.0, 2.0, 2.0, 2.0]);
}

#[test]
fn hub_graph_all_strategies_agree() {
    // A 5000-edge star stresses the atomic-conflict path.
    let n = 5001;
    let src: Vec<u32> = (1..n as u32).collect();
    let dst = vec![0u32; n - 1];
    let g = Graph::from_edges(n, src, dst).unwrap();
    let x = Tensor2::from_fn(n, 4, |r, c| ((r + c) % 3) as f32);
    let gt = GraphTensor::new(&g);
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);
    let mut reference = None;
    for p in ParallelInfo::basics() {
        let out = uGrapher(&gt, &args, Some(p)).unwrap();
        if p.strategy.is_edge_parallel() {
            assert!(
                out.report.max_atomic_conflict > 0.0,
                "{p}: hub must conflict"
            );
        }
        match &reference {
            Some(r) => assert_eq!(&out.output, r, "{p} diverged on star graph"),
            None => reference = Some(out.output),
        }
    }
}

#[test]
fn feature_dim_one_everywhere() {
    let g = ugrapher::graph::generate::uniform_random(64, 256, 10);
    let x = Tensor2::full(64, 1, 3.0);
    for p in ParallelInfo::basics() {
        let out = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_mean(), &x),
            Some(p),
        )
        .unwrap();
        for v in 0..64 {
            let expect = if g.in_degree(v) == 0 { 0.0 } else { 3.0 };
            assert_eq!(out.output[(v, 0)], expect, "{p}");
        }
    }
}

#[test]
fn extreme_knobs_on_tiny_graph() {
    // Grouping/tiling far larger than the graph must degrade gracefully.
    let g = Graph::from_edges(3, vec![0, 1], vec![2, 2]).unwrap();
    let x = Tensor2::full(3, 2, 1.0);
    for s in Strategy::ALL {
        let out = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &x),
            Some(ParallelInfo::new(s, 64, 64)),
        )
        .unwrap();
        assert_eq!(out.output[(2, 0)], 2.0, "{s}");
    }
}

#[test]
fn multigraph_counts_parallel_edges() {
    // Three copies of the same edge triple the contribution.
    let g = Graph::from_edges(2, vec![0, 0, 0], vec![1, 1, 1]).unwrap();
    let x = Tensor2::full(2, 2, 1.5);
    let backend_dgl = DglBackend::new(DeviceConfig::v100());
    let backend_pyg = PygBackend::new(DeviceConfig::v100());
    let model = ModelConfig::paper_default(ModelKind::SageSum);
    let a = run_inference(&model, &g, &x, 2, &backend_dgl).unwrap();
    let b = run_inference(&model, &g, &x, 2, &backend_pyg).unwrap();
    assert!(a.output.approx_eq(&b.output, 1e-4).unwrap());
}
