//! All four systems must be *functionally* interchangeable: the paper's
//! comparison is fair only because every framework computes the same model
//! — they differ solely in kernel strategy. These tests run full models
//! across backends and require matching logits.

// Test helpers outside #[test] fns are not covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used)]

use ugrapher::baselines::{DglBackend, GnnAdvisorBackend, PygBackend};
use ugrapher::gnn::{run_inference, GraphOpBackend, ModelConfig, ModelKind, UGrapherBackend};
use ugrapher::graph::datasets::{by_abbrev, Scale};
use ugrapher::graph::Graph;
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

fn setup(abbrev: &str, feat: usize) -> (Graph, Tensor2) {
    let graph = by_abbrev(abbrev).unwrap().build(Scale::Tiny);
    let x = Tensor2::from_fn(graph.num_vertices(), feat, |r, c| {
        ((r * 5 + c * 3) % 11) as f32 * 0.07
    });
    (graph, x)
}

#[test]
fn gcn_and_gin_agree_across_all_four_systems() {
    let (graph, x) = setup("CO", 16);
    let device = DeviceConfig::v100();
    let dgl = DglBackend::new(device.clone());
    let pyg = PygBackend::new(device.clone());
    let advisor = GnnAdvisorBackend::new(device.clone());
    let ugrapher = UGrapherBackend::quick(device);
    let backends: [&dyn GraphOpBackend; 4] = [&dgl, &pyg, &advisor, &ugrapher];

    for kind in [ModelKind::Gcn, ModelKind::Gin] {
        let model = ModelConfig::paper_default(kind);
        let mut reference: Option<Tensor2> = None;
        for backend in backends {
            let res = run_inference(&model, &graph, &x, 4, backend)
                .unwrap_or_else(|e| panic!("{} on {kind:?}: {e}", backend.name()));
            match &reference {
                Some(r) => assert!(
                    res.output.approx_eq(r, 1e-3).unwrap(),
                    "{} diverged on {kind:?}",
                    backend.name()
                ),
                None => reference = Some(res.output),
            }
        }
    }
}

#[test]
fn remaining_models_agree_across_dgl_pyg_ugrapher() {
    let (graph, x) = setup("CI", 12);
    let device = DeviceConfig::v100();
    let dgl = DglBackend::new(device.clone());
    let pyg = PygBackend::new(device.clone());
    let ugrapher = UGrapherBackend::quick(device);
    let backends: [&dyn GraphOpBackend; 3] = [&dgl, &pyg, &ugrapher];

    for kind in [
        ModelKind::Gat,
        ModelKind::SageSum,
        ModelKind::SageMax,
        ModelKind::SageMean,
    ] {
        let model = ModelConfig::paper_default(kind);
        let mut reference: Option<Tensor2> = None;
        for backend in backends {
            let res = run_inference(&model, &graph, &x, 3, backend)
                .unwrap_or_else(|e| panic!("{} on {kind:?}: {e}", backend.name()));
            match &reference {
                Some(r) => assert!(
                    res.output.approx_eq(r, 1e-2).unwrap(),
                    "{} diverged on {kind:?}",
                    backend.name()
                ),
                None => reference = Some(res.output),
            }
        }
    }
}

#[test]
fn backends_report_distinct_costs_but_same_results() {
    // The whole point: same math, different kernels, different time.
    let (graph, x) = setup("PU", 32);
    let device = DeviceConfig::v100();
    let model = ModelConfig::paper_default(ModelKind::Gcn);
    let dgl = run_inference(&model, &graph, &x, 3, &DglBackend::new(device.clone())).unwrap();
    let pyg = run_inference(&model, &graph, &x, 3, &PygBackend::new(device)).unwrap();
    assert!(dgl.output.approx_eq(&pyg.output, 1e-3).unwrap());
    assert_ne!(dgl.graph_ms(), pyg.graph_ms());
    // PyG's gather-scatter launches more kernels per operator.
    let dgl_kernels: usize = dgl.graph_ops.iter().map(|(_, r)| r.kernels).sum();
    let pyg_kernels: usize = pyg.graph_ops.iter().map(|(_, r)| r.kernels).sum();
    assert!(pyg_kernels > dgl_kernels);
}

#[test]
fn a100_runs_the_same_models() {
    let (graph, x) = setup("PR", 16);
    let device = DeviceConfig::a100();
    let model = ModelConfig::paper_default(ModelKind::SageMean);
    let res = run_inference(&model, &graph, &x, 2, &DglBackend::new(device)).unwrap();
    assert_eq!(res.output.cols(), 2);
    assert!(res.total_ms() > 0.0);
}
