//! The paper's correctness foundation: a graph operator's *result* is
//! independent of its *schedule* (computation/schedule decoupling, §3/§5).
//! These property tests drive random operators over random graphs under
//! every basic strategy plus random grouping/tiling knobs and require
//! bit-identical outputs. Illegal operators must come back as typed
//! validation errors, never as panics.

// Test helpers outside #[test] fns are not covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used)]

use ugrapher::core::abstraction::registry::all_valid_ops;
use ugrapher::core::abstraction::{EdgeOp, GatherOp, OpInfo, TensorType};
use ugrapher::core::api::{GraphTensor, OpArgs, Runtime};
use ugrapher::core::exec::OpOperands;
use ugrapher::core::schedule::{ParallelInfo, Strategy as Sched};
use ugrapher::graph::{Coo, Graph};
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;
use ugrapher::util::check::forall;
use ugrapher::util::rng::StdRng;

/// A random graph with 3..30 vertices and 1..80 (possibly duplicate,
/// possibly self-loop) edges — the same distribution the proptest suite
/// used.
fn random_graph(rng: &mut StdRng) -> Graph {
    let nv = rng.random_range(3usize..30);
    let ne = rng.random_range(1usize..80);
    let src: Vec<u32> = (0..ne).map(|_| rng.random_range(0..nv as u32)).collect();
    let dst: Vec<u32> = (0..ne).map(|_| rng.random_range(0..nv as u32)).collect();
    Graph::from_coo(&Coo::new(nv, src, dst).unwrap())
}

fn random_op(rng: &mut StdRng) -> OpInfo {
    let all = all_valid_ops();
    all[rng.random_range(0..all.len())]
}

fn random_knob(rng: &mut StdRng) -> usize {
    ParallelInfo::KNOB_VALUES[rng.random_range(0..ParallelInfo::KNOB_VALUES.len())]
}

fn tensor_for(t: TensorType, graph: &Graph, feat: usize, salt: u64) -> Option<Tensor2> {
    let rows = match t {
        TensorType::SrcV | TensorType::DstV => graph.num_vertices(),
        TensorType::Edge => graph.num_edges(),
        TensorType::Null => return None,
    };
    Some(Tensor2::from_fn(rows, feat, |r, c| {
        // Keep values positive so Div cannot hit 0 denominators.
        1.0 + ((r as u64 * 31 + c as u64 * 7 + salt) % 13) as f32 * 0.25
    }))
}

#[test]
fn outputs_identical_across_all_schedules() {
    forall("outputs_identical_across_all_schedules", 48, |rng| {
        let graph = random_graph(rng);
        let op = random_op(rng);
        let feat = rng.random_range(1usize..20);
        let (grouping, tiling) = (random_knob(rng), random_knob(rng));
        let salt = rng.random_range(0u64..100);

        let a = tensor_for(op.a, &graph, feat, salt);
        let b = tensor_for(op.b, &graph, feat, salt ^ 0xABCD);
        let operands = OpOperands {
            a: a.as_ref(),
            b: b.as_ref(),
        };
        let gt = GraphTensor::new(&graph);
        let rt = Runtime::new(DeviceConfig::v100());
        let args = OpArgs { op, operands };

        let mut reference: Option<Tensor2> = None;
        for strategy in Sched::ALL {
            let parallel = ParallelInfo::new(strategy, grouping, tiling);
            let out = rt
                .run(&gt, &args, Some(parallel))
                .map_err(|e| format!("{} failed: {e}", parallel.label()))?
                .output;
            match &reference {
                Some(r) => {
                    if &out != r {
                        return Err(format!("{} diverged", parallel.label()));
                    }
                }
                None => reference = Some(out),
            }
        }
        Ok(())
    });
}

#[test]
fn illegal_operators_are_typed_errors_not_panics() {
    // Public fields make arbitrary (edge_op, gather_op, A, B, C) tuples
    // constructible without `OpInfo::new`'s checks; running one must come
    // back as a typed error from validation, never a panic. Valid combos
    // must agree with `OpInfo::new`.
    forall("illegal_operators_are_typed_errors", 64, |rng| {
        let edge_op = EdgeOp::ALL[rng.random_range(0..EdgeOp::ALL.len())];
        let gather_op = GatherOp::ALL[rng.random_range(0..GatherOp::ALL.len())];
        let a = TensorType::ALL[rng.random_range(0..TensorType::ALL.len())];
        let b = TensorType::ALL[rng.random_range(0..TensorType::ALL.len())];
        let c = TensorType::ALL[rng.random_range(0..TensorType::ALL.len())];
        let op = OpInfo {
            edge_op,
            gather_op,
            a,
            b,
            c,
        };
        let constructible = OpInfo::new(edge_op, gather_op, a, b, c).is_ok();
        if op.validate().is_ok() != constructible {
            return Err(format!("validate() and new() disagree on {op:?}"));
        }
        if constructible {
            return Ok(());
        }

        let graph = random_graph(rng);
        let feat = rng.random_range(1usize..6);
        let ta = tensor_for(a, &graph, feat, 1);
        let tb = tensor_for(b, &graph, feat, 2);
        let args = OpArgs {
            op,
            operands: OpOperands {
                a: ta.as_ref(),
                b: tb.as_ref(),
            },
        };
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        match rt.run(&gt, &args, Some(ParallelInfo::basic(Sched::ThreadVertex))) {
            Err(_) => Ok(()),
            Ok(_) => Err(format!("invalid operator {op:?} was accepted")),
        }
    });
}

#[test]
fn sum_aggregation_is_linear() {
    // aggregation_sum(k * x) == k * aggregation_sum(x): exercises the
    // whole stack against an algebraic invariant.
    forall("sum_aggregation_is_linear", 32, |rng| {
        let graph = random_graph(rng);
        let feat = rng.random_range(1usize..8);
        let scale = rng.random_range(1u32..5);
        let x = tensor_for(TensorType::SrcV, &graph, feat, 1).unwrap();
        let kx = x.scale(scale as f32);
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        let p = Some(ParallelInfo::basic(Sched::WarpEdge));
        let base = rt
            .run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &x), p)
            .map_err(|e| e.to_string())?;
        let scaled = rt
            .run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &kx), p)
            .map_err(|e| e.to_string())?;
        let expect = base.output.scale(scale as f32);
        if scaled.output.approx_eq(&expect, 1e-3).unwrap() {
            Ok(())
        } else {
            Err("sum aggregation is not linear".to_string())
        }
    });
}

#[test]
fn max_aggregation_is_idempotent_under_duplication() {
    // Duplicating every edge must not change a max aggregation.
    forall("max_aggregation_idempotent", 32, |rng| {
        let graph = random_graph(rng);
        let feat = rng.random_range(1usize..6);
        let coo = graph.to_coo();
        let mut src = coo.src().to_vec();
        let mut dst = coo.dst().to_vec();
        src.extend_from_slice(coo.src());
        dst.extend_from_slice(coo.dst());
        let doubled = Graph::from_edges(graph.num_vertices(), src, dst).unwrap();

        let x = tensor_for(TensorType::SrcV, &graph, feat, 9).unwrap();
        let rt = Runtime::new(DeviceConfig::v100());
        let p = Some(ParallelInfo::basic(Sched::ThreadVertex));
        let a = rt
            .run(
                &GraphTensor::new(&graph),
                &OpArgs::fused(OpInfo::aggregation_max(), &x),
                p,
            )
            .map_err(|e| e.to_string())?;
        let b = rt
            .run(
                &GraphTensor::new(&doubled),
                &OpArgs::fused(OpInfo::aggregation_max(), &x),
                p,
            )
            .map_err(|e| e.to_string())?;
        if a.output == b.output {
            Ok(())
        } else {
            Err("max aggregation changed under edge duplication".to_string())
        }
    });
}

#[test]
fn mean_equals_sum_divided_by_degree() {
    forall("mean_equals_sum_over_degree", 32, |rng| {
        let graph = random_graph(rng);
        let feat = rng.random_range(1usize..6);
        let x = tensor_for(TensorType::SrcV, &graph, feat, 4).unwrap();
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        let p = Some(ParallelInfo::basic(Sched::ThreadEdge));
        let sum = rt
            .run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &x), p)
            .map_err(|e| e.to_string())?
            .output;
        let mean = rt
            .run(&gt, &OpArgs::fused(OpInfo::aggregation_mean(), &x), p)
            .map_err(|e| e.to_string())?
            .output;
        for v in 0..graph.num_vertices() {
            let deg = graph.in_degree(v);
            for f in 0..feat {
                let expect = if deg == 0 {
                    0.0
                } else {
                    sum[(v, f)] / deg as f32
                };
                if (mean[(v, f)] - expect).abs() >= 1e-4 {
                    return Err(format!(
                        "mean[{v},{f}] = {} but sum/degree = {expect}",
                        mean[(v, f)]
                    ));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn edge_sub_copy_roundtrip() {
    // (e - m) + m == e where m is any DstV tensor: checks edge-output
    // binary operators against each other.
    forall("edge_sub_copy_roundtrip", 32, |rng| {
        let graph = random_graph(rng);
        let feat = rng.random_range(1usize..6);
        let e = tensor_for(TensorType::Edge, &graph, feat, 2).unwrap();
        let m = tensor_for(TensorType::DstV, &graph, feat, 3).unwrap();
        let sub = OpInfo::new(
            EdgeOp::Sub,
            GatherOp::CopyRhs,
            TensorType::Edge,
            TensorType::DstV,
            TensorType::Edge,
        )
        .unwrap();
        let add = OpInfo::new(
            EdgeOp::Add,
            GatherOp::CopyRhs,
            TensorType::Edge,
            TensorType::DstV,
            TensorType::Edge,
        )
        .unwrap();
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        let p = Some(ParallelInfo::basic(Sched::WarpEdge));
        let shifted = rt
            .run(&gt, &OpArgs::binary(sub, &e, &m), p)
            .map_err(|e| e.to_string())?
            .output;
        let restored = rt
            .run(&gt, &OpArgs::binary(add, &shifted, &m), p)
            .map_err(|e| e.to_string())?
            .output;
        if restored.approx_eq(&e, 1e-3).unwrap() {
            Ok(())
        } else {
            Err("(e - m) + m != e".to_string())
        }
    });
}
