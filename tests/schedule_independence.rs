//! The paper's correctness foundation: a graph operator's *result* is
//! independent of its *schedule* (computation/schedule decoupling, §3/§5).
//! These property tests drive random operators over random graphs under
//! every basic strategy plus random grouping/tiling knobs and require
//! bit-identical outputs.

use proptest::prelude::*;

use ugrapher::core::abstraction::{EdgeOp, GatherOp, OpInfo, TensorType};
use ugrapher::core::api::{GraphTensor, OpArgs, Runtime};
use ugrapher::core::exec::OpOperands;
use ugrapher::core::schedule::{ParallelInfo, Strategy as Sched};
use ugrapher::graph::{Coo, Graph};
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (3usize..30).prop_flat_map(|nv| {
        prop::collection::vec((0..nv as u32, 0..nv as u32), 1..80).prop_map(move |edges| {
            let (src, dst): (Vec<u32>, Vec<u32>) = edges.into_iter().unzip();
            Graph::from_coo(&Coo::new(nv, src, dst).unwrap())
        })
    })
}

fn op_strategy() -> impl Strategy<Value = OpInfo> {
    let all: Vec<OpInfo> = ugrapher::core::abstraction::registry::all_valid_ops();
    prop::sample::select(all)
}

fn knobs() -> impl Strategy<Value = (usize, usize)> {
    (
        prop::sample::select(ParallelInfo::KNOB_VALUES.to_vec()),
        prop::sample::select(ParallelInfo::KNOB_VALUES.to_vec()),
    )
}

fn tensor_for(t: TensorType, graph: &Graph, feat: usize, salt: u64) -> Option<Tensor2> {
    let rows = match t {
        TensorType::SrcV | TensorType::DstV => graph.num_vertices(),
        TensorType::Edge => graph.num_edges(),
        TensorType::Null => return None,
    };
    Some(Tensor2::from_fn(rows, feat, |r, c| {
        // Keep values positive so Div cannot hit 0 denominators.
        1.0 + ((r as u64 * 31 + c as u64 * 7 + salt) % 13) as f32 * 0.25
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn outputs_identical_across_all_schedules(
        graph in graph_strategy(),
        op in op_strategy(),
        feat in 1usize..20,
        (grouping, tiling) in knobs(),
        salt in 0u64..100,
    ) {
        let a = tensor_for(op.a, &graph, feat, salt);
        let b = tensor_for(op.b, &graph, feat, salt ^ 0xABCD);
        let operands = OpOperands { a: a.as_ref(), b: b.as_ref() };
        let gt = GraphTensor::new(&graph);
        let rt = Runtime::new(DeviceConfig::v100());
        let args = OpArgs { op, operands };

        let mut reference: Option<Tensor2> = None;
        for strategy in Sched::ALL {
            let parallel = ParallelInfo::new(strategy, grouping, tiling);
            let out = rt.run(&gt, &args, Some(parallel)).unwrap().output;
            match &reference {
                Some(r) => prop_assert_eq!(&out, r, "{} diverged", parallel.label()),
                None => reference = Some(out),
            }
        }
    }

    #[test]
    fn sum_aggregation_is_linear(
        graph in graph_strategy(),
        feat in 1usize..8,
        scale in 1u32..5,
    ) {
        // aggregation_sum(k * x) == k * aggregation_sum(x): exercises the
        // whole stack against an algebraic invariant.
        let x = tensor_for(TensorType::SrcV, &graph, feat, 1).unwrap();
        let kx = x.scale(scale as f32);
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        let p = Some(ParallelInfo::basic(Sched::WarpEdge));
        let base = rt.run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &x), p).unwrap();
        let scaled = rt.run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &kx), p).unwrap();
        prop_assert!(
            scaled.output.approx_eq(&base.output.scale(scale as f32), 1e-3).unwrap()
        );
    }

    #[test]
    fn max_aggregation_is_idempotent_under_duplication(
        graph in graph_strategy(),
        feat in 1usize..6,
    ) {
        // Duplicating every edge must not change a max aggregation.
        let coo = graph.to_coo();
        let mut src = coo.src().to_vec();
        let mut dst = coo.dst().to_vec();
        src.extend_from_slice(coo.src());
        dst.extend_from_slice(coo.dst());
        let doubled = Graph::from_edges(graph.num_vertices(), src, dst).unwrap();

        let x = tensor_for(TensorType::SrcV, &graph, feat, 9).unwrap();
        let rt = Runtime::new(DeviceConfig::v100());
        let p = Some(ParallelInfo::basic(Sched::ThreadVertex));
        let a = rt.run(
            &GraphTensor::new(&graph),
            &OpArgs::fused(OpInfo::aggregation_max(), &x),
            p,
        ).unwrap();
        let b = rt.run(
            &GraphTensor::new(&doubled),
            &OpArgs::fused(OpInfo::aggregation_max(), &x),
            p,
        ).unwrap();
        prop_assert_eq!(a.output, b.output);
    }

    #[test]
    fn mean_equals_sum_divided_by_degree(
        graph in graph_strategy(),
        feat in 1usize..6,
    ) {
        let x = tensor_for(TensorType::SrcV, &graph, feat, 4).unwrap();
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        let p = Some(ParallelInfo::basic(Sched::ThreadEdge));
        let sum = rt.run(&gt, &OpArgs::fused(OpInfo::aggregation_sum(), &x), p).unwrap().output;
        let mean = rt.run(&gt, &OpArgs::fused(OpInfo::aggregation_mean(), &x), p).unwrap().output;
        for v in 0..graph.num_vertices() {
            let deg = graph.in_degree(v);
            for f in 0..feat {
                let expect = if deg == 0 { 0.0 } else { sum[(v, f)] / deg as f32 };
                prop_assert!((mean[(v, f)] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn edge_sub_copy_roundtrip(
        graph in graph_strategy(),
        feat in 1usize..6,
    ) {
        // (e - m) + m == e where m is any DstV tensor: checks edge-output
        // binary operators against each other.
        prop_assume!(graph.num_edges() > 0);
        let e = tensor_for(TensorType::Edge, &graph, feat, 2).unwrap();
        let m = tensor_for(TensorType::DstV, &graph, feat, 3).unwrap();
        let sub = OpInfo::new(EdgeOp::Sub, GatherOp::CopyRhs, TensorType::Edge, TensorType::DstV, TensorType::Edge).unwrap();
        let add = OpInfo::new(EdgeOp::Add, GatherOp::CopyRhs, TensorType::Edge, TensorType::DstV, TensorType::Edge).unwrap();
        let rt = Runtime::new(DeviceConfig::v100());
        let gt = GraphTensor::new(&graph);
        let p = Some(ParallelInfo::basic(Sched::WarpEdge));
        let shifted = rt.run(&gt, &OpArgs::binary(sub, &e, &m), p).unwrap().output;
        let restored = rt.run(&gt, &OpArgs::binary(add, &shifted, &m), p).unwrap().output;
        prop_assert!(restored.approx_eq(&e, 1e-3).unwrap());
    }
}
