//! End-to-end GCN inference across all four systems.
//!
//! Runs the same GCN model (functional results identical) on the DGL-,
//! PyG- and GNNAdvisor-style baselines and on uGrapher, printing the
//! time breakdown into GEMM / element-wise / graph-operator components —
//! a single cell of the paper's Fig. 13 comparison.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example end_to_end_gcn
//! ```

use ugrapher::baselines::{DglBackend, GnnAdvisorBackend, PygBackend};
use ugrapher::gnn::{run_inference, GraphOpBackend, ModelConfig, ModelKind, UGrapherBackend};
use ugrapher::graph::datasets::{by_abbrev, Scale};
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = by_abbrev("PR").expect("PROTEINS_full is in the catalog");
    let graph = dataset.build(Scale::Ratio(0.1));
    let x = Tensor2::from_fn(graph.num_vertices(), dataset.feature_dim.min(64), |r, c| {
        ((r * 13 + c * 7) % 17) as f32 * 0.05
    });
    println!(
        "GCN on {} (scaled): {} vertices, {} edges, feature {}",
        dataset.name,
        graph.num_vertices(),
        graph.num_edges(),
        x.cols(),
    );

    let device = DeviceConfig::v100();
    let model = ModelConfig::paper_default(ModelKind::Gcn);

    let dgl = DglBackend::new(device.clone());
    let pyg = PygBackend::new(device.clone());
    let advisor = GnnAdvisorBackend::new(device.clone());
    let ugrapher = UGrapherBackend::new(device);
    let backends: Vec<&dyn GraphOpBackend> = vec![&dgl, &pyg, &advisor, &ugrapher];

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "system", "total(ms)", "gemm", "eltwise", "graph-op", "graph%"
    );
    let mut reference: Option<Tensor2> = None;
    let mut times = Vec::new();
    for backend in backends {
        let res = run_inference(&model, &graph, &x, dataset.num_classes, backend)?;
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>8.1}%",
            backend.name(),
            res.total_ms(),
            res.gemm_ms,
            res.elementwise_ms,
            res.graph_ms(),
            res.graph_fraction() * 100.0,
        );
        if let Some(r) = &reference {
            assert!(
                res.output.approx_eq(r, 1e-3)?,
                "{} diverged functionally",
                backend.name()
            );
        } else {
            reference = Some(res.output.clone());
        }
        times.push((backend.name(), res.total_ms()));
    }

    let ug = times.last().expect("four backends ran").1;
    println!("\nspeedups of uGrapher:");
    for (name, t) in &times[..times.len() - 1] {
        println!("  vs {:<12} {:.2}x", name, t / ug);
    }
    println!("functional outputs identical across systems ✓");
    Ok(())
}
