//! Extensibility: define a *new* graph operator from minimal operator
//! information and get scheduled kernels for free.
//!
//! This is the paper's Table 1 claim: GE-SpMM and GNNAdvisor require new
//! handwritten CUDA for a new operator and FeatGraph a new TVM template,
//! while uGrapher needs only `(edge_op, gather_op, tensor types)`. Here we
//! build an operator DGL ships but none of our baselines specialise —
//! `u_div_e` with a `min` reduction — validate it against the Table 4
//! rules, and run it under every basic strategy plus auto-tuning.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_operator
//! ```

// Example code: unwrap keeps the walkthrough focused on the API.
#![allow(clippy::unwrap_used)]

use ugrapher::core::abstraction::{EdgeOp, GatherOp, OpInfo, TensorType};
use ugrapher::core::api::{uGrapher, GraphTensor, OpArgs};
use ugrapher::core::schedule::ParallelInfo;
use ugrapher::graph::generate::{DegreeModel, GraphSpec};
use ugrapher::tensor::Tensor2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The new operator: for each edge (u -> v), divide the source features
    // by a per-edge scalar, then keep the element-wise MINIMUM per vertex.
    let op = OpInfo::new(
        EdgeOp::Div,
        GatherOp::Min,
        TensorType::SrcV,
        TensorType::Edge,
        TensorType::DstV,
    )?;
    println!("operator validated: {op:?}");
    println!("category: {:?}", op.category());

    // An invalid combination is rejected with an explanation.
    let bad = OpInfo::new(
        EdgeOp::Mul,
        GatherOp::Sum,
        TensorType::SrcV,
        TensorType::Null, // Mul needs B!
        TensorType::DstV,
    );
    println!("invalid combination rejected: {}", bad.unwrap_err());

    let graph = GraphSpec {
        num_vertices: 4000,
        num_edges: 32_000,
        degree_model: DegreeModel::PowerLaw { alpha: 1.9 },
        locality: 0.4,
        seed: 77,
    }
    .build();
    let x = Tensor2::from_fn(graph.num_vertices(), 16, |r, c| 1.0 + ((r + c) % 5) as f32);
    let w = Tensor2::from_fn(graph.num_edges(), 1, |r, _| 1.0 + (r % 3) as f32);

    let gt = GraphTensor::new(&graph);
    let args = OpArgs::binary(op, &x, &w);

    println!("\n-- the same operator under every basic schedule --");
    let mut reference = None;
    for parallel in ParallelInfo::basics() {
        let result = uGrapher(&gt, &args, Some(parallel))?;
        println!(
            "  {:<10} {:.4} ms  (atomic ops: {})",
            parallel.label(),
            result.report.time_ms,
            result.report.atomic_ops as u64
        );
        if let Some(r) = &reference {
            assert_eq!(&result.output, r, "schedules must agree");
        } else {
            reference = Some(result.output);
        }
    }

    let tuned = uGrapher(&gt, &args, None)?;
    println!(
        "\nauto-tuned schedule for the brand-new operator: {} ({:.4} ms)",
        tuned.schedule.label(),
        tuned.report.time_ms
    );
    Ok(())
}
