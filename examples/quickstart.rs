//! Quickstart: run one graph operator through the `uGrapher` API.
//!
//! Mirrors the paper's Fig. 9 interface: a graph tensor, an `op_info`
//! describing the operator, and an optional `parallel_info` schedule. When
//! the schedule is omitted, uGrapher auto-tunes.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::api::{uGrapher, GraphTensor, OpArgs};
use ugrapher::core::schedule::ParallelInfo;
use ugrapher::graph::datasets::{by_abbrev, Scale};
use ugrapher::tensor::Tensor2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic stand-in for the `pubmed` dataset (Table 3).
    let dataset = by_abbrev("PU").expect("PU is in the catalog");
    let graph = dataset.build(Scale::Ratio(0.05));
    println!(
        "dataset {} (scaled): {} vertices, {} edges, std-nnz {:.2}",
        dataset.name,
        graph.num_vertices(),
        graph.num_edges(),
        graph.degree_stats().std_in_degree,
    );

    let feat = 32;
    let x = Tensor2::from_fn(graph.num_vertices(), feat, |r, c| {
        ((r * 7 + c) % 11) as f32 * 0.1
    });
    let gt = GraphTensor::new(&graph);
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);

    // 1. Explicit schedules: the four basic strategies of paper Fig. 6.
    println!("\n-- basic strategies (aggregation-sum, feature {feat}) --");
    for parallel in ParallelInfo::basics() {
        let result = uGrapher(&gt, &args, Some(parallel))?;
        println!(
            "  {:<10} {:.4} ms  occupancy {:.2}  L2 hit {:.2}  atomics {}",
            parallel.label(),
            result.report.time_ms,
            result.report.achieved_occupancy,
            result.report.l2_hit_rate,
            result.report.atomic_ops as u64,
        );
    }

    // 2. Auto-tuning: pass None and let uGrapher search the full space
    //    (4 strategies x 7 groupings x 7 tilings).
    let tuned = uGrapher(&gt, &args, None)?;
    println!(
        "\nauto-tuned: {} -> {:.4} ms",
        tuned.schedule.label(),
        tuned.report.time_ms
    );

    // The output is schedule-independent.
    let reference = uGrapher(&gt, &args, Some(ParallelInfo::basics()[0]))?;
    assert_eq!(tuned.output, reference.output);
    println!("outputs match across schedules ✓");
    Ok(())
}
