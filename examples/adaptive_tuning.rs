//! Adaptive schedule selection: grid search vs the learned predictor,
//! plus budgeted tuning.
//!
//! Reproduces the paper's §5.4 workflow at example scale: train a GBDT on
//! random graphs, then compare its schedule choices against exhaustive grid
//! search on unseen Table 3 stand-ins (the Fig. 12 validation). The final
//! section shows [`TuneBudget`]: capping the tuning cost, accepting the
//! best-so-far schedule, and reading the downgrade off the
//! `RobustnessReport`.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example adaptive_tuning
//! ```

// Example code: unwrap keeps the walkthrough focused on the API.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::api::{GraphTensor, OpArgs, Runtime};
use ugrapher::core::exec::MeasureOptions;
use ugrapher::core::tune::{grid_search, Predictor, PredictorConfig, TuneBudget};
use ugrapher::graph::datasets::{by_abbrev, Scale};
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceConfig::v100();

    // Train on random graphs (the paper uses 128; we use a lighter config
    // so the example finishes in seconds).
    let mut config = PredictorConfig::quick(device.clone());
    config.num_graphs = 16;
    config.ops = vec![
        OpInfo::aggregation_sum(),
        OpInfo::weighted_aggregation_sum(),
    ];
    let t0 = Instant::now();
    let predictor = Predictor::train(&config);
    println!("predictor trained in {:.1?}", t0.elapsed());

    // Prediction overhead (§7.4: must be well under 0.2 ms).
    let probe = by_abbrev("CO").unwrap().build(Scale::Tiny);
    let stats = probe.degree_stats();
    let t0 = Instant::now();
    let n = 1000;
    for _ in 0..n {
        let _ = predictor.choose(&stats, &OpInfo::aggregation_sum(), 16)?;
    }
    println!(
        "prediction latency: {:.4} ms per call (paper bound: 0.2 ms)",
        t0.elapsed().as_secs_f64() * 1e3 / n as f64
    );

    // Validate against grid search on held-out datasets.
    let options = MeasureOptions::auto(device);
    println!(
        "\n{:<6} {:>12} {:>12} {:>8}",
        "data", "grid(ms)", "pred(ms)", "gap"
    );
    for abbrev in ["CO", "PU", "PR", "AR"] {
        let graph = by_abbrev(abbrev).unwrap().build(Scale::Ratio(0.05));
        let op = OpInfo::aggregation_sum();
        let truth = grid_search(&graph, &op, 16, &options)?;
        let chosen = predictor.choose(&graph.degree_stats(), &op, 16)?;
        let chosen_time = truth
            .time_of(&chosen)
            .expect("predictor chooses within the search space");
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>7.2}x  (grid: {}, predictor: {})",
            abbrev,
            truth.best_time_ms,
            chosen_time,
            chosen_time / truth.best_time_ms,
            truth.best.label(),
            chosen.label(),
        );
    }

    // Budgeted tuning: cap auto-tuning at a handful of candidates instead
    // of the full 196-point space. The run still succeeds with the best
    // schedule found so far, and the downgrade is visible in the result.
    println!("\nbudgeted auto-tuning (max 8 of 196 candidates):");
    let graph = by_abbrev("CO").unwrap().build(Scale::Ratio(0.05));
    let x = Tensor2::full(graph.num_vertices(), 16, 1.0);
    let gt = GraphTensor::new(&graph);
    let args = OpArgs::fused(OpInfo::aggregation_sum(), &x);
    for budget in [TuneBudget::unlimited(), TuneBudget::max_candidates(8)] {
        let rt = Runtime::new(DeviceConfig::v100()).with_tune_budget(budget);
        let t0 = Instant::now();
        let res = rt.run(&gt, &args, None)?;
        println!(
            "  budget {:?}: chose {} in {:.1?}",
            budget.max_candidates,
            res.schedule.label(),
            t0.elapsed()
        );
        for d in &res.robustness.downgrades {
            println!("    downgrade: {d}");
        }
    }
    Ok(())
}
