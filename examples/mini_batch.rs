//! Mini-batch inference: sampling preprocessing + uGrapher execution.
//!
//! The paper's evaluation is full-graph inference, observing that
//! mini-batch inference "performs sampling preprocessing first, and then
//! executes the graph operator", falling back to the same graph-operator
//! problem (§6, *Batchsize*). This example runs that pipeline: GraphSAGE
//! fanout sampling extracts a batch subgraph, and uGrapher tunes the
//! aggregation schedule for the *subgraph* — which can differ from the
//! full-graph optimum, showing why adaptive scheduling also matters for
//! mini-batch serving.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example mini_batch
//! ```

use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::api::{uGrapher, GraphTensor, OpArgs};
use ugrapher::graph::datasets::{by_abbrev, Scale};
use ugrapher::graph::sample::{sample_neighbors, SampleConfig};
use ugrapher::tensor::Tensor2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = by_abbrev("PP").expect("ppi is in the catalog");
    let graph = dataset.build(Scale::Ratio(0.1));
    println!(
        "full graph ({}): {} vertices, {} edges",
        dataset.name,
        graph.num_vertices(),
        graph.num_edges()
    );

    // A batch of 256 seed vertices with GraphSAGE's (25, 10) fanout.
    let seeds: Vec<u32> = (0..256u32)
        .map(|i| i * 7 % graph.num_vertices() as u32)
        .collect();
    let batch = sample_neighbors(&graph, &seeds, &SampleConfig::sage_default());
    println!(
        "sampled batch: {} vertices ({} seeds), {} edges",
        batch.graph.num_vertices(),
        batch.num_seeds,
        batch.graph.num_edges()
    );

    // Gather batch features from the "global" feature table.
    let feat = 32;
    let global_x = Tensor2::from_fn(graph.num_vertices(), feat, |r, c| {
        ((r * 13 + c) % 7) as f32 * 0.2
    });
    let batch_x = Tensor2::from_fn(batch.graph.num_vertices(), feat, |r, c| {
        global_x[(batch.global_of_local[r] as usize, c)]
    });

    // Tune and run the aggregation on the subgraph...
    let op = OpInfo::aggregation_mean();
    let sub = uGrapher(
        &GraphTensor::new(&batch.graph),
        &OpArgs::fused(op, &batch_x),
        None,
    )?;
    println!(
        "batch aggregation: schedule {} -> {:.4} ms",
        sub.schedule.label(),
        sub.report.time_ms
    );

    // ...and compare with the schedule tuned for the full graph.
    let full = uGrapher(
        &GraphTensor::new(&graph),
        &OpArgs::fused(op, &global_x),
        None,
    )?;
    println!(
        "full-graph aggregation: schedule {} -> {:.4} ms",
        full.schedule.label(),
        full.report.time_ms
    );
    if sub.schedule != full.schedule {
        println!("-> the sampled subgraph prefers a different schedule: adaptivity pays off");
    } else {
        println!("-> same schedule this time; rerun with other datasets to see it flip");
    }

    // Seed outputs are rows 0..num_seeds of the batch output.
    let seed_embeddings: Vec<&[f32]> = (0..batch.num_seeds).map(|s| sub.output.row(s)).collect();
    println!(
        "computed {} seed embeddings of dim {feat}",
        seed_embeddings.len()
    );
    Ok(())
}
