//! CUDA code generation: inspect the kernels uGrapher would emit.
//!
//! The paper's system generates CUDA from (operator info, schedule); this
//! example prints the generated source for the same operator under two
//! very different schedules, showing the fusion pass and the atomic
//! analysis at work (§5.2).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example emit_cuda
//! ```

use ugrapher::core::abstraction::OpInfo;
use ugrapher::core::codegen_cuda::emit_cuda;
use ugrapher::core::plan::KernelPlan;
use ugrapher::core::schedule::{ParallelInfo, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (nv, ne, feat) = (100_000, 800_000, 64);
    let op = OpInfo::weighted_aggregation_sum();

    for parallel in [
        ParallelInfo::basic(Strategy::WarpVertex),
        ParallelInfo::new(Strategy::ThreadEdge, 32, 2),
    ] {
        let plan =
            KernelPlan::generate(op, parallel, nv, ne, feat)?.with_scalar_operands(false, true);
        println!(
            "──────────────────────────────────────────────────────────────\n{}",
            emit_cuda(&plan)?
        );
    }
    println!(
        "note: the warp-vertex kernel updates C with a plain `+=` (exclusive\n\
         destination), while the thread-edge kernel required atomicAdd — the\n\
         pass-2 analysis decided, not the operator definition."
    );
    Ok(())
}
