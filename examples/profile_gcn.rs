//! End-to-end profiling of GCN inference through the observability layer.
//!
//! Installs a tracing recorder (ring buffer + the optional `UGRAPHER_TRACE`
//! file sink), runs two-layer GCN inference on a synthetic graph through
//! the uGrapher backend, and prints:
//!
//! * a flamegraph-style per-layer / per-operator table rebuilt from the
//!   recorded spans ([`ugrapher::obs::ProfileReport`]);
//! * the span coverage of the inference wall-clock (target: >= 95%);
//! * the cumulative metrics registry (Prometheus text format);
//! * the measured cost of the *disabled* recorder fast path.
//!
//! Run with:
//!
//! ```sh
//! UGRAPHER_TRACE=trace.json cargo run --release --example profile_gcn
//! ```
//!
//! and load `trace.json` in Perfetto / `about://tracing`. A `.jsonl`
//! extension selects the incremental JSONL sink instead.

// Example code: unwrap keeps the walkthrough focused on the API.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use ugrapher::gnn::{run_inference, ModelConfig, ModelKind, UGrapherBackend};
use ugrapher::graph::generate::uniform_random;
use ugrapher::obs::{metrics, MetricsRegistry, ProfileReport, Recorder, SpanKind};
use ugrapher::sim::DeviceConfig;
use ugrapher::tensor::Tensor2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ring buffer for the in-process profile; UGRAPHER_TRACE adds a file
    // sink (.jsonl -> incremental JSONL, anything else -> Chrome trace).
    let mut builder = Recorder::builder();
    let ring = builder.ring(1 << 16);
    let trace_path = std::env::var("UGRAPHER_TRACE")
        .ok()
        .filter(|p| !p.is_empty());
    if let Some(path) = &trace_path {
        if path.ends_with(".jsonl") {
            builder.jsonl_file(path)?;
        } else {
            builder.chrome_file(path);
        }
    }
    let recorder = builder.build();
    assert!(
        ugrapher::obs::install(recorder.clone()),
        "install the recorder before any span is opened"
    );

    let graph = uniform_random(3000, 24_000, 42);
    let features = Tensor2::from_fn(graph.num_vertices(), 32, |r, c| {
        ((r * 31 + c * 7) % 17) as f32 / 17.0
    });
    let model = ModelConfig::paper_default(ModelKind::Gcn);
    let backend = UGrapherBackend::quick(DeviceConfig::v100());

    println!(
        "profile_gcn: GCN {}x{} on |V|={} |E|={} feat={}",
        model.num_layers,
        model.hidden,
        graph.num_vertices(),
        graph.num_edges(),
        features.cols()
    );
    let t0 = Instant::now();
    let result = run_inference(&model, &graph, &features, 7, &backend)?;
    let wall = t0.elapsed();
    println!(
        "inference done in {wall:.1?}: simulated total {:.3} ms ({:.0}% in graph operators)\n",
        result.total_ms(),
        100.0 * result.graph_fraction()
    );

    recorder.flush()?;
    let spans = ring.snapshot();
    let profile = ProfileReport::from_spans(&spans);
    println!("{profile}");

    let coverage = 100.0 * profile.coverage();
    println!(
        "span coverage: {coverage:.1}% of traced wall-clock (target >= 95%){}",
        if coverage >= 95.0 { "" } else { "  << LOW" }
    );
    if let Some(path) = &trace_path {
        println!("trace written to {path}");
    }

    println!("\n--- metrics registry ---");
    print!("{}", MetricsRegistry::global().prometheus_text());

    // The zero-cost contract: opening a span on a disabled recorder is a
    // branch returning an inert guard. Measure it against the cheapest real
    // unit of work the runtime traces (one kernel measurement).
    let disabled = Recorder::disabled();
    let reps = 1_000_000u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut span = disabled.span("sim.kernel", SpanKind::Kernel);
        if span.is_enabled() {
            span.attr("never", "built");
        }
    }
    let per_span_ns = t0.elapsed().as_nanos() as f64 / f64::from(reps);
    let kernels = MetricsRegistry::global()
        .counter(metrics::KERNELS_LAUNCHED)
        .max(1);
    let per_kernel_ns = wall.as_nanos() as f64 / kernels as f64;
    println!(
        "\ndisabled-recorder fast path: {per_span_ns:.1} ns per span open \
         ({:.4}% of one kernel measurement, {kernels} kernels this run)",
        100.0 * per_span_ns / per_kernel_ns
    );
    Ok(())
}
