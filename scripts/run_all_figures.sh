#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation in sequence,
# collecting output under results/. Respects UGRAPHER_SCALE / UGRAPHER_QUICK.
set -u
cd "$(dirname "$0")/.."
mkdir -p results

BINS=(
  tbl02_operator_census
  tbl03_datasets
  tbl04_op_registry
  tbl05_strategy_coverage
  fig03_dgl_limits
  tbl06_tradeoffs
  fig07_strategy_variation
  fig12_predictor
  fig13_end_to_end
  fig01_heatmap
  fig14_per_model
  fig15_per_dataset
  fig16_metrics
  tbl09_optimal_strategies
  fig17_basic_vs_optimal
  fig18_group_tile_sweep
  fig19_renumbering
  overhead_predictor
  ablations
  calibration
  tuner_comparison
)

for bin in "${BINS[@]}"; do
  echo "=== running $bin ==="
  if cargo run --release -p ugrapher-bench --bin "$bin" >"results/$bin.txt" 2>&1; then
    echo "    ok -> results/$bin.txt"
  else
    echo "    FAILED -> results/$bin.txt"
  fi
done
echo "all figure binaries done."
