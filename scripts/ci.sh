#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 build + tests, full workspace
# tests. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (ugrapher-analyze, -D warnings) =="
cargo clippy -p ugrapher-analyze -- -D warnings

echo "== cargo clippy (ugrapher-serve, -D warnings) =="
cargo clippy -p ugrapher-serve --all-targets -- -D warnings

echo "== cargo doc (workspace, no deps, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== static analyzer: registry sweep (IR verifier + dynamic race check) =="
sweep_json="$(mktemp)"
cargo run --release -p ugrapher-analyze --bin analyze-registry -- --progress=200 --json > "$sweep_json"
# The JSON report must confirm a clean sweep with full verifier coverage:
# every combo bounds-proved and every combo carrying a determinism label.
python3 - "$sweep_json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
combos = r["combos_checked"]
labels = sum(r["determinism"].values())
assert r["clean"], f'sweep not clean: {r["findings"]}'
assert r["bounds_proved"] == combos, f'{r["bounds_proved"]} bounds proofs for {combos} combos'
assert labels == combos, f'{labels} determinism labels for {combos} combos'
print(f'sweep JSON ok: {combos} combos, {r["bounds_proved"]} bounds proofs, '
      f'{labels} determinism labels, trace_id={r["trace_id"]}')
EOF
rm -f "$sweep_json"

echo "== observability: profile_gcn under tracing + trace-check =="
trace_dir="$(mktemp -d)"
UGRAPHER_TRACE="$trace_dir/trace.json" cargo run --release --example profile_gcn >/dev/null
cargo run --release -p ugrapher-obs --bin trace-check -- "$trace_dir/trace.json"
UGRAPHER_TRACE="$trace_dir/trace.jsonl" cargo run --release --example profile_gcn >/dev/null
cargo run --release -p ugrapher-obs --bin trace-check -- "$trace_dir/trace.jsonl"
rm -rf "$trace_dir"

echo "== serving: serve_bench --smoke + BENCH_serving.json gate =="
cargo run --release -p ugrapher-bench --bin serve_bench -- --smoke >/dev/null
# The serving benchmark must produce a parseable report showing the plan
# cache actually engaged (the binary itself asserts the >=5x warm/cold
# and >=90% hit-rate acceptance bars).
python3 - results/BENCH_serving.json <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
hit_rate = r["cache"]["hit_rate"]
speedup = r["warm_over_cold_speedup"]
assert hit_rate > 0, "plan cache never hit"
assert r["cache"]["hits"] > 0 and r["cache"]["misses"] > 0
assert r["warm"]["requests"] > r["cold"]["requests"]
print(f'serving JSON ok: hit rate {hit_rate:.1%}, warm/cold speedup {speedup:.1f}x, '
      f'{r["warm"]["requests"]} warm requests p99={r["warm"]["p99_ms"]:.2f}ms')
EOF

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "CI gate passed."
