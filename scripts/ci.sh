#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 build + tests, full workspace
# tests. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (ugrapher-analyze, -D warnings) =="
cargo clippy -p ugrapher-analyze -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== static analyzer: registry sweep (static vs dynamic race check) =="
cargo run --release -p ugrapher-analyze --bin analyze-registry -- --progress=200

echo "== observability: profile_gcn under tracing + trace-check =="
trace_dir="$(mktemp -d)"
UGRAPHER_TRACE="$trace_dir/trace.json" cargo run --release --example profile_gcn >/dev/null
cargo run --release -p ugrapher-obs --bin trace-check -- "$trace_dir/trace.json"
UGRAPHER_TRACE="$trace_dir/trace.jsonl" cargo run --release --example profile_gcn >/dev/null
cargo run --release -p ugrapher-obs --bin trace-check -- "$trace_dir/trace.jsonl"
rm -rf "$trace_dir"

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "CI gate passed."
