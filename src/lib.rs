//! # uGrapher (reproduction)
//!
//! A Rust reproduction of *"uGrapher: High-Performance Graph Operator
//! Computation via Unified Abstraction for Graph Neural Networks"*
//! (Zhou et al., ASPLOS 2023), built as a workspace of crates that this
//! umbrella crate re-exports:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ugrapher-core` | the unified operator abstraction, schedule space, plan generation, executor, tuners, `uGrapher` API |
//! | [`graph`] | `ugrapher-graph` | CSR/CSC storage, dataset catalog, generators, reordering |
//! | [`tensor`] | `ugrapher-tensor` | dense tensors, GEMM, GEMM cost model |
//! | [`sim`] | `ugrapher-sim` | the GPU execution simulator (V100/A100) |
//! | [`gbdt`] | `ugrapher-gbdt` | gradient-boosted trees (the LightGBM substitute) |
//! | [`gnn`] | `ugrapher-gnn` | GCN/GIN/GAT/GraphSage inference pipelines |
//! | [`baselines`] | `ugrapher-baselines` | DGL-, PyG- and GNNAdvisor-style backends |
//! | [`analyze`] | `ugrapher-analyze` | static schedule/kernel analyzer with write-set race detection and sim cross-check |
//! | [`serve`] | `ugrapher-serve` | concurrent serving engine: bounded queue, worker pool, deadlines, shared compiled-plan cache |
//! | [`obs`] | `ugrapher-obs` | tracing spans, trace sinks (ring/JSONL/Chrome), metrics registry, profile rollups |
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and substitution arguments, and `EXPERIMENTS.md` for the paper-vs-
//! measured record of every table and figure.
//!
//! # Example
//!
//! ```
//! use ugrapher::core::abstraction::OpInfo;
//! use ugrapher::core::api::{uGrapher, GraphTensor, OpArgs};
//! use ugrapher::graph::generate::ring;
//! use ugrapher::tensor::Tensor2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ring(32);
//! let x = Tensor2::full(32, 8, 1.0);
//! let result = uGrapher(
//!     &GraphTensor::new(&graph),
//!     &OpArgs::fused(OpInfo::aggregation_sum(), &x),
//!     None,
//! )?;
//! assert_eq!(result.output[(0, 0)], 1.0);
//! # Ok(())
//! # }
//! ```

pub use ugrapher_analyze as analyze;
pub use ugrapher_baselines as baselines;
pub use ugrapher_core as core;
pub use ugrapher_gbdt as gbdt;
pub use ugrapher_gnn as gnn;
pub use ugrapher_graph as graph;
pub use ugrapher_obs as obs;
pub use ugrapher_serve as serve;
pub use ugrapher_sim as sim;
pub use ugrapher_tensor as tensor;
pub use ugrapher_util as util;
