//! Criterion micro-benchmarks of the substrate crates: cache model
//! throughput, GBDT inference latency (the §7.4 overhead bound), graph
//! generation, GEMM cost-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::tune::{Predictor, PredictorConfig};
use ugrapher_gbdt::{Gbdt, GbdtParams, TrainSet};
use ugrapher_graph::generate::{DegreeModel, GraphSpec};
use ugrapher_sim::{Cache, DeviceConfig};
use ugrapher_tensor::{GemmCostModel, GemmDevice, Tensor2};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/stream_64k_lines", |b| {
        b.iter_with_setup(
            || Cache::new(6 * 1024 * 1024, 32, 16),
            |mut cache| {
                for line in 0..65_536u64 {
                    cache.access_line(line % 10_000, 1.0);
                }
                cache
            },
        )
    });
}

fn bench_gbdt(c: &mut Criterion) {
    let rows: Vec<Vec<f64>> = (0..512)
        .map(|i| (0..16).map(|j| ((i * 31 + j * 7) % 97) as f64).collect())
        .collect();
    let targets: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>().ln()).collect();
    let data = TrainSet::new(rows.clone(), targets).unwrap();
    let model = Gbdt::fit(&data, &GbdtParams::default());
    c.bench_function("gbdt/predict", |b| b.iter(|| model.predict(&rows[0])));
    c.bench_function("gbdt/fit_512x16", |b| {
        b.iter(|| Gbdt::fit(&data, &GbdtParams { num_trees: 20, ..Default::default() }))
    });
}

fn bench_predictor_choose(c: &mut Criterion) {
    // The §7.4 bound: one schedule prediction well under 0.2 ms.
    let predictor = Predictor::train(&PredictorConfig::quick(DeviceConfig::v100()));
    let graph = ugrapher_graph::generate::uniform_random(5_000, 40_000, 3);
    let stats = graph.degree_stats();
    c.bench_function("predictor/choose", |b| {
        b.iter(|| predictor.choose(&stats, &OpInfo::aggregation_sum(), 32).unwrap())
    });
}

fn bench_graph_generation(c: &mut Criterion) {
    c.bench_function("generate/100k_edges_lognormal", |b| {
        b.iter(|| {
            GraphSpec {
                num_vertices: 20_000,
                num_edges: 100_000,
                degree_model: DegreeModel::TargetStd { std: 10.0 },
                locality: 0.5,
                seed: 1,
            }
            .build()
        })
    });
}

fn bench_gemm(c: &mut Criterion) {
    let a = Tensor2::from_fn(512, 128, |r, q| ((r + q) % 7) as f32);
    let w = Tensor2::from_fn(128, 64, |r, q| ((r * q) % 5) as f32);
    c.bench_function("gemm/512x128x64", |b| b.iter(|| a.matmul(&w).unwrap()));
    let model = GemmCostModel::new(GemmDevice::v100());
    c.bench_function("gemm_cost/eval", |b| b.iter(|| model.time_ms(100_000, 64, 64)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_gbdt, bench_predictor_choose, bench_graph_generation, bench_gemm
);
criterion_main!(benches);
