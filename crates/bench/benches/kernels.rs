//! Criterion micro-benchmarks of the kernel pipeline: how fast the
//! reproduction itself measures and executes graph operators. These guard
//! the harness's own performance (grid search cost = 196 x `measure`), not
//! the simulated GPU times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::{execute, measure, Fidelity, MeasureOptions, OpOperands};
use ugrapher_core::plan::KernelPlan;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::datasets::{by_abbrev, Scale};
use ugrapher_graph::Graph;
use ugrapher_sim::DeviceConfig;
use ugrapher_tensor::Tensor2;

fn test_graph() -> Graph {
    by_abbrev("PU").unwrap().build(Scale::Ratio(0.05))
}

fn bench_measure_per_strategy(c: &mut Criterion) {
    let graph = test_graph();
    let op = OpInfo::aggregation_sum();
    let feat = 32;
    let mut group = c.benchmark_group("measure_full_fidelity");
    for strategy in Strategy::ALL {
        let plan = KernelPlan::generate(
            op,
            ParallelInfo::basic(strategy),
            graph.num_vertices(),
            graph.num_edges(),
            feat,
        )
        .unwrap();
        let options = MeasureOptions::new(DeviceConfig::v100());
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &plan,
            |b, plan| b.iter(|| measure(&graph, plan, &options)),
        );
    }
    group.finish();
}

fn bench_measure_sampled(c: &mut Criterion) {
    let graph = by_abbrev("AR").unwrap().build(Scale::Ratio(0.05));
    let op = OpInfo::aggregation_sum();
    let plan = KernelPlan::generate(
        op,
        ParallelInfo::basic(Strategy::ThreadEdge),
        graph.num_vertices(),
        graph.num_edges(),
        32,
    )
    .unwrap();
    let mut group = c.benchmark_group("measure_fidelity");
    for (name, fidelity) in [("full", Fidelity::Full), ("auto", Fidelity::Auto)] {
        let options = MeasureOptions {
            device: DeviceConfig::v100(),
            fidelity,
        };
        group.bench_function(name, |b| b.iter(|| measure(&graph, &plan, &options)));
    }
    group.finish();
}

fn bench_functional_execute(c: &mut Criterion) {
    let graph = test_graph();
    let x = Tensor2::full(graph.num_vertices(), 32, 1.0);
    let operands = OpOperands::single(&x);
    for (name, op) in [
        ("aggregation_sum", OpInfo::aggregation_sum()),
        ("aggregation_max", OpInfo::aggregation_max()),
    ] {
        c.bench_function(&format!("execute/{name}"), |b| {
            b.iter(|| execute(&graph, &op, &operands).unwrap())
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_measure_per_strategy, bench_measure_sampled, bench_functional_execute
);
criterion_main!(benches);
