//! # ugrapher-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md §4 for the full index), plus Criterion
//! micro-benches. Every binary prints the same rows/series the paper
//! reports; EXPERIMENTS.md records paper-vs-measured for each.
//!
//! ## Scale control
//!
//! Real Table 3 datasets reach 4.9 M edges; the default harness scale is
//! `UGRAPHER_SCALE=0.05` (5% of paper size, same degree statistics), which
//! keeps the full suite in the minutes range. Set `UGRAPHER_SCALE=full` (or
//! any ratio like `0.25`) to change it. `UGRAPHER_QUICK=1` shrinks dataset
//! lists for smoke runs.

use std::io::Write;
use std::path::PathBuf;

use ugrapher_util::json::{FromJson, ToJson};

use ugrapher_baselines::{DglBackend, GnnAdvisorBackend, PygBackend};
use ugrapher_gnn::{run_inference, GraphOpBackend, ModelConfig, ModelKind, UGrapherBackend};
use ugrapher_graph::datasets::{DatasetInfo, Scale};
use ugrapher_graph::Graph;
use ugrapher_sim::DeviceConfig;
use ugrapher_tensor::Tensor2;

pub mod sweep;

/// The dataset scale selected by `UGRAPHER_SCALE` (default `0.05`).
pub fn scale() -> Scale {
    match std::env::var("UGRAPHER_SCALE").ok().as_deref() {
        Some("full") | Some("FULL") => Scale::Full,
        Some(s) => Scale::Ratio(s.parse().unwrap_or(0.05)),
        None => Scale::Ratio(0.05),
    }
}

/// Whether `UGRAPHER_QUICK=1` smoke mode is on.
pub fn quick() -> bool {
    std::env::var("UGRAPHER_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The evaluation dataset abbreviations (paper Table 9 uses nine; quick
/// mode trims to four).
pub fn eval_datasets() -> Vec<&'static str> {
    if quick() {
        vec!["CO", "PR", "AR", "TW"]
    } else {
        ugrapher_graph::datasets::groups::EVAL_NINE.to_vec()
    }
}

/// Builds a dataset's graph and an input feature tensor at harness scale.
/// Feature dimensions are capped at 256 so the functional pass on scaled
/// citation graphs (cora's 1433 features) stays cheap; the cap is recorded
/// in EXPERIMENTS.md.
pub fn load(dataset: &DatasetInfo) -> (Graph, Tensor2) {
    let graph = dataset.build(scale());
    let feat = dataset.feature_dim.min(256);
    let x = Tensor2::from_fn(graph.num_vertices(), feat, |r, c| {
        ((r * 31 + c * 7) % 23) as f32 * 0.03
    });
    (graph, x)
}

/// The four systems of the comparison, in the paper's order.
pub fn backends(device: &DeviceConfig) -> Vec<Box<dyn GraphOpBackend>> {
    vec![
        Box::new(DglBackend::new(device.clone())),
        Box::new(PygBackend::new(device.clone())),
        Box::new(GnnAdvisorBackend::new(device.clone())),
        Box::new(UGrapherBackend::new(device.clone())),
    ]
}

/// Runs one (model, dataset, backend) cell of the Fig. 13 sweep, returning
/// total inference time in ms, or `None` if the backend does not support
/// the model (GNNAdvisor beyond GCN/GIN — the paper's missing bars) or the
/// run failed. A failure is reported on stderr and rendered as a missing
/// bar instead of aborting the whole sweep.
pub fn end_to_end_ms(
    kind: ModelKind,
    graph: &Graph,
    x: &Tensor2,
    num_classes: usize,
    backend: &dyn GraphOpBackend,
) -> Option<f64> {
    if !backend.supports(kind) {
        return None;
    }
    let model = ModelConfig::paper_default(kind);
    match run_inference(&model, graph, x, num_classes, backend) {
        Ok(res) => Some(res.total_ms()),
        Err(e) => {
            eprintln!("[skipped] {} on {kind:?} failed: {e}", backend.name());
            None
        }
    }
}

/// Geometric mean of positive values; 0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:>w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Directory where figure binaries persist their JSON results
/// (`results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("can create results dir");
    dir
}

/// Saves a serializable result under `results/<name>.json`.
pub fn save_json<T: ToJson>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("can create results file");
    let json = ugrapher_util::json::to_string(value);
    f.write_all(json.as_bytes())
        .expect("can write results file");
    println!("[saved {}]", path.display());
}

/// Loads a previously saved result, if present and parseable.
pub fn load_json<T: FromJson>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    let data = std::fs::read_to_string(path).ok()?;
    ugrapher_util::json::from_str(&data).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eval_dataset_abbrevs_resolve() {
        for a in eval_datasets() {
            assert!(ugrapher_graph::datasets::by_abbrev(a).is_some());
        }
    }

    #[test]
    fn backends_come_in_paper_order() {
        let b = backends(&DeviceConfig::v100());
        let names: Vec<_> = b.iter().map(|x| x.name()).collect();
        assert_eq!(names, vec!["dgl", "pyg", "gnnadvisor", "ugrapher"]);
    }
}
