//! The shared end-to-end sweep behind Figs. 1, 13, 14, 15 and 19: every
//! (device, model, dataset, system) cell's inference time.

use ugrapher_util::json::{FromJson, JsonError, ToJson, Value};

use ugrapher_gnn::ModelKind;
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

use crate::{backends, end_to_end_ms, load};

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Device name ("V100" / "A100").
    pub device: String,
    /// Model label ("GCN", "SMax", ...).
    pub model: String,
    /// Dataset abbreviation ("CO", "SB", ...).
    pub dataset: String,
    /// System name ("dgl", "pyg", "gnnadvisor", "ugrapher").
    pub system: String,
    /// End-to-end inference time in ms; `None` where the system does not
    /// support the model (the paper's missing bars).
    pub time_ms: Option<f64>,
}

/// The full sweep result, persisted as `results/sweep.json` so the figure
/// binaries that aggregate it (Figs. 1, 14, 15) don't re-measure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepResult {
    /// All measured cells.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// Looks up one cell's time.
    pub fn time(&self, device: &str, model: &str, dataset: &str, system: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| {
                c.device == device && c.model == model && c.dataset == dataset && c.system == system
            })
            .and_then(|c| c.time_ms)
    }

    /// Distinct values of a field, in first-seen order.
    pub fn distinct(&self, field: impl Fn(&SweepCell) -> &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            let v = field(c);
            if !out.iter().any(|x| x == v) {
                out.push(v.to_owned());
            }
        }
        out
    }

    /// Speedups of `ugrapher` over `system` for every supported
    /// (model, dataset) pair on a device.
    pub fn speedups_over(&self, device: &str, system: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for c in &self.cells {
            if c.device != device || c.system != system {
                continue;
            }
            if let (Some(base), Some(ours)) = (
                c.time_ms,
                self.time(device, &c.model, &c.dataset, "ugrapher"),
            ) {
                out.push(base / ours);
            }
        }
        out
    }
}

impl ToJson for SweepCell {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("device", self.device.to_json()),
            ("model", self.model.to_json()),
            ("dataset", self.dataset.to_json()),
            ("system", self.system.to_json()),
            ("time_ms", self.time_ms.to_json()),
        ])
    }
}

impl FromJson for SweepCell {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SweepCell {
            device: String::from_json(v.field("device")?)?,
            model: String::from_json(v.field("model")?)?,
            dataset: String::from_json(v.field("dataset")?)?,
            system: String::from_json(v.field("system")?)?,
            time_ms: Option::<f64>::from_json(v.field("time_ms")?)?,
        })
    }
}

impl ToJson for SweepResult {
    fn to_json(&self) -> Value {
        Value::obj(vec![("cells", self.cells.to_json())])
    }
}

impl FromJson for SweepResult {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SweepResult {
            cells: Vec::<SweepCell>::from_json(v.field("cells")?)?,
        })
    }
}

/// Runs the sweep over the given devices, models and datasets.
pub fn run_sweep(devices: &[DeviceConfig], models: &[ModelKind], datasets: &[&str]) -> SweepResult {
    let mut cells = Vec::new();
    for device in devices {
        let systems = backends(device);
        for abbrev in datasets {
            let info = by_abbrev(abbrev).unwrap_or_else(|| panic!("unknown dataset {abbrev}"));
            let (graph, x) = load(&info);
            eprintln!(
                "[sweep] {} / {} ({} vertices, {} edges)",
                device.name,
                info.name,
                graph.num_vertices(),
                graph.num_edges()
            );
            for &kind in models {
                for backend in &systems {
                    let time_ms =
                        end_to_end_ms(kind, &graph, &x, info.num_classes, backend.as_ref());
                    cells.push(SweepCell {
                        device: device.name.clone(),
                        model: kind.label().to_owned(),
                        dataset: (*abbrev).to_owned(),
                        system: backend.name().to_owned(),
                        time_ms,
                    });
                }
            }
        }
    }
    SweepResult { cells }
}

/// Loads the cached sweep if present, otherwise runs and caches it.
pub fn sweep_cached() -> SweepResult {
    if let Some(s) = crate::load_json::<SweepResult>("sweep") {
        if !s.cells.is_empty() {
            eprintln!(
                "[sweep] using cached results/sweep.json ({} cells)",
                s.cells.len()
            );
            return s;
        }
    }
    let devices = [DeviceConfig::v100(), DeviceConfig::a100()];
    let models = ModelKind::ALL;
    let datasets = crate::eval_datasets();
    let result = run_sweep(&devices, &models, &datasets);
    crate::save_json("sweep", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_result_lookup() {
        let r = SweepResult {
            cells: vec![
                SweepCell {
                    device: "V100".into(),
                    model: "GCN".into(),
                    dataset: "CO".into(),
                    system: "dgl".into(),
                    time_ms: Some(2.0),
                },
                SweepCell {
                    device: "V100".into(),
                    model: "GCN".into(),
                    dataset: "CO".into(),
                    system: "ugrapher".into(),
                    time_ms: Some(1.0),
                },
            ],
        };
        assert_eq!(r.time("V100", "GCN", "CO", "dgl"), Some(2.0));
        assert_eq!(r.time("V100", "GCN", "CO", "pyg"), None);
        assert_eq!(r.speedups_over("V100", "dgl"), vec![2.0]);
        assert_eq!(r.distinct(|c| &c.system), vec!["dgl", "ugrapher"]);
    }

    #[test]
    fn tiny_sweep_runs() {
        std::env::set_var("UGRAPHER_SCALE", "0.002");
        let r = run_sweep(&[DeviceConfig::v100()], &[ModelKind::Gcn], &["CO"]);
        std::env::remove_var("UGRAPHER_SCALE");
        assert_eq!(r.cells.len(), 4);
        // GNNAdvisor supports GCN; all four systems report a time.
        assert!(r.cells.iter().all(|c| c.time_ms.is_some()));
    }
}
