//! Fig. 12: predictor vs grid search for the first layer of GCN on V100.
//!
//! Trains the GBDT schedule predictor on random graphs (paper §5.4), then
//! compares the latency of its chosen schedule against the grid-search
//! optimum for GCN L1's weighted aggregation on each dataset. The paper's
//! claim: the predictor achieves performance close to grid search.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use ugrapher_bench::{eval_datasets, print_table, quick, save_json, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::MeasureOptions;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::{grid_search_shaped, Predictor, PredictorConfig};
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::v100();

    // Training configuration: the paper trains on 128 random graphs; quick
    // mode shrinks that for smoke runs.
    let mut config = PredictorConfig::paper(device.clone());
    if quick() {
        config.num_graphs = 8;
        config.feat_dims = vec![16];
        config.schedules = ParallelInfo::basics();
    } else {
        // Keep training tractable on the harness machine while preserving
        // the paper's structure (many graphs x ops x schedules).
        config.num_graphs = 12;
        config.vertex_range = (256, 8_000);
        config.feat_dims = vec![16];
        config.ops = vec![
            OpInfo::aggregation_sum(),
            OpInfo::weighted_aggregation_sum(),
            OpInfo::aggregation_max(),
            OpInfo::message_creation_add(),
        ];
    }
    let t0 = Instant::now();
    let predictor = Predictor::train(&config);
    println!(
        "trained on {} random graphs x {} ops x {} feature dims x {} schedules in {:.1?}",
        config.num_graphs,
        config.ops.len(),
        config.feat_dims.len(),
        config.schedules.len(),
        t0.elapsed()
    );

    // GCN L1: weighted aggregation with a scalar edge weight, feature =
    // hidden size 16.
    let op = OpInfo::weighted_aggregation_sum();
    let feat = 16;
    let options = MeasureOptions::auto(device);

    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for abbrev in eval_datasets() {
        let graph = by_abbrev(abbrev).unwrap().build(scale());
        let truth = grid_search_shaped(
            &graph,
            &op,
            feat,
            (false, true),
            &options,
            &config.schedules,
        )
        .expect("GCN L1 op is valid");
        let chosen = predictor
            .choose(&graph.degree_stats(), &op, feat)
            .expect("predictor covers this op");
        let chosen_time = truth.time_of(&chosen).expect("chosen is in the space");
        let gap = chosen_time / truth.best_time_ms;
        gaps.push(gap);
        rows.push(vec![
            abbrev.to_owned(),
            format!("{:.4}", truth.best_time_ms),
            truth.best.label(),
            format!("{:.4}", chosen_time),
            chosen.label(),
            format!("{:.2}x", gap),
        ]);
    }
    print_table(
        "Fig. 12: grid search vs predictor, GCN layer 1 (V100)",
        &[
            "dataset",
            "grid ms",
            "grid sched",
            "pred ms",
            "pred sched",
            "gap",
        ],
        &rows,
    );
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    println!("\nmean predictor gap: {mean_gap:.2}x (paper: close to 1.0)");
    save_json("fig12", &rows);
}
