//! Table 9: the grid-search-optimal schedule of seven named graph
//! operators, per dataset, on both GPUs — printed in the paper's
//! `(strategy)-(grouping)-(tiling)` label format (e.g. `TE_G4_T32`).
//!
//! Paper findings to look for: thread-edge dominates GAT_L1_MsgC
//! everywhere; large balanced graphs pick vertex strategies (locality over
//! parallelism); the two GPUs agree on strategy more often than on the
//! fine-grained knobs.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{eval_datasets, print_table, save_json, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::MeasureOptions;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::grid_search_shaped;
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

/// (label, operator, feature dim, (a_scalar, b_scalar)).
fn named_ops(input_feat: usize) -> Vec<(&'static str, OpInfo, usize, (bool, bool))> {
    vec![
        (
            "GAT_L1_MsgC",
            OpInfo::message_creation_add(),
            8,
            (false, false),
        ),
        (
            "GAT_L1_Aggr",
            OpInfo::weighted_aggregation_sum(),
            8,
            (false, true),
        ),
        (
            "GIN_L1_Aggr",
            OpInfo::aggregation_sum(),
            input_feat,
            (false, false),
        ),
        ("GIN_L2_Aggr", OpInfo::aggregation_sum(), 64, (false, false)),
        ("GIN_L5_Aggr", OpInfo::aggregation_sum(), 64, (false, false)),
        (
            "SageMax_L1_Aggr",
            OpInfo::aggregation_max(),
            input_feat,
            (false, false),
        ),
        (
            "SageMax_L2_Aggr",
            OpInfo::aggregation_max(),
            16,
            (false, false),
        ),
    ]
}

fn main() {
    let space = ParallelInfo::space();
    let mut json_rows: Vec<Vec<String>> = Vec::new();
    for device in [DeviceConfig::v100(), DeviceConfig::a100()] {
        let options = MeasureOptions::auto(device.clone());
        let mut rows = Vec::new();
        for abbrev in eval_datasets() {
            let info = by_abbrev(abbrev).unwrap();
            let graph = info.build(scale());
            let input_feat = info.feature_dim.min(256);
            let mut row = vec![abbrev.to_owned()];
            for (_, op, feat, scalars) in named_ops(input_feat) {
                let best = grid_search_shaped(&graph, &op, feat, scalars, &options, &space)
                    .expect("named ops are valid")
                    .best;
                row.push(best.label());
            }
            rows.push(row.clone());
            let mut jr = vec![device.name.clone()];
            jr.extend(row);
            json_rows.push(jr);
        }
        let labels: Vec<&str> = named_ops(64).iter().map(|(l, _, _, _)| *l).collect();
        let headers: Vec<&str> = std::iter::once("dataset").chain(labels).collect();
        print_table(
            &format!(
                "Table 9: optimal schedules per operator and dataset ({})",
                device.name
            ),
            &headers,
            &rows,
        );
    }
    save_json("tbl09", &json_rows);
    println!(
        "\nnotes: GIN L2 and L5 share a hidden size in our model, so their optima\n\
         coincide deterministically (the paper's differ only by measurement noise)."
    );
}
