//! Serving benchmark: drives mixed GCN/GAT/SAGE operator workloads from
//! the dataset registry through the `ugrapher-serve` engine and reports
//! throughput, latency percentiles and compiled-plan-cache effectiveness.
//!
//! Two phases per run:
//!
//! * **cold** — one request per (dataset, model flavor) key against an
//!   empty cache; every request pays auto-tuning, plan generation and IR
//!   lowering;
//! * **warm** — many rounds of the same request mix; every request hits
//!   the shared plan cache and pays only execution.
//!
//! Results land in `results/BENCH_serving.json`. `--smoke` (or
//! `UGRAPHER_QUICK=1`) shrinks datasets and rounds for CI.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;
use std::time::Instant;

use ugrapher_bench::{eval_datasets, print_table, quick, results_dir, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::Runtime;
use ugrapher_graph::datasets::{by_abbrev, Scale};
use ugrapher_serve::{ServeConfig, ServeEngine, ServeRequest};
use ugrapher_sim::DeviceConfig;
use ugrapher_tensor::Tensor2;
use ugrapher_util::json::Value;

const FEAT: usize = 32;
/// Warm rounds per key: 19 hits after 1 miss puts the floor at 95% hit
/// rate even before requests repeat across rounds.
const WARM_ROUNDS: usize = 19;
const SMOKE_WARM_ROUNDS: usize = 19;

/// One model-flavored operator request: the graph operator that dominates
/// the model's message-passing step.
fn flavors() -> Vec<(&'static str, OpInfo)> {
    vec![
        // GCN: edge-weighted aggregation (normalized adjacency).
        ("gcn", OpInfo::weighted_aggregation_sum()),
        // GAT: attention message creation (u_add_v into an edge tensor).
        ("gat", OpInfo::message_creation_add()),
        // GraphSAGE: mean aggregation of neighbor features.
        ("sage", OpInfo::aggregation_mean()),
    ]
}

struct Workload {
    dataset: &'static str,
    flavor: &'static str,
    request: ServeRequest,
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    let datasets: Vec<&'static str> = if smoke {
        vec!["CO", "PR"]
    } else {
        eval_datasets()
    };
    let graph_scale = if smoke { Scale::Ratio(0.01) } else { scale() };
    let mut workloads = Vec::new();
    for abbrev in datasets {
        let graph = Arc::new(by_abbrev(abbrev).unwrap().build(graph_scale));
        let x = Arc::new(Tensor2::from_fn(graph.num_vertices(), FEAT, |r, c| {
            ((r * 31 + c * 7) % 23) as f32 * 0.03
        }));
        let w = Arc::new(Tensor2::from_fn(graph.num_edges(), 1, |r, _| {
            1.0 / (1.0 + (r % 7) as f32)
        }));
        for (flavor, op) in flavors() {
            let request = match flavor {
                "gcn" => {
                    ServeRequest::binary(Arc::clone(&graph), op, Arc::clone(&x), Arc::clone(&w))
                }
                "gat" => {
                    ServeRequest::binary(Arc::clone(&graph), op, Arc::clone(&x), Arc::clone(&x))
                }
                _ => ServeRequest::fused(Arc::clone(&graph), op, Arc::clone(&x)),
            };
            workloads.push(Workload {
                dataset: abbrev,
                flavor,
                request,
            });
        }
    }
    workloads
}

/// Submits every workload once and waits for all replies; returns the
/// wall time in ms and the per-request latencies.
fn run_round(engine: &ServeEngine, workloads: &[Workload]) -> (f64, Vec<f64>, usize) {
    let t0 = Instant::now();
    let pending: Vec<_> = workloads
        .iter()
        .map(|w| (w.dataset, w.flavor, engine.submit(w.request.clone())))
        .collect();
    let mut latencies = Vec::new();
    let mut hits = 0usize;
    for (dataset, flavor, p) in pending {
        match p.and_then(|p| p.wait()) {
            Ok(resp) => {
                latencies.push(resp.total_ms);
                if resp.result.plan_cache_hit {
                    hits += 1;
                }
            }
            Err(e) => panic!("{dataset}/{flavor} request failed: {e}"),
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, latencies, hits)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = quick() || std::env::args().any(|a| a == "--smoke");
    let warm_rounds = if smoke {
        SMOKE_WARM_ROUNDS
    } else {
        WARM_ROUNDS
    };
    let workloads = build_workloads(smoke);
    let keys = workloads.len();

    let engine = ServeEngine::start(
        Runtime::new(DeviceConfig::v100()),
        ServeConfig {
            queue_capacity: (keys * 2).max(64),
            ..ServeConfig::default()
        },
    );

    // Cold: every key is a miss, paying auto-tuning + plan generation +
    // IR lowering.
    let (cold_ms, cold_latencies, cold_hits) = run_round(&engine, &workloads);
    assert_eq!(cold_hits, 0, "cold phase must not hit the cache");
    let cold_rps = keys as f64 / (cold_ms / 1e3);

    // Warm: the same mix, every request a cache hit.
    let t0 = Instant::now();
    let mut warm_latencies = Vec::new();
    let mut warm_hits = 0usize;
    for _ in 0..warm_rounds {
        let (_, latencies, hits) = run_round(&engine, &workloads);
        warm_latencies.extend(latencies);
        warm_hits += hits;
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_requests = keys * warm_rounds;
    let warm_rps = warm_requests as f64 / (warm_ms / 1e3);
    assert_eq!(warm_hits, warm_requests, "warm phase must hit every time");

    warm_latencies.sort_by(|a, b| a.total_cmp(b));
    let mut cold_sorted = cold_latencies.clone();
    cold_sorted.sort_by(|a, b| a.total_cmp(b));

    let stats = engine.cache_stats();
    let hit_rate = stats.hit_rate();
    let speedup = warm_rps / cold_rps;

    let mut rows = Vec::new();
    for w in &workloads {
        rows.push(vec![w.dataset.to_owned(), w.flavor.to_owned()]);
    }
    print_table(
        "Serving workload mix (one key per row)",
        &["dataset", "model"],
        &rows,
    );
    print_table(
        "Serving throughput and latency",
        &["phase", "requests", "rps", "p50 ms", "p99 ms"],
        &[
            vec![
                "cold".to_owned(),
                keys.to_string(),
                format!("{cold_rps:.1}"),
                format!("{:.3}", percentile(&cold_sorted, 0.50)),
                format!("{:.3}", percentile(&cold_sorted, 0.99)),
            ],
            vec![
                "warm".to_owned(),
                warm_requests.to_string(),
                format!("{warm_rps:.1}"),
                format!("{:.3}", percentile(&warm_latencies, 0.50)),
                format!("{:.3}", percentile(&warm_latencies, 0.99)),
            ],
        ],
    );
    println!(
        "\nwarm/cold speedup: {speedup:.1}x   cache hit rate: {:.1}% ({} hits / {} lookups)",
        hit_rate * 100.0,
        stats.hits,
        stats.hits + stats.misses
    );

    let json = Value::obj(vec![
        ("smoke", Value::Bool(smoke)),
        (
            "datasets",
            Value::Arr(
                workloads
                    .iter()
                    .map(|w| Value::Str(format!("{}/{}", w.dataset, w.flavor)))
                    .collect(),
            ),
        ),
        ("feat", Value::Num(FEAT as f64)),
        ("warm_rounds", Value::Num(warm_rounds as f64)),
        (
            "cold",
            Value::obj(vec![
                ("requests", Value::Num(keys as f64)),
                ("wall_ms", Value::Num(cold_ms)),
                ("throughput_rps", Value::Num(cold_rps)),
                ("p50_ms", Value::Num(percentile(&cold_sorted, 0.50))),
                ("p99_ms", Value::Num(percentile(&cold_sorted, 0.99))),
            ]),
        ),
        (
            "warm",
            Value::obj(vec![
                ("requests", Value::Num(warm_requests as f64)),
                ("wall_ms", Value::Num(warm_ms)),
                ("throughput_rps", Value::Num(warm_rps)),
                ("p50_ms", Value::Num(percentile(&warm_latencies, 0.50))),
                ("p99_ms", Value::Num(percentile(&warm_latencies, 0.99))),
            ]),
        ),
        ("warm_over_cold_speedup", Value::Num(speedup)),
        (
            "cache",
            Value::obj(vec![
                ("hits", Value::Num(stats.hits as f64)),
                ("misses", Value::Num(stats.misses as f64)),
                ("hit_rate", Value::Num(hit_rate)),
                ("entries", Value::Num(stats.entries as f64)),
                ("evictions", Value::Num(stats.evictions as f64)),
            ]),
        ),
    ]);
    let path = results_dir().join("BENCH_serving.json");
    std::fs::write(&path, json.to_string_compact()).expect("can write BENCH_serving.json");
    println!("[saved {}]", path.display());

    assert!(
        hit_rate >= 0.90,
        "cache hit rate {hit_rate:.3} below the 0.90 acceptance bar"
    );
    assert!(
        speedup >= 5.0,
        "warm throughput only {speedup:.1}x cold; acceptance bar is 5x"
    );
}
