//! Fig. 16: GPU performance counters for the second layer of SageMax —
//! SM utilization, L2 hit rate and achieved occupancy, per system, per
//! dataset. The paper's claim: uGrapher improves all three over the
//! baselines' fixed kernels.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_baselines::{DglBackend, PygBackend};
use ugrapher_bench::{eval_datasets, load, print_table};
use ugrapher_gnn::{
    run_inference, GraphOpBackend, ModelConfig, ModelKind, OpSite, OpSiteKind, UGrapherBackend,
};
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::v100();
    let dgl = DglBackend::new(device.clone());
    let pyg = PygBackend::new(device.clone());
    let ugrapher = UGrapherBackend::new(device);
    let systems: Vec<&dyn GraphOpBackend> = vec![&dgl, &pyg, &ugrapher];

    let model = ModelConfig::paper_default(ModelKind::SageMax);
    let site = OpSite::new(ModelKind::SageMax, 2, OpSiteKind::Aggregation);

    let mut rows = Vec::new();
    for abbrev in eval_datasets() {
        let info = by_abbrev(abbrev).unwrap();
        let (graph, x) = load(&info);
        for backend in &systems {
            let res = run_inference(&model, &graph, &x, info.num_classes, *backend)
                .expect("SageMax runs on these systems");
            let report = res
                .site_report(&site)
                .expect("SageMax L2 aggregation executed");
            rows.push(vec![
                abbrev.to_owned(),
                backend.name().to_owned(),
                format!("{:.3}", report.sm_efficiency),
                format!("{:.3}", report.l2_hit_rate),
                format!("{:.3}", report.achieved_occupancy),
                format!("{:.4}", report.time_ms),
            ]);
        }
    }
    print_table(
        "Fig. 16: nvprof-style metrics for SageMax layer-2 aggregation (V100)",
        &[
            "dataset",
            "system",
            "sm_util",
            "l2_hit",
            "occupancy",
            "time ms",
        ],
        &rows,
    );
    println!(
        "\npaper claim: uGrapher improves SM utilization, L2 hit rate and occupancy\n\
         relative to the fixed-strategy baselines."
    );
}
