//! Table 3: the 15 evaluation datasets — catalog targets vs the statistics
//! of the generated synthetic stand-ins at the current harness scale.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{print_table, scale};
use ugrapher_graph::datasets::catalog;

fn main() {
    let s = scale();
    println!("harness scale: {s:?}");
    let mut rows = Vec::new();
    for d in catalog() {
        let g = d.build(s);
        let stats = g.degree_stats();
        rows.push(vec![
            d.name.to_owned(),
            d.abbrev.to_owned(),
            d.num_vertices.to_string(),
            d.num_edges.to_string(),
            format!("{:.2}", d.std_nnz),
            d.feature_dim.to_string(),
            d.num_classes.to_string(),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            format!("{:.2}", stats.std_in_degree),
        ]);
    }
    print_table(
        "Table 3: dataset catalog (paper targets | generated at scale)",
        &[
            "dataset",
            "abbr",
            "#V(paper)",
            "#E(paper)",
            "std(paper)",
            "#feat",
            "#class",
            "#V(gen)",
            "#E(gen)",
            "std(gen)",
        ],
        &rows,
    );
    println!(
        "\nThe generated graphs reproduce the paper's behaviour-relevant statistics\n\
         (vertex count, edge count, degree std) at the configured scale; see DESIGN.md §2."
    );
}
