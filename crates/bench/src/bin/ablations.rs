//! Ablations of the simulator's design choices (DESIGN.md §5): each knob is
//! disabled in the device model and the strategy rankings re-measured, to
//! show which mechanism produces which paper phenomenon.
//!
//! 1. **Atomic serialization** — zero `atomic_serial_cycles`: edge-parallel
//!    strategies lose their work-efficiency penalty on hub-heavy graphs.
//! 2. **Latency hiding** — huge `mlp_per_warp`: occupancy stops mattering,
//!    deflating warp strategies' advantage on small graphs.
//! 3. **L2 capacity** — V100 with the A100's 40 MB L2: locality-driven
//!    strategy differences between the GPUs shrink (Table 9 discussion).

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::MeasureOptions;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::grid_search_space;
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn rank(device: DeviceConfig, abbrev: &str, feat: usize) -> Vec<String> {
    let graph = by_abbrev(abbrev).unwrap().build(scale());
    let options = MeasureOptions::auto(device);
    let mut all = grid_search_space(
        &graph,
        &OpInfo::aggregation_sum(),
        feat,
        &options,
        &ParallelInfo::basics(),
    )
    .expect("valid op")
    .all;
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    all.into_iter()
        .map(|(p, t)| format!("{}:{:.4}", p.strategy.label(), t))
        .collect()
}

fn main() {
    let baseline = DeviceConfig::v100();

    let mut no_atomics = baseline.clone();
    no_atomics.atomic_serial_cycles = 0.0;
    no_atomics.name = "V100-noAtomicSerial".into();

    let mut no_latency = baseline.clone();
    no_latency.mlp_per_warp = 1e6;
    no_latency.name = "V100-noLatencyHiding".into();

    let mut big_l2 = baseline.clone();
    big_l2.l2_bytes = DeviceConfig::a100().l2_bytes;
    big_l2.name = "V100-bigL2".into();

    let configs = [baseline.clone(), no_atomics, no_latency, big_l2];
    for abbrev in ["SB", "CO", "YE"] {
        let mut rows = Vec::new();
        for device in &configs {
            let ranking = rank(device.clone(), abbrev, 32);
            rows.push(vec![device.name.clone(), ranking.join("  ")]);
        }
        print_table(
            &format!("Ablation: basic-strategy ranking on {abbrev} (aggregation-sum, feature 32)"),
            &["device model", "strategies fastest -> slowest (label:ms)"],
            &rows,
        );
    }
    println!(
        "\nexpectations:\n\
         - without atomic serialization, edge strategies improve on hub-heavy SB;\n\
         - without latency-hiding coupling, small-graph (CO) strategy gaps shrink;\n\
         - a 40 MB L2 narrows locality-driven gaps on large graphs (YE)."
    );

    predictor_feature_ablation(baseline);
}

/// Table 7 ablation: does the predictor need the operator-info features?
fn predictor_feature_ablation(device: DeviceConfig) {
    use ugrapher_core::tune::{Predictor, PredictorConfig};

    let mut with_op = PredictorConfig::quick(device.clone());
    with_op.num_graphs = 10;
    with_op.ops = vec![
        OpInfo::aggregation_sum(),
        OpInfo::weighted_aggregation_sum(),
        OpInfo::message_creation_add(),
    ];
    let mut graph_only = with_op.clone();
    graph_only.use_op_features = false;

    let p_with = Predictor::train(&with_op);
    let p_without = Predictor::train(&graph_only);

    let options = MeasureOptions::auto(device);
    let mut rows = Vec::new();
    for abbrev in ["PU", "AR"] {
        let graph = by_abbrev(abbrev).unwrap().build(scale());
        let stats = graph.degree_stats();
        for op in &with_op.ops {
            let truth =
                grid_search_space(&graph, op, 16, &options, &ParallelInfo::basics()).unwrap();
            let gap = |p: &Predictor| {
                let chosen = p.choose(&stats, op, 16).expect("valid op");
                truth.time_of(&chosen).expect("within space") / truth.best_time_ms
            };
            rows.push(vec![
                abbrev.to_owned(),
                format!("{:?}/{:?}", op.edge_op, op.gather_op),
                format!("{:.2}x", gap(&p_with)),
                format!("{:.2}x", gap(&p_without)),
            ]);
        }
    }
    print_table(
        "Ablation: predictor features — graph+op (Table 7) vs graph-only",
        &[
            "dataset",
            "operator",
            "gap with op features",
            "gap graph-only",
        ],
        &rows,
    );
    println!(
        "\nexpectation: without operator features the model must give every\n\
         operator on a graph the same schedule, so gaps grow on mixed workloads."
    );
}
