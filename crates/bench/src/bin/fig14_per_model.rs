//! Fig. 14: per-model speedup of uGrapher over each baseline, geometric
//! mean across datasets, per GPU. Reuses the cached Fig. 13 sweep.
//!
//! Paper finding: models dominated by graph operators (GCN, SageMean) show
//! larger speedups; GEMM-heavy SageMax shows the smallest.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::sweep::sweep_cached;
use ugrapher_bench::{geomean, print_table};

fn main() {
    let sweep = sweep_cached();
    let devices = sweep.distinct(|c| &c.device);
    let models = sweep.distinct(|c| &c.model);
    let datasets = sweep.distinct(|c| &c.dataset);
    let systems: Vec<String> = sweep
        .distinct(|c| &c.system)
        .into_iter()
        .filter(|s| s != "ugrapher")
        .collect();

    for device in &devices {
        let mut rows = Vec::new();
        for model in &models {
            let mut row = vec![model.clone()];
            for system in &systems {
                let mut speedups = Vec::new();
                for dataset in &datasets {
                    if let (Some(base), Some(ours)) = (
                        sweep.time(device, model, dataset, system),
                        sweep.time(device, model, dataset, "ugrapher"),
                    ) {
                        speedups.push(base / ours);
                    }
                }
                row.push(if speedups.is_empty() {
                    "-".to_owned()
                } else {
                    format!("{:.2}x", geomean(&speedups))
                });
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("model")
            .chain(systems.iter().map(|s| s.as_str()))
            .collect();
        print_table(
            &format!("Fig. 14: per-model speedup of uGrapher ({device}, geomean over datasets)"),
            &headers,
            &rows,
        );
    }
}
