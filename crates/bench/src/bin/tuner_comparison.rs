//! Tuner comparison: exhaustive grid search vs budgeted random search vs
//! basics-only, quantifying what the paper's full 196-point sweep actually
//! buys (§5.4 motivates the predictor by grid search's cost; this shows
//! the quality/cost frontier of the alternatives).

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use ugrapher_bench::{eval_datasets, print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::MeasureOptions;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::{grid_search_space, random_search};
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn main() {
    let options = MeasureOptions::auto(DeviceConfig::v100());
    let op = OpInfo::aggregation_sum();
    let feat = 32;

    let mut rows = Vec::new();
    for abbrev in eval_datasets() {
        let graph = by_abbrev(abbrev).unwrap().build(scale());
        let t0 = Instant::now();
        let grid = grid_search_space(&graph, &op, feat, &options, &ParallelInfo::space()).unwrap();
        let grid_cost = t0.elapsed();
        let t0 = Instant::now();
        let rand24 = random_search(&graph, &op, feat, (false, false), &options, 24, 7).unwrap();
        let rand_cost = t0.elapsed();
        let basics =
            grid_search_space(&graph, &op, feat, &options, &ParallelInfo::basics()).unwrap();
        rows.push(vec![
            abbrev.to_owned(),
            format!("{:.4} ({:.1?})", grid.best_time_ms, grid_cost),
            format!(
                "{:.4} ({:.1?}, {:.2}x)",
                rand24.best_time_ms,
                rand_cost,
                rand24.best_time_ms / grid.best_time_ms
            ),
            format!(
                "{:.4} ({:.2}x)",
                basics.best_time_ms,
                basics.best_time_ms / grid.best_time_ms
            ),
        ]);
    }
    print_table(
        "Tuner quality/cost: grid (196 pts) vs random (28 pts) vs basics (4 pts); ms (search cost, gap)",
        &["dataset", "grid search", "random-28", "basics-only"],
        &rows,
    );
    println!(
        "\nthe knob space matters exactly where basics-only shows a gap; random-28\n\
         closes most of it at ~1/7 the search cost, and the trained predictor\n\
         (fig12) closes it at negligible cost."
    );
}
