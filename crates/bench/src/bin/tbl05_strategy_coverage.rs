//! Tables 1 & 5: comparison of the parallelization-strategy coverage of
//! each system, derived programmatically from the backends' actual
//! dispatch logic rather than restated by hand.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use ugrapher_baselines::{DglBackend, GnnAdvisorBackend};
use ugrapher_bench::print_table;
use ugrapher_core::abstraction::{registry, OpCategory};
use ugrapher_core::schedule::ParallelInfo;

fn main() {
    // Collect each baseline's reachable schedules over every operator.
    let ops = registry::all_valid_ops();
    let mut dgl: BTreeSet<String> = BTreeSet::new();
    let mut advisor: BTreeSet<String> = BTreeSet::new();
    for op in &ops {
        dgl.insert(DglBackend::strategy_for(op).label());
        advisor.insert(GnnAdvisorBackend::strategy_for(op).label());
    }
    let space = ParallelInfo::space();

    let rows = vec![
        vec![
            "DGL".to_owned(),
            "static".to_owned(),
            format!("{:?}", dgl.iter().collect::<Vec<_>>()),
            dgl.len().to_string(),
        ],
        vec![
            "PyG".to_owned(),
            "static".to_owned(),
            "[\"TE_G1_T1\"] (gather-scatter, all stages)".to_owned(),
            "1".to_owned(),
        ],
        vec![
            "GNNAdvisor".to_owned(),
            "static".to_owned(),
            format!("{:?}", advisor.iter().collect::<Vec<_>>()),
            advisor.len().to_string(),
        ],
        vec![
            "uGrapher".to_owned(),
            "adaptive".to_owned(),
            "4 strategies x 7 groupings x 7 tilings".to_owned(),
            space.len().to_string(),
        ],
    ];
    print_table(
        "Tables 1 & 5: parallelization coverage per system (derived from backend dispatch)",
        &["system", "selection", "reachable schedules", "count"],
        &rows,
    );

    // Operator extensibility (Table 1's \"extension overhead\" column):
    // count how many distinct operators each path supports without new
    // code. The unified abstraction covers all of them by construction.
    let census: Vec<String> = [
        OpCategory::MessageCreation,
        OpCategory::MessageAggregation,
        OpCategory::FusedAggregation,
    ]
    .iter()
    .map(|cat| {
        format!(
            "{:?}: {}",
            cat,
            ops.iter().filter(|o| o.category() == *cat).count()
        )
    })
    .collect();
    println!(
        "\noperators expressible from op_info alone: {} ({})",
        ops.len(),
        census.join(", ")
    );
    println!(
        "paper Table 1: GNNAdvisor/GE-SpMM need handwritten CUDA per new operator,\n\
         FeatGraph a new TVM template; uGrapher needs only the operator info."
    );
}
