//! Fig. 19: graph-data preprocessing study — GCN end-to-end time with and
//! without Rabbit-style node renumbering, per system, V100.
//!
//! Paper claim: renumbering helps all systems (it is orthogonal to
//! scheduling), and uGrapher keeps its advantage either way.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{backends, eval_datasets, geomean, load, print_table};
use ugrapher_gnn::{run_inference, ModelConfig, ModelKind};
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_graph::reorder::{cluster_order, edge_locality_score, Permutation};
use ugrapher_sim::DeviceConfig;
use ugrapher_tensor::Tensor2;

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn main() {
    let device = DeviceConfig::v100();
    let systems = backends(&device);
    let model = ModelConfig::paper_default(ModelKind::Gcn);

    let mut rows = Vec::new();
    let mut speedup_plain = Vec::new();
    let mut speedup_renum = Vec::new();
    for abbrev in eval_datasets() {
        let info = by_abbrev(abbrev).unwrap();
        let (graph0, x0) = load(&info);
        // Real dataset files arrive in arbitrary vertex order; our
        // generator emits community-ordered ids. Scramble deterministically
        // so the renumbering study starts from the realistic baseline.
        let n = graph0.num_vertices() as u32;
        let mut stride = 48_271u32 % n.max(1);
        while n > 0 && gcd(stride, n) != 1 {
            stride += 1;
        }
        let scramble = Permutation::new(
            (0..n)
                .map(|v| (v as u64 * stride as u64 % n as u64) as u32)
                .collect(),
        )
        .expect("stride is coprime with n");
        let graph = scramble.apply(&graph0);
        let inv0 = scramble.inverse();
        let x = ugrapher_tensor::Tensor2::from_fn(x0.rows(), x0.cols(), |r_new, c| {
            x0[(inv0.new_of_old()[r_new] as usize, c)]
        });
        let perm = cluster_order(&graph);
        let renumbered = perm.apply(&graph);
        // Features move with the vertices: new row r holds old row inv(r).
        let inv = perm.inverse();
        let x_renum = Tensor2::from_fn(x.rows(), x.cols(), |r_new, c| {
            x[(inv.new_of_old()[r_new] as usize, c)]
        });
        let mut row = vec![
            abbrev.to_owned(),
            format!("{:.0}", edge_locality_score(&graph)),
            format!("{:.0}", edge_locality_score(&renumbered)),
        ];
        let mut times = Vec::new();
        for backend in &systems {
            let plain = run_inference(&model, &graph, &x, info.num_classes, backend.as_ref())
                .expect("GCN runs everywhere")
                .total_ms();
            let renum = run_inference(
                &model,
                &renumbered,
                &x_renum,
                info.num_classes,
                backend.as_ref(),
            )
            .expect("GCN runs everywhere")
            .total_ms();
            row.push(format!("{plain:.4}"));
            row.push(format!("{renum:.4}"));
            times.push((plain, renum));
        }
        let (ug_plain, ug_renum) = *times.last().expect("ugrapher is last");
        let (dgl_plain, dgl_renum) = times[0];
        speedup_plain.push(dgl_plain / ug_plain);
        speedup_renum.push(dgl_renum / ug_renum);
        rows.push(row);
    }
    print_table(
        "Fig. 19: GCN with Rabbit-style node renumbering (V100; locality = mean |src-dst| id distance)",
        &[
            "dataset", "loc", "loc(renum)", "dgl", "dgl(r)", "pyg", "pyg(r)", "advisor",
            "advisor(r)", "ugrapher", "ugrapher(r)",
        ],
        &rows,
    );
    println!(
        "\nuGrapher speedup over DGL: {:.2}x without renumbering, {:.2}x with\n\
         (paper: uGrapher retains a substantial speedup in both settings).",
        geomean(&speedup_plain),
        geomean(&speedup_renum),
    );
}
