//! §7.4 overhead analysis: one schedule prediction must cost well under
//! 0.2 ms, so running it once before inference is negligible.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::tune::{Predictor, PredictorConfig};
use ugrapher_graph::datasets::{by_abbrev, Scale};
use ugrapher_sim::DeviceConfig;

fn main() {
    let config = PredictorConfig::quick(DeviceConfig::v100());
    let predictor = Predictor::train(&config);

    let graph = by_abbrev("PU").unwrap().build(Scale::Tiny);
    let stats = graph.degree_stats();
    let op = OpInfo::aggregation_sum();

    // Warm up, then measure.
    for _ in 0..100 {
        let _ = predictor.choose(&stats, &op, 32).unwrap();
    }
    let iters = 10_000;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(predictor.choose(&stats, &op, 32).unwrap());
    }
    let per_call_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!(
        "schedule prediction: {per_call_ms:.5} ms per call over {} candidate schedules",
        predictor.schedules().len()
    );
    println!(
        "paper bound: < 0.2 ms per prediction — {}",
        if per_call_ms < 0.2 { "PASS" } else { "FAIL" }
    );

    // Also report the full-space variant used in deployment.
    let mut full = PredictorConfig::quick(DeviceConfig::v100());
    full.schedules = ugrapher_core::schedule::ParallelInfo::space();
    full.num_graphs = 3;
    let predictor = Predictor::train(&full);
    let t0 = Instant::now();
    for _ in 0..1000 {
        std::hint::black_box(predictor.choose(&stats, &op, 32).unwrap());
    }
    let per_call_ms = t0.elapsed().as_secs_f64() * 1e3 / 1000.0;
    println!(
        "full 196-schedule space: {per_call_ms:.5} ms per call — {}",
        if per_call_ms < 0.2 { "PASS" } else { "FAIL" }
    );
}
