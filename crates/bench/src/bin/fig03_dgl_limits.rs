//! Fig. 3: limitations of DGL's fixed kernels, feature size 32.
//!
//! (a) Achieved occupancy: imbalanced graphs (AR, SB) vs balanced (PR, DD),
//!     for *weighted-aggr-sum* and *unweighted-aggr-max*;
//! (b) SM efficiency and L2 hit rate: small graphs (CO, CI) vs large
//!     (SW, OV).
//!
//! All runs use the DGL backend's fixed strategy for aggregations
//! (warp-vertex) at full trace fidelity.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_baselines::DglBackend;
use ugrapher_bench::{print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::Runtime;
use ugrapher_core::exec::Fidelity;
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

const FEAT: usize = 32;

fn main() {
    let rt = Runtime::new(DeviceConfig::v100()).with_fidelity(Fidelity::Full);
    let ops = [
        ("weighted-aggr-sum", OpInfo::weighted_aggregation_sum()),
        ("unweighted-aggr-max", OpInfo::aggregation_max()),
    ];

    let mut rows = Vec::new();
    for abbrev in ["AR", "SB", "PR", "DD", "CO", "CI", "SW", "OV"] {
        let info = by_abbrev(abbrev).unwrap();
        let graph = info.build(scale());
        let group = match abbrev {
            "AR" | "SB" => "imbalanced",
            "PR" | "DD" => "balanced",
            "CO" | "CI" => "small",
            _ => "large",
        };
        for (name, op) in &ops {
            let strategy = DglBackend::strategy_for(op);
            let report = rt
                .measure_only(&graph, op, FEAT, strategy)
                .expect("fig3 ops are valid");
            rows.push(vec![
                abbrev.to_owned(),
                group.to_owned(),
                (*name).to_owned(),
                format!("{:.3}", report.achieved_occupancy),
                format!("{:.3}", report.sm_efficiency),
                format!("{:.3}", report.l2_hit_rate),
            ]);
        }
    }
    print_table(
        "Fig. 3: DGL kernel limitations (feature 32, V100, fixed warp-vertex kernel)",
        &[
            "dataset",
            "group",
            "operator",
            "occupancy",
            "sm_eff",
            "l2_hit",
        ],
        &rows,
    );

    println!(
        "\npaper findings to check against:\n\
         - occupancy: imbalanced (AR, SB) < balanced (PR, DD), esp. for the light max op\n\
         - sm efficiency: small (CO, CI) < large (SW, OV)\n\
         - l2 hit rate:   small (CO, CI) > large (SW, OV)"
    );
}
