//! Fig. 1: normalized-latency heatmap of DGL, PyG, GNNAdvisor and uGrapher
//! across models (x) and datasets (y) on the V100. For every (model,
//! dataset) cell the fastest system is 1.00; the paper's claim is that
//! uGrapher is at (or near) 1.00 almost everywhere while every baseline
//! has regions far from it.
//!
//! Reuses the cached Fig. 13 sweep.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::print_table;
use ugrapher_bench::sweep::sweep_cached;

fn main() {
    let sweep = sweep_cached();
    let device = "V100";
    let models = sweep.distinct(|c| &c.model);
    let datasets = sweep.distinct(|c| &c.dataset);
    let systems = sweep.distinct(|c| &c.system);

    let mut win_counts: std::collections::HashMap<String, usize> = Default::default();
    let mut near_optimal_ugrapher = 0usize;
    let mut total_cells = 0usize;

    for system in &systems {
        let mut rows = Vec::new();
        for dataset in &datasets {
            let mut row = vec![dataset.clone()];
            for model in &models {
                let best = systems
                    .iter()
                    .filter_map(|s| sweep.time(device, model, dataset, s))
                    .fold(f64::INFINITY, f64::min);
                match sweep.time(device, model, dataset, system) {
                    Some(t) if best.is_finite() => {
                        row.push(format!("{:.2}", t / best));
                    }
                    _ => row.push("-".to_owned()),
                }
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("dataset")
            .chain(models.iter().map(|m| m.as_str()))
            .collect();
        print_table(
            &format!("Fig. 1: normalized latency of {system} (V100; 1.00 = fastest system)"),
            &headers,
            &rows,
        );
    }

    for dataset in &datasets {
        for model in &models {
            let times: Vec<(String, f64)> = systems
                .iter()
                .filter_map(|s| {
                    sweep
                        .time(device, model, dataset, s)
                        .map(|t| (s.clone(), t))
                })
                .collect();
            let Some((winner, best)) = times
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .cloned()
            else {
                continue;
            };
            *win_counts.entry(winner).or_insert(0) += 1;
            total_cells += 1;
            if let Some(ug) = sweep.time(device, model, dataset, "ugrapher") {
                if ug <= best * 1.10 {
                    near_optimal_ugrapher += 1;
                }
            }
        }
    }
    println!("\nfastest-system counts (V100): {win_counts:?}");
    println!(
        "uGrapher within 10% of the best system in {near_optimal_ugrapher}/{total_cells} cells\n\
         (paper: optimal in almost all scenarios, near-optimal in the rest)"
    );
}
