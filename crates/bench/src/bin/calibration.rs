//! Simulator self-calibration report: achieved vs nominal primitive rates
//! on both device models (DESIGN.md §2's credibility check for the GPU
//! substitution).

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::print_table;
use ugrapher_sim::calibrate::calibrate;
use ugrapher_sim::DeviceConfig;

fn main() {
    for device in [DeviceConfig::v100(), DeviceConfig::a100()] {
        let rows: Vec<Vec<String>> = calibrate(&device)
            .into_iter()
            .map(|p| {
                vec![
                    p.name.to_owned(),
                    format!("{:.1} {}", p.nominal, p.unit),
                    format!("{:.1} {}", p.achieved, p.unit),
                    format!("{:.3}", p.ratio()),
                ]
            })
            .collect();
        print_table(
            &format!("Simulator calibration ({})", device.name),
            &["microbenchmark", "nominal", "achieved", "ratio"],
            &rows,
        );
    }
    println!("\nratios near 1.0 mean the timing model reproduces the device sheet rates.");
}
