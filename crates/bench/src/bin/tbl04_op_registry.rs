//! Table 4: the complete graph-operator representation — every legal
//! `(edge_op, gather_op, A, B, C)` combination, grouped as the paper's
//! table rows.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;

use ugrapher_bench::print_table;
use ugrapher_core::abstraction::{registry, OpCategory};

fn main() {
    let ops = registry::all_valid_ops();

    // Group by (category, edge-op class, gather-op class) like Table 4 rows.
    let mut groups: BTreeMap<(usize, String, String), Vec<String>> = BTreeMap::new();
    for op in &ops {
        let cat_rank = match op.category() {
            OpCategory::MessageCreation => 0,
            OpCategory::MessageAggregation => 1,
            OpCategory::FusedAggregation => 2,
        };
        let edge = if op.edge_op.is_copy() {
            format!("{:?}", op.edge_op)
        } else {
            "add/sub/mul/div".to_owned()
        };
        let gather = if op.gather_op.is_reduction() {
            "sum/max/min/mean".to_owned()
        } else {
            format!("{:?}", op.gather_op)
        };
        groups
            .entry((cat_rank, edge, gather))
            .or_default()
            .push(format!("{:?},{:?},{:?}", op.a, op.b, op.c));
    }

    let mut rows = Vec::new();
    for ((cat, edge, gather), combos) in &groups {
        let cat_name = [
            "Message Creation",
            "Message Aggregation",
            "Fused Aggregation",
        ][*cat];
        let mut unique: Vec<String> = combos.clone();
        unique.sort();
        unique.dedup();
        rows.push(vec![
            cat_name.to_owned(),
            edge.clone(),
            gather.clone(),
            unique.join("  "),
            combos.len().to_string(),
        ]);
    }
    print_table(
        "Table 4: complete graph-operator representation of uGrapher",
        &[
            "category",
            "edge_op",
            "gather_op",
            "A,B,C combinations",
            "ops",
        ],
        &rows,
    );
    println!("\ntotal valid operators: {}", ops.len());
}
