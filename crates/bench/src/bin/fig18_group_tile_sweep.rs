//! Fig. 18: execution time as a function of the grouping (rows) and tiling
//! (columns) parameters, for each basic strategy — GIN layer-1 aggregation
//! on TWITTER-Partial, V100. Shows that the knobs' effect depends on the
//! strategy, so they must be co-tuned.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::Runtime;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn main() {
    let info = by_abbrev("TW").unwrap();
    let graph = info.build(scale());
    // GIN L1 aggregation on TW: input feature dim (capped as in the models).
    let op = OpInfo::aggregation_sum();
    let feat = 64;
    let rt = Runtime::new(DeviceConfig::v100());

    let knobs = ParallelInfo::KNOB_VALUES;
    for strategy in Strategy::ALL {
        let mut best = f64::INFINITY;
        let mut grid = Vec::new();
        for &g in &knobs {
            let mut row = Vec::new();
            for &t in &knobs {
                let time = rt
                    .measure_only(&graph, &op, feat, ParallelInfo::new(strategy, g, t))
                    .expect("valid schedule")
                    .time_ms;
                best = best.min(time);
                row.push(time);
            }
            grid.push(row);
        }
        let rows: Vec<Vec<String>> = knobs
            .iter()
            .zip(&grid)
            .map(|(g, times)| {
                let mut row = vec![format!("G{g}")];
                row.extend(times.iter().map(|t| format!("{:.2}", t / best)));
                row
            })
            .collect();
        let headers: Vec<String> = std::iter::once("grp\\tile".to_owned())
            .chain(knobs.iter().map(|t| format!("T{t}")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Fig. 18: {} grouping x tiling sweep, GIN L1 on {} (normalized; best of this strategy = 1.0)",
                strategy.label(),
                info.name
            ),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\npaper claim: the effect of grouping/tiling differs per basic strategy,\n\
         so fine-grained parameters must be tuned jointly with the strategy."
    );
}
