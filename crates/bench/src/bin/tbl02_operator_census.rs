//! Table 2: classification of graph operators by input/output tensor type.
//!
//! The paper counts the 160 operators DGL ships; we enumerate the legal
//! combinations of the unified abstraction (Table 4 rules) and report the
//! census per category — the same qualitative shape: fused aggregation
//! dominates, all three categories populated.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::print_table;
use ugrapher_core::abstraction::{registry, OpCategory, TensorType};

fn main() {
    let ops = registry::all_valid_ops();
    let census = registry::census();

    let mut rows = Vec::new();
    for (cat, count) in &census {
        let name = match cat {
            OpCategory::MessageCreation => "Message Creation",
            OpCategory::MessageAggregation => "Message Aggregation",
            OpCategory::FusedAggregation => "Fused Aggregation",
        };
        let inputs: Vec<String> = ops
            .iter()
            .filter(|o| o.category() == *cat)
            .map(|o| format!("{:?}/{:?}", o.a, o.b))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let output = ops
            .iter()
            .find(|o| o.category() == *cat)
            .map(|o| format!("{:?}", o.c))
            .unwrap_or_default();
        rows.push(vec![
            name.to_owned(),
            inputs.join(", "),
            output,
            count.to_string(),
        ]);
    }
    rows.push(vec![
        "total".to_owned(),
        String::new(),
        String::new(),
        ops.len().to_string(),
    ]);

    print_table(
        "Table 2: graph-operator census (unified-abstraction combinations)",
        &["category", "input types (A/B)", "output", "count"],
        &rows,
    );

    // Sanity mirror of the paper's Table 2 structure.
    let fused = census
        .iter()
        .find(|(c, _)| *c == OpCategory::FusedAggregation)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    let aggregation = census
        .iter()
        .find(|(c, _)| *c == OpCategory::MessageAggregation)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    assert!(
        fused > aggregation,
        "fused aggregation dominates, as in Table 2"
    );
    assert!(ops
        .iter()
        .all(|o| o.c == TensorType::Edge || o.c == TensorType::DstV));
    println!("\npaper Table 2 counts: creation 32, aggregation 48, fused 80 (160 DGL ops)");
}
