//! Fig. 17: basic strategies (no grouping, no tiling) vs the tuned optimum.
//! Left: GAT layer-1 message creation; right: GIN layer-1 aggregation.
//! Values are normalized time (optimum = 1.0); the paper shows large gaps,
//! motivating the fine-grained knobs.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{eval_datasets, print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::MeasureOptions;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::grid_search_space;
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn main() {
    let options = MeasureOptions::auto(DeviceConfig::v100());
    let cases = [
        ("GAT_L1_MsgC", OpInfo::message_creation_add(), 8usize),
        ("GIN_L1_Aggr", OpInfo::aggregation_sum(), 64),
    ];
    let space = ParallelInfo::space();
    let basics = ParallelInfo::basics();

    for (name, op, feat) in cases {
        let mut rows = Vec::new();
        for abbrev in eval_datasets() {
            let graph = by_abbrev(abbrev).unwrap().build(scale());
            let full =
                grid_search_space(&graph, &op, feat, &options, &space).expect("operator is valid");
            let mut row = vec![abbrev.to_owned()];
            for b in &basics {
                let t = full.time_of(b).expect("basics are inside the space");
                row.push(format!("{:.2}", t / full.best_time_ms));
            }
            row.push(full.best.label());
            rows.push(row);
        }
        print_table(
            &format!("Fig. 17: basic strategies vs tuned optimum, {name} (V100; optimum = 1.0)"),
            &["dataset", "TV", "TE", "WV", "WE", "optimal"],
            &rows,
        );
    }
    println!(
        "\npaper claim: basic strategies alone leave a large gap to the optimum;\n\
         grouping and tiling knobs are necessary."
    );
}
