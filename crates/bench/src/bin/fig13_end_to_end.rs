//! Fig. 13: end-to-end inference time of DGL, PyG, GNNAdvisor and uGrapher
//! across models and datasets, on both GPUs. Prints absolute times per
//! (device, model) block — one row per dataset, one column per system —
//! and the geometric-mean speedups the paper headline reports.
//!
//! Results are cached in `results/sweep.json` for the Figs. 1/14/15
//! aggregation binaries.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::sweep::sweep_cached;
use ugrapher_bench::{geomean, print_table};

fn main() {
    let sweep = sweep_cached();
    let devices = sweep.distinct(|c| &c.device);
    let models = sweep.distinct(|c| &c.model);
    let datasets = sweep.distinct(|c| &c.dataset);
    let systems = sweep.distinct(|c| &c.system);

    for device in &devices {
        for model in &models {
            let mut rows = Vec::new();
            for dataset in &datasets {
                let mut row = vec![dataset.clone()];
                for system in &systems {
                    row.push(match sweep.time(device, model, dataset, system) {
                        Some(t) => format!("{t:.4}"),
                        None => "-".to_owned(),
                    });
                }
                rows.push(row);
            }
            let headers: Vec<&str> = std::iter::once("dataset")
                .chain(systems.iter().map(|s| s.as_str()))
                .collect();
            print_table(
                &format!("Fig. 13: end-to-end time (ms), {model} on {device}"),
                &headers,
                &rows,
            );
        }
    }

    println!("\n== geometric-mean speedup of uGrapher ==");
    for device in &devices {
        for system in &systems {
            if system == "ugrapher" {
                continue;
            }
            let speedups = sweep.speedups_over(device, system);
            println!(
                "  {device} vs {system:<11} {:.2}x over {} cells",
                geomean(&speedups),
                speedups.len()
            );
        }
    }
    println!(
        "\npaper (full-scale hardware): V100 3.04/3.75/1.76x and A100 4.07/5.13/2.04x\n\
         over DGL/PyG/GNNAdvisor respectively; expect the same ordering here."
    );
}
