//! Fig. 15: per-dataset speedup of uGrapher over each baseline, geometric
//! mean across models, per GPU. Reuses the cached Fig. 13 sweep.
//!
//! Paper finding: baselines are competitive only on a narrow band of
//! datasets; the A100 shows higher uGrapher speedups than the V100 because
//! its tensor-core GEMMs shrink the dense share of total time.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::sweep::sweep_cached;
use ugrapher_bench::{geomean, print_table};

fn main() {
    let sweep = sweep_cached();
    let devices = sweep.distinct(|c| &c.device);
    let models = sweep.distinct(|c| &c.model);
    let datasets = sweep.distinct(|c| &c.dataset);
    let systems: Vec<String> = sweep
        .distinct(|c| &c.system)
        .into_iter()
        .filter(|s| s != "ugrapher")
        .collect();

    let mut overall: Vec<(String, String, f64)> = Vec::new();
    for device in &devices {
        let mut rows = Vec::new();
        for dataset in &datasets {
            let mut row = vec![dataset.clone()];
            for system in &systems {
                let mut speedups = Vec::new();
                for model in &models {
                    if let (Some(base), Some(ours)) = (
                        sweep.time(device, model, dataset, system),
                        sweep.time(device, model, dataset, "ugrapher"),
                    ) {
                        speedups.push(base / ours);
                    }
                }
                row.push(if speedups.is_empty() {
                    "-".to_owned()
                } else {
                    format!("{:.2}x", geomean(&speedups))
                });
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("dataset")
            .chain(systems.iter().map(|s| s.as_str()))
            .collect();
        print_table(
            &format!("Fig. 15: per-dataset speedup of uGrapher ({device}, geomean over models)"),
            &headers,
            &rows,
        );
        for system in &systems {
            overall.push((
                device.clone(),
                system.clone(),
                geomean(&sweep.speedups_over(device, system)),
            ));
        }
    }

    println!("\n== cross-GPU comparison (paper: A100 speedups exceed V100) ==");
    for (device, system, s) in &overall {
        println!("  {device} vs {system:<11} {s:.2}x");
    }
}
