//! Table 6: measured locality / parallelism / work-efficiency trade-offs
//! of the parallelization strategies, relative to the thread-edge baseline.
//!
//! The paper states directions qualitatively (arrows); here each proxy is
//! measured on the simulator: locality → L2 hit rate, parallelism →
//! achieved occupancy, work-efficiency → inverse of (compute cycles +
//! atomic ops) per edge.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::Runtime;
use ugrapher_core::exec::Fidelity;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::{DeviceConfig, SimReport};

fn work_per_edge(r: &SimReport, edges: f64) -> f64 {
    (r.compute_cycles + 4.0 * r.atomic_ops) / edges
}

/// Fraction of memory transactions served on-chip (L1 or L2) — the
/// locality proxy. Using L2 hit rate alone is misleading because a
/// high-locality kernel satisfies most reuse in L1.
fn on_chip_hit(r: &SimReport) -> f64 {
    let accesses = r.l1_transactions.max(1.0);
    let dram_txns = r.dram_bytes / 32.0;
    1.0 - (dram_txns / (accesses + r.atomic_ops).max(1.0)).min(1.0)
}

fn main() {
    let rt = Runtime::new(DeviceConfig::v100()).with_fidelity(Fidelity::Full);
    let info = by_abbrev("PU").unwrap();
    let graph = info.build(scale());
    let edges = graph.num_edges() as f64;
    let op = OpInfo::aggregation_sum();
    let feat = 32;

    let schedules: Vec<(String, ParallelInfo)> = vec![
        (
            "Thread-Edge".into(),
            ParallelInfo::basic(Strategy::ThreadEdge),
        ),
        ("Warp-Edge".into(), ParallelInfo::basic(Strategy::WarpEdge)),
        (
            "Warp-Vertex".into(),
            ParallelInfo::basic(Strategy::WarpVertex),
        ),
        (
            "Thread-Vertex".into(),
            ParallelInfo::basic(Strategy::ThreadVertex),
        ),
        (
            "V/E-Grouping (TE,G8)".into(),
            ParallelInfo::new(Strategy::ThreadEdge, 8, 1),
        ),
        (
            "Feature-Tiling (TE,T8)".into(),
            ParallelInfo::new(Strategy::ThreadEdge, 1, 8),
        ),
    ];

    let base = rt
        .measure_only(&graph, &op, feat, schedules[0].1)
        .expect("baseline runs");
    let base_work = work_per_edge(&base, edges);
    let base_hit = on_chip_hit(&base);

    let arrow = |ratio: f64, up_is_more: bool| {
        let r = if up_is_more { ratio } else { 1.0 / ratio };
        if r > 1.15 {
            "up"
        } else if r < 0.85 {
            "down"
        } else {
            "flat"
        }
    };

    let mut rows = Vec::new();
    for (name, p) in &schedules {
        let r = rt
            .measure_only(&graph, &op, feat, *p)
            .expect("valid schedule");
        let work = work_per_edge(&r, edges);
        let hit = on_chip_hit(&r);
        rows.push(vec![
            name.clone(),
            format!("{:.3} ({})", hit, arrow(hit / base_hit, true)),
            format!(
                "{:.3} ({})",
                r.achieved_occupancy,
                arrow(r.achieved_occupancy / base.achieved_occupancy, true)
            ),
            format!("{:.1} ({})", work, arrow(base_work / work, true)),
            format!("{:.4}", r.time_ms),
        ]);
    }
    print_table(
        &format!(
            "Table 6: strategy trade-offs on {} (aggregation-sum, feature {feat}; relative to Thread-Edge)",
            info.name
        ),
        &["strategy", "locality (on-chip hit)", "parallelism (occ)", "work/edge (cycles)", "time ms"],
        &rows,
    );
    println!(
        "\npaper Table 6 directions: warp-edge trades locality for parallelism;\n\
         vertex strategies trade parallelism for locality + work-efficiency (no atomics);\n\
         grouping adds locality at a parallelism + work cost; tiling the reverse."
    );
}
