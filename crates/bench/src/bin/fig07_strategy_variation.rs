//! Fig. 7: the optimal basic strategy for *aggregation-sum* varies across
//! datasets and feature sizes (8 vs 16). Prints normalized execution time
//! (1.0 = fastest per dataset), as the paper's bars.

// Benchmark driver: exiting on a broken invariant is the right behaviour.
#![allow(clippy::unwrap_used)]

use ugrapher_bench::{eval_datasets, print_table, scale};
use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::MeasureOptions;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::grid_search_space;
use ugrapher_graph::datasets::by_abbrev;
use ugrapher_sim::DeviceConfig;

fn main() {
    let options = MeasureOptions::auto(DeviceConfig::v100());
    let basics = ParallelInfo::basics();
    let op = OpInfo::aggregation_sum();

    for feat in [8usize, 16] {
        let mut rows = Vec::new();
        let mut winners = std::collections::HashMap::<String, usize>::new();
        for abbrev in eval_datasets() {
            let graph = by_abbrev(abbrev).unwrap().build(scale());
            let res = grid_search_space(&graph, &op, feat, &options, &basics)
                .expect("aggregation-sum is valid");
            let mut row = vec![abbrev.to_owned()];
            for p in &basics {
                let t = res.time_of(p).expect("all basics measured");
                row.push(format!("{:.2}", t / res.best_time_ms));
            }
            row.push(res.best.strategy.label().to_owned());
            *winners
                .entry(res.best.strategy.label().to_owned())
                .or_insert(0) += 1;
            rows.push(row);
        }
        print_table(
            &format!("Fig. 7: normalized time of basic strategies, feature size {feat} (V100)"),
            &["dataset", "TV", "TE", "WV", "WE", "best"],
            &rows,
        );
        println!("winning strategies at feature {feat}: {winners:?}");
    }
    println!(
        "\npaper claim: different strategies win on different datasets, and the\n\
         winner can flip between feature sizes 8 and 16."
    );
}
