//! # ugrapher-gbdt
//!
//! Gradient-boosted regression trees, written from scratch as a substitute
//! for LightGBM (paper §5.4: uGrapher trains a LightGBM model to predict the
//! optimal parallelization strategy from graph features and operator
//! information, Table 7).
//!
//! The implementation is a standard least-squares boosting loop: each tree
//! fits the residuals of the current ensemble, leaves predict the mean
//! residual, splits maximize variance reduction, and predictions accumulate
//! with a shrinkage factor. This matches the modeling capacity the paper
//! needs — a few thousand training rows with ~10 tabular features — and its
//! inference latency requirement (§7.4: one prediction must cost well under
//! 0.2 ms; see the `overhead_predictor` bench).
//!
//! # Example
//!
//! ```
//! use ugrapher_gbdt::{Gbdt, GbdtParams, TrainSet};
//!
//! # fn main() -> Result<(), ugrapher_gbdt::GbdtError> {
//! // y = 2 if x0 > 0.5 else 1
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
//! let targets: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 2.0 } else { 1.0 }).collect();
//! let data = TrainSet::new(rows, targets)?;
//! let model = Gbdt::fit(&data, &GbdtParams::default());
//! assert!((model.predict(&[0.9]) - 2.0).abs() < 0.05);
//! assert!((model.predict(&[0.1]) - 1.0).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

mod dataset;
mod model;
mod tree;

pub use dataset::{GbdtError, TrainSet};
pub use model::{Gbdt, GbdtParams};
pub use tree::Tree;
