//! The boosting ensemble.

use ugrapher_util::json::{FromJson, JsonError, ToJson, Value};

use crate::dataset::TrainSet;
use crate::tree::{Tree, TreeParams};

/// Hyper-parameters of the boosting loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub num_trees: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Maximum candidate thresholds per feature per node.
    pub max_candidates: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            num_trees: 100,
            learning_rate: 0.1,
            max_depth: 5,
            min_samples_leaf: 2,
            max_candidates: 64,
        }
    }
}

/// A fitted gradient-boosted regression model.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
}

impl Gbdt {
    /// Fits a model with least-squares boosting.
    pub fn fit(data: &TrainSet, params: &GbdtParams) -> Self {
        let n = data.len();
        let base = data.targets().iter().sum::<f64>() / n as f64;
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_leaf: params.min_samples_leaf,
            max_candidates: params.max_candidates,
        };

        let mut predictions = vec![base; n];
        let mut residuals = vec![0.0; n];
        let indices: Vec<usize> = (0..n).collect();
        let mut trees = Vec::with_capacity(params.num_trees);

        for _ in 0..params.num_trees {
            for i in 0..n {
                residuals[i] = data.targets()[i] - predictions[i];
            }
            let tree = Tree::fit(data.rows(), &residuals, &indices, &tree_params);
            if tree.num_nodes() == 1 && trees.len() > 1 {
                // Residuals have collapsed to (near-)constant; further trees
                // only add the same constant leaf repeatedly.
                let leaf = tree.predict(&data.rows()[0]);
                if leaf.abs() < 1e-12 {
                    break;
                }
            }
            for (i, row) in data.rows().iter().enumerate() {
                predictions[i] += params.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }

        Self {
            base,
            learning_rate: params.learning_rate,
            trees,
        }
    }

    /// Predicts the regression target for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &TrainSet) -> f64 {
        data.rows()
            .iter()
            .zip(data.targets())
            .map(|(r, &y)| {
                let d = self.predict(r) - y;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl ToJson for Gbdt {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("base", self.base.to_json()),
            ("learning_rate", self.learning_rate.to_json()),
            ("trees", self.trees.to_json()),
        ])
    }
}

impl FromJson for Gbdt {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let base = f64::from_json(v.field("base")?)?;
        let learning_rate = f64::from_json(v.field("learning_rate")?)?;
        if !base.is_finite() || !learning_rate.is_finite() {
            return Err(JsonError::new("gbdt: base/learning_rate must be finite"));
        }
        Ok(Gbdt {
            base,
            learning_rate,
            trees: Vec::<Tree>::from_json(v.field("trees")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainSet;

    fn grid_2d(n: usize, f: impl Fn(f64, f64) -> f64) -> TrainSet {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (i as f64 / n as f64, j as f64 / n as f64);
                rows.push(vec![a, b]);
                y.push(f(a, b));
            }
        }
        TrainSet::new(rows, y).unwrap()
    }

    #[test]
    fn beats_mean_baseline_on_nonlinear_target() {
        let data = grid_2d(20, |a, b| (a * 4.0).sin() + b * b);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let mean = data.targets().iter().sum::<f64>() / data.len() as f64;
        let mean_mse = data
            .targets()
            .iter()
            .map(|y| (y - mean) * (y - mean))
            .sum::<f64>()
            / data.len() as f64;
        assert!(model.mse(&data) < mean_mse * 0.05);
    }

    #[test]
    fn interpolates_interaction_terms() {
        // XOR-like target needs depth >= 2.
        let data = grid_2d(16, |a, b| if (a > 0.5) ^ (b > 0.5) { 1.0 } else { 0.0 });
        let model = Gbdt::fit(&data, &GbdtParams::default());
        assert!((model.predict(&[0.9, 0.1]) - 1.0).abs() < 0.1);
        assert!((model.predict(&[0.9, 0.9]) - 0.0).abs() < 0.1);
    }

    #[test]
    fn constant_target_stops_early() {
        let data = TrainSet::new((0..50).map(|i| vec![i as f64]).collect(), vec![7.0; 50]).unwrap();
        let model = Gbdt::fit(&data, &GbdtParams::default());
        assert!(model.num_trees() < 10, "trees: {}", model.num_trees());
        assert_eq!(model.predict(&[123.0]), 7.0);
    }

    #[test]
    fn deterministic_fit() {
        let data = grid_2d(10, |a, b| a + 2.0 * b);
        let m1 = Gbdt::fit(&data, &GbdtParams::default());
        let m2 = Gbdt::fit(&data, &GbdtParams::default());
        assert_eq!(m1, m2);
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let data = grid_2d(12, |a, b| (a * 3.0).sin() + b);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let text = ugrapher_util::json::to_string(&model);
        let loaded: Gbdt = ugrapher_util::json::from_str(&text).unwrap();
        assert_eq!(loaded, model);
        for row in data.rows() {
            assert_eq!(loaded.predict(row), model.predict(row));
        }
    }

    #[test]
    fn corrupted_model_is_rejected_not_panicking() {
        // A split pointing at itself would loop forever in predict; the
        // decoder must reject it.
        let text = r#"{"base":0,"learning_rate":0.1,"trees":[[
            {"feature":0,"threshold":0.5,"left":0,"right":0}
        ]]}"#;
        assert!(ugrapher_util::json::from_str::<Gbdt>(text).is_err());
        // Out-of-bounds child index.
        let text = r#"{"base":0,"learning_rate":0.1,"trees":[[
            {"feature":0,"threshold":0.5,"left":1,"right":99}
        ]]}"#;
        assert!(ugrapher_util::json::from_str::<Gbdt>(text).is_err());
        // Non-finite base (serializes to null).
        let text = r#"{"base":null,"learning_rate":0.1,"trees":[]}"#;
        assert!(ugrapher_util::json::from_str::<Gbdt>(text).is_err());
    }

    #[test]
    fn more_trees_fit_better() {
        let data = grid_2d(15, |a, b| (a * 6.0).sin() * (b * 6.0).cos());
        let small = Gbdt::fit(
            &data,
            &GbdtParams {
                num_trees: 5,
                ..Default::default()
            },
        );
        let big = Gbdt::fit(
            &data,
            &GbdtParams {
                num_trees: 200,
                ..Default::default()
            },
        );
        assert!(big.mse(&data) < small.mse(&data) * 0.5);
    }
}
