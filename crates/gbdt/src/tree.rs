//! A single regression tree with variance-reduction splits.

use ugrapher_util::json::{FromJson, JsonError, ToJson, Value};

/// One node of a regression tree, indexed into the tree's node arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `<= threshold` child.
        left: usize,
        /// Arena index of the `> threshold` child.
        right: usize,
    },
}

/// A fitted regression tree.
///
/// Trees are grown greedily: at each node, every feature's sorted unique
/// values provide candidate thresholds, and the candidate with the largest
/// weighted-variance reduction wins. Growth stops at `max_depth`, at
/// `min_samples_leaf`, or when no split improves the loss.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// Growth limits for a single tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TreeParams {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Maximum candidate thresholds per feature per node (histogram-style
    /// quantile subsampling, as LightGBM does).
    pub max_candidates: usize,
}

impl Tree {
    /// Fits a tree to `(rows, residuals)` for the given sample indices.
    pub(crate) fn fit(
        rows: &[Vec<f64>],
        residuals: &[f64],
        indices: &[usize],
        params: &TreeParams,
    ) -> Self {
        let mut tree = Tree { nodes: Vec::new() };
        let mut idx = indices.to_vec();
        tree.grow(rows, residuals, &mut idx, params, 0);
        tree
    }

    /// Predicts the tree's output for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than a feature index used by a split.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth of the fitted tree (root = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Grows a subtree over `indices` (reordered in place); returns its
    /// arena index.
    fn grow(
        &mut self,
        rows: &[Vec<f64>],
        residuals: &[f64],
        indices: &mut [usize],
        params: &TreeParams,
        depth: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| residuals[i]).sum::<f64>() / indices.len() as f64;
        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            return self.push(Node::Leaf { value: mean });
        }

        let Some((feature, threshold)) = best_split(rows, residuals, indices, params) else {
            return self.push(Node::Leaf { value: mean });
        };

        // Partition indices by the chosen split.
        let mut lo = 0usize;
        let mut hi = indices.len();
        while lo < hi {
            if rows[indices[lo]][feature] <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        if lo == 0 || lo == indices.len() {
            return self.push(Node::Leaf { value: mean });
        }

        let placeholder = self.push(Node::Leaf { value: mean });
        let (left_idx, right_idx) = indices.split_at_mut(lo);
        let left = self.grow(rows, residuals, left_idx, params, depth + 1);
        let right = self.grow(rows, residuals, right_idx, params, depth + 1);
        self.nodes[placeholder] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        placeholder
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }
}

impl ToJson for Tree {
    fn to_json(&self) -> Value {
        Value::Arr(
            self.nodes
                .iter()
                .map(|n| match n {
                    Node::Leaf { value } => Value::obj(vec![("leaf", value.to_json())]),
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => Value::obj(vec![
                        ("feature", feature.to_json()),
                        ("threshold", threshold.to_json()),
                        ("left", left.to_json()),
                        ("right", right.to_json()),
                    ]),
                })
                .collect(),
        )
    }
}

impl FromJson for Tree {
    /// Decodes and *structurally validates* a tree: child indices must be
    /// in bounds and strictly greater than the parent's index (the arena
    /// invariant `Tree::fit` maintains), so a corrupted model file cannot
    /// cause an out-of-bounds panic or an infinite prediction loop.
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items = v
            .as_arr()
            .ok_or_else(|| JsonError::new("tree: expected array"))?;
        if items.is_empty() {
            return Err(JsonError::new("tree: must have at least one node"));
        }
        let mut nodes = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if let Some(leaf) = item.get("leaf") {
                let value = f64::from_json(leaf)?;
                if !value.is_finite() {
                    return Err(JsonError::new(format!("tree node {i}: non-finite leaf")));
                }
                nodes.push(Node::Leaf { value });
            } else {
                let feature = usize::from_json(item.field("feature")?)?;
                let threshold = f64::from_json(item.field("threshold")?)?;
                let left = usize::from_json(item.field("left")?)?;
                let right = usize::from_json(item.field("right")?)?;
                if !threshold.is_finite() {
                    return Err(JsonError::new(format!(
                        "tree node {i}: non-finite threshold"
                    )));
                }
                if left <= i || right <= i || left >= items.len() || right >= items.len() {
                    return Err(JsonError::new(format!(
                        "tree node {i}: child indices ({left}, {right}) break the arena invariant"
                    )));
                }
                nodes.push(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                });
            }
        }
        Ok(Tree { nodes })
    }
}

/// Finds the `(feature, threshold)` split with the largest variance
/// reduction, or `None` if nothing improves.
#[allow(clippy::needless_range_loop)] // `f` indexes a column across rows
fn best_split(
    rows: &[Vec<f64>],
    residuals: &[f64],
    indices: &[usize],
    params: &TreeParams,
) -> Option<(usize, f64)> {
    let n = indices.len() as f64;
    let total_sum: f64 = indices.iter().map(|&i| residuals[i]).sum();
    let num_features = rows[indices[0]].len();

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut values: Vec<(f64, f64)> = Vec::with_capacity(indices.len());

    for f in 0..num_features {
        values.clear();
        values.extend(indices.iter().map(|&i| (rows[i][f], residuals[i])));
        values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Candidate thresholds: boundaries between distinct sorted values,
        // subsampled to at most `max_candidates` (histogram binning).
        let stride = (values.len() / params.max_candidates.max(1)).max(1);

        let mut left_sum = 0.0;
        let mut left_n = 0.0;
        let mut k = 0usize;
        while k + 1 < values.len() {
            left_sum += values[k].1;
            left_n += 1.0;
            let boundary = values[k].0 < values[k + 1].0;
            k += 1;
            if !boundary || !k.is_multiple_of(stride) {
                continue;
            }
            let right_n = n - left_n;
            if (left_n as usize) < params.min_samples_leaf
                || (right_n as usize) < params.min_samples_leaf
            {
                continue;
            }
            let right_sum = total_sum - left_sum;
            // Variance reduction is equivalent to maximizing
            // sum_l^2/n_l + sum_r^2/n_r.
            let gain = left_sum * left_sum / left_n + right_sum * right_sum / right_n
                - total_sum * total_sum / n;
            if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                let threshold = (values[k - 1].0 + values[k].0) / 2.0;
                best = Some((f, threshold, gain));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TreeParams {
        TreeParams {
            max_depth: 6,
            min_samples_leaf: 1,
            max_candidates: 64,
        }
    }

    fn fit(rows: &[Vec<f64>], y: &[f64], p: &TreeParams) -> Tree {
        let idx: Vec<usize> = (0..rows.len()).collect();
        Tree::fit(rows, y, &idx, p)
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 10];
        let t = fit(&rows, &y, &params());
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[100.0]), 3.0);
    }

    #[test]
    fn learns_step_function_exactly() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 1.0 }).collect();
        let t = fit(&rows, &y, &params());
        assert_eq!(t.predict(&[3.0]), -1.0);
        assert_eq!(t.predict(&[15.0]), 1.0);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise (alternating), feature 1 determines the target.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 2) as f64, if i < 20 { 0.0 } else { 1.0 }])
            .collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 5.0 } else { 9.0 }).collect();
        let t = fit(&rows, &y, &params());
        assert_eq!(t.predict(&[0.0, 0.0]), 5.0);
        assert_eq!(t.predict(&[0.0, 1.0]), 9.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let p = TreeParams {
            max_depth: 2,
            ..params()
        };
        let t = fit(&rows, &y, &p);
        assert!(t.depth() <= 2, "depth {}", t.depth());
    }

    #[test]
    fn respects_min_samples_leaf() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let p = TreeParams {
            min_samples_leaf: 4,
            ..params()
        };
        let t = fit(&rows, &y, &p);
        // With min leaf 4 over 8 samples, only one split is possible.
        assert!(t.depth() <= 1);
    }

    #[test]
    fn predictions_bounded_by_target_range() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i * 7 % 13) as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| ((i * 11) % 5) as f64).collect();
        let t = fit(&rows, &y, &params());
        for r in &rows {
            let p = t.predict(r);
            assert!((0.0..=4.0).contains(&p));
        }
    }
}
