use std::error::Error;
use std::fmt;

/// Errors produced when assembling a training set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbdtError {
    /// Feature rows and targets have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// Feature rows have inconsistent widths.
    RaggedFeatures {
        /// Width of the first row.
        expected: usize,
        /// Index of the first offending row.
        row: usize,
        /// Its width.
        found: usize,
    },
    /// The training set is empty.
    Empty,
}

impl fmt::Display for GbdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbdtError::LengthMismatch { rows, targets } => {
                write!(f, "{rows} feature rows but {targets} targets")
            }
            GbdtError::RaggedFeatures {
                expected,
                row,
                found,
            } => write!(f, "row {row} has {found} features, expected {expected}"),
            GbdtError::Empty => write!(f, "training set is empty"),
        }
    }
}

impl Error for GbdtError {}

/// A tabular regression training set.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSet {
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl TrainSet {
    /// Builds a training set, validating shape consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`GbdtError`] if rows/targets mismatch, rows are ragged, or
    /// the set is empty.
    pub fn new(rows: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, GbdtError> {
        if rows.is_empty() {
            return Err(GbdtError::Empty);
        }
        if rows.len() != targets.len() {
            return Err(GbdtError::LengthMismatch {
                rows: rows.len(),
                targets: targets.len(),
            });
        }
        let width = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != width {
                return Err(GbdtError::RaggedFeatures {
                    expected: width,
                    row: i,
                    found: r.len(),
                });
            }
        }
        Ok(Self { rows, targets })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set has zero samples (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.rows[0].len()
    }

    /// Feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Regression targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shapes() {
        assert_eq!(TrainSet::new(vec![], vec![]), Err(GbdtError::Empty));
        assert!(matches!(
            TrainSet::new(vec![vec![1.0]], vec![]),
            Err(GbdtError::LengthMismatch { .. })
        ));
        assert!(matches!(
            TrainSet::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]),
            Err(GbdtError::RaggedFeatures { row: 1, .. })
        ));
    }

    #[test]
    fn accessors() {
        let d = TrainSet::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0.5, 0.6]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.targets()[1], 0.6);
    }
}
