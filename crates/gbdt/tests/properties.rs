//! Property-based tests for the GBDT substrate.

use ugrapher_gbdt::{Gbdt, GbdtParams, TrainSet};
use ugrapher_util::check::forall;

fn params() -> GbdtParams {
    GbdtParams {
        num_trees: 40,
        ..GbdtParams::default()
    }
}

#[test]
fn predictions_stay_near_target_range() {
    // Boosting iterates residual corrections, so intermediate
    // overshoot of a few percent of the target range is expected;
    // predictions must still stay *near* [min, max], never run away.
    forall("predictions_stay_near_target_range", 24, |rng| {
        let n = rng.random_range(8usize..64);
        let targets: Vec<f64> = (0..n).map(|_| rng.random_range(-50.0f64..50.0)).collect();
        let rows: Vec<Vec<f64>> = (0..targets.len())
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let data = TrainSet::new(rows.clone(), targets.clone()).unwrap();
        let model = Gbdt::fit(&data, &params());
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let margin = (hi - lo).max(1.0) * 0.10 + 1e-9;
        for r in &rows {
            let p = model.predict(r);
            if !(p >= lo - margin && p <= hi + margin) {
                return Err(format!("{p} outside [{lo}, {hi}]"));
            }
        }
        Ok(())
    });
}

#[test]
fn fit_reduces_training_mse() {
    forall("fit_reduces_training_mse", 24, |rng| {
        let seed = rng.random_range(0u64..50);
        let n = 60usize;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    ((i as u64 * 37 + seed) % 29) as f64,
                    ((i as u64 * 11 + seed) % 13) as f64,
                ]
            })
            .collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| r[0] * 2.0 - r[1] + (r[0] * r[1]).sqrt())
            .collect();
        let data = TrainSet::new(rows, targets.clone()).unwrap();
        let model = Gbdt::fit(&data, &params());
        let mean = targets.iter().sum::<f64>() / n as f64;
        let baseline = targets.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / n as f64;
        if model.mse(&data) <= baseline + 1e-9 {
            Ok(())
        } else {
            Err(format!(
                "fit mse {} above mean-predictor baseline {baseline}",
                model.mse(&data)
            ))
        }
    });
}

#[test]
fn prediction_is_pure() {
    forall("prediction_is_pure", 24, |rng| {
        let x: Vec<f64> = (0..3).map(|_| rng.random_range(-10.0f64..10.0)).collect();
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, -(i as f64), 0.5 * i as f64])
            .collect();
        let targets: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let model = Gbdt::fit(&TrainSet::new(rows, targets).unwrap(), &params());
        if model.predict(&x) == model.predict(&x) {
            Ok(())
        } else {
            Err("prediction is not deterministic".to_string())
        }
    });
}

#[test]
fn monotone_feature_yields_monotone_like_model() {
    // y strictly increasing in x: model predictions should order
    // extreme inputs correctly.
    forall("monotone_feature_monotone_model", 24, |rng| {
        let offset = rng.random_range(0.0f64..5.0);
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 4.0 + offset]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let model = Gbdt::fit(&TrainSet::new(rows, targets).unwrap(), &params());
        if model.predict(&[offset]) < model.predict(&[offset + 19.0]) {
            Ok(())
        } else {
            Err("extreme inputs are not ordered".to_string())
        }
    });
}
