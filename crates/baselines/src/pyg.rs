//! PyG-style backend: gather–scatter execution.
//!
//! PyTorch-Geometric lowers message passing onto generic tensor primitives:
//! it *materialises* per-edge message tensors with `index_select`
//! (gather), applies edge-wise arithmetic as ordinary element-wise kernels,
//! and reduces with `scatter`. Compared to a fused kernel this costs extra
//! kernel launches and a full write + read of every intermediate edge
//! tensor — the redundant data movement paper §7.2 credits for uGrapher's
//! larger speedups over PyG.
//!
//! Every stage is itself a graph operator in the unified abstraction
//! (gathers are `copy_u`/`copy_v` message creations, the reduce is an
//! edge-to-vertex aggregation), all run thread-per-edge as PyG's scatter
//! kernels are.

use ugrapher_core::abstraction::{EdgeOp, GatherOp, OpCategory, OpInfo, TensorType};
use ugrapher_core::api::Runtime;
use ugrapher_core::exec::OpOperands;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_core::CoreError;
use ugrapher_graph::Graph;
use ugrapher_sim::{DeviceConfig, SimReport};
use ugrapher_tensor::Tensor2;

use ugrapher_gnn::{GraphOpBackend, OpSite};

use crate::util::run_fixed;

/// A required operand, or a typed [`CoreError::BadOperand`] instead of a
/// panic when the caller omitted it.
fn required(
    operand: Option<&Tensor2>,
    which: char,
    tensor_type: TensorType,
) -> Result<&Tensor2, CoreError> {
    operand.ok_or_else(|| CoreError::BadOperand {
        operand: which,
        tensor_type,
        reason: "operand tensor not supplied".to_owned(),
    })
}

/// PyG's gather–scatter strategy (see module docs).
#[derive(Debug, Clone)]
pub struct PygBackend {
    device: DeviceConfig,
    runtime: Runtime,
}

impl PygBackend {
    /// Creates a PyG-style backend for the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            runtime: Runtime::new(device.clone()),
            device,
        }
    }

    /// PyG's kernels are all edge-parallel scatter/gather loops.
    fn strategy() -> ParallelInfo {
        ParallelInfo::basic(Strategy::ThreadEdge)
    }

    /// Gathers one vertex operand onto edges (`index_select`).
    fn gather(
        &self,
        graph: &Graph,
        source: TensorType,
        tensor: &Tensor2,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        let (edge_op, a, b, operands) = match source {
            TensorType::SrcV => (
                EdgeOp::CopyLhs,
                TensorType::SrcV,
                TensorType::Null,
                OpOperands::single(tensor),
            ),
            TensorType::DstV => (
                EdgeOp::CopyRhs,
                TensorType::Null,
                TensorType::DstV,
                OpOperands {
                    a: None,
                    b: Some(tensor),
                },
            ),
            other => unreachable!("gather of {other:?}"),
        };
        let op = OpInfo::new(edge_op, GatherOp::CopyRhs, a, b, TensorType::Edge)?;
        run_fixed(&self.runtime, graph, op, &operands, Self::strategy())
    }

    /// Edge-wise combination of two materialised edge tensors.
    fn edge_combine(
        &self,
        graph: &Graph,
        edge_op: EdgeOp,
        lhs: &Tensor2,
        rhs: &Tensor2,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        let op = OpInfo::new(
            edge_op,
            GatherOp::CopyRhs,
            TensorType::Edge,
            TensorType::Edge,
            TensorType::Edge,
        )?;
        run_fixed(
            &self.runtime,
            graph,
            op,
            &OpOperands::pair(lhs, rhs),
            Self::strategy(),
        )
    }

    /// Scatter-reduce of a materialised edge tensor into vertices.
    fn scatter(
        &self,
        graph: &Graph,
        gather_op: GatherOp,
        messages: &Tensor2,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        let op = OpInfo::new(
            EdgeOp::CopyLhs,
            gather_op,
            TensorType::Edge,
            TensorType::Null,
            TensorType::DstV,
        )?;
        run_fixed(
            &self.runtime,
            graph,
            op,
            &OpOperands::single(messages),
            Self::strategy(),
        )
    }

    /// Materialises the edge-stage result of `op` (everything before the
    /// reduction), returning the per-edge tensor and the kernel reports.
    fn materialize_messages(
        &self,
        graph: &Graph,
        op: &OpInfo,
        operands: &OpOperands<'_>,
        reports: &mut Vec<SimReport>,
    ) -> Result<Tensor2, CoreError> {
        // Gather each vertex operand onto edges; edge operands are already
        // edge tensors.
        let lhs: Option<Tensor2> = match op.a {
            TensorType::SrcV | TensorType::DstV => {
                let (t, r) = self.gather(graph, op.a, required(operands.a, 'A', op.a)?)?;
                reports.push(r);
                Some(t)
            }
            TensorType::Edge => Some(required(operands.a, 'A', op.a)?.clone()),
            TensorType::Null => None,
        };
        let rhs: Option<Tensor2> = match op.b {
            TensorType::SrcV | TensorType::DstV => {
                let (t, r) = self.gather(graph, op.b, required(operands.b, 'B', op.b)?)?;
                reports.push(r);
                Some(t)
            }
            TensorType::Edge => Some(required(operands.b, 'B', op.b)?.clone()),
            TensorType::Null => None,
        };
        match (lhs, rhs) {
            (Some(l), Some(r_t)) if !op.edge_op.is_copy() => {
                let (t, r) = self.edge_combine(graph, op.edge_op, &l, &r_t)?;
                reports.push(r);
                Ok(t)
            }
            (Some(l), _) if op.edge_op.uses_a() => Ok(l),
            (_, Some(r_t)) => Ok(r_t),
            _ => Err(CoreError::InvalidOperator {
                op: *op,
                reason: "operator has no usable operand".to_owned(),
            }),
        }
    }
}

impl GraphOpBackend for PygBackend {
    fn name(&self) -> &'static str {
        "pyg"
    }

    fn device(&self) -> &DeviceConfig {
        &self.device
    }

    fn run_op(
        &self,
        graph: &Graph,
        _site: &OpSite,
        op: &OpInfo,
        operands: &OpOperands<'_>,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        op.validate()?;
        let mut reports = Vec::new();

        let output = match op.category() {
            OpCategory::MessageCreation => {
                // The materialised messages *are* the output.
                let msgs = self.materialize_messages(graph, op, operands, &mut reports)?;
                // A pure gather still needed at least one kernel; if the
                // operator was a plain copy of an edge tensor the gather
                // list may be empty — PyG would still launch a copy kernel.
                if reports.is_empty() {
                    let copy = OpInfo::new(
                        EdgeOp::CopyLhs,
                        GatherOp::CopyRhs,
                        TensorType::Edge,
                        TensorType::Null,
                        TensorType::Edge,
                    )?;
                    let (copied, r) = run_fixed(
                        &self.runtime,
                        graph,
                        copy,
                        &OpOperands::single(&msgs),
                        Self::strategy(),
                    )?;
                    reports.push(r);
                    copied
                } else {
                    msgs
                }
            }
            OpCategory::MessageAggregation | OpCategory::FusedAggregation => {
                let gather_op = op.gather_op;
                let msgs = self.materialize_messages(graph, op, operands, &mut reports)?;
                let (out, r) = self.scatter(graph, gather_op, &msgs)?;
                reports.push(r);
                out
            }
        };
        Ok((output, SimReport::merge_all(reports.iter())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::exec::execute;
    use ugrapher_gnn::{ModelKind, OpSiteKind};
    use ugrapher_graph::generate::uniform_random;

    fn site() -> OpSite {
        OpSite::new(ModelKind::Gcn, 1, OpSiteKind::Aggregation)
    }

    #[test]
    fn matches_reference_semantics_for_fused_aggregation() {
        let g = uniform_random(80, 500, 2);
        let x = Tensor2::from_fn(80, 6, |r, c| ((r + c) % 9) as f32);
        let w = Tensor2::from_fn(500, 6, |r, _| (r % 4) as f32 * 0.5);
        let op = OpInfo::weighted_aggregation_sum();
        let operands = OpOperands::pair(&x, &w);
        let backend = PygBackend::new(DeviceConfig::v100());
        let (out, report) = backend.run_op(&g, &site(), &op, &operands).unwrap();
        let reference = execute(&g, &op, &operands).unwrap();
        assert!(out.approx_eq(&reference, 1e-4).unwrap());
        // Gather + combine + scatter = 3 kernels.
        assert_eq!(report.kernels, 3);
    }

    #[test]
    fn simple_copy_aggregation_uses_two_kernels() {
        let g = uniform_random(80, 500, 3);
        let x = Tensor2::full(80, 4, 1.0);
        let backend = PygBackend::new(DeviceConfig::v100());
        let (out, report) = backend
            .run_op(
                &g,
                &site(),
                &OpInfo::aggregation_sum(),
                &OpOperands::single(&x),
            )
            .unwrap();
        assert_eq!(report.kernels, 2, "gather + scatter");
        for v in 0..80 {
            assert_eq!(out[(v, 0)], g.in_degree(v) as f32);
        }
    }

    #[test]
    fn message_creation_gathers_both_sides() {
        let g = uniform_random(60, 300, 4);
        let x = Tensor2::from_fn(60, 4, |r, _| r as f32);
        let op = OpInfo::message_creation_add();
        let operands = OpOperands::pair(&x, &x);
        let backend = PygBackend::new(DeviceConfig::v100());
        let (out, report) = backend.run_op(&g, &site(), &op, &operands).unwrap();
        assert_eq!(report.kernels, 3, "two gathers + combine");
        let reference = execute(&g, &op, &operands).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn pyg_moves_more_data_than_a_fused_kernel() {
        let g = uniform_random(500, 5000, 5);
        let x = Tensor2::full(500, 32, 1.0);
        let op = OpInfo::aggregation_sum();
        let operands = OpOperands::single(&x);
        let pyg = PygBackend::new(DeviceConfig::v100());
        let (_, pyg_report) = pyg.run_op(&g, &site(), &op, &operands).unwrap();
        let fused = crate::DglBackend::new(DeviceConfig::v100());
        let (_, fused_report) = fused.run_op(&g, &site(), &op, &operands).unwrap();
        assert!(
            pyg_report.l1_transactions + pyg_report.l2_transactions
                > fused_report.l1_transactions + fused_report.l2_transactions,
            "materialisation must add traffic"
        );
    }
}
