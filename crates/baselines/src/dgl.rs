//! DGL-style backend: static handwritten kernels.
//!
//! DGL dispatches every reduction-style graph operator (its SpMM path) to
//! one fixed kernel — a warp-per-destination-vertex CSR traversal with
//! lanes across the feature dimension — and every message-creation
//! operator (its SDDMM path) to a fixed thread-per-edge kernel. The
//! strategies never adapt to the input graph, the operator weight, or the
//! feature size, which is precisely the inefficiency paper §2.2 measures
//! (Fig. 3).

use ugrapher_core::abstraction::{OpCategory, OpInfo};
use ugrapher_core::api::Runtime;
use ugrapher_core::exec::OpOperands;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_core::CoreError;
use ugrapher_graph::Graph;
use ugrapher_sim::{DeviceConfig, SimReport};
use ugrapher_tensor::Tensor2;

use ugrapher_gnn::{GraphOpBackend, OpSite};

use crate::util::run_fixed;

/// DGL's static kernel strategy (see module docs).
#[derive(Debug, Clone)]
pub struct DglBackend {
    device: DeviceConfig,
    runtime: Runtime,
}

impl DglBackend {
    /// Creates a DGL-style backend for the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            runtime: Runtime::new(device.clone()),
            device,
        }
    }

    /// The fixed schedule DGL uses for an operator class.
    pub fn strategy_for(op: &OpInfo) -> ParallelInfo {
        match op.category() {
            // SpMM-like: warp per destination row, lanes over features.
            OpCategory::MessageAggregation | OpCategory::FusedAggregation => {
                ParallelInfo::basic(Strategy::WarpVertex)
            }
            // SDDMM-like: one thread per edge.
            OpCategory::MessageCreation => ParallelInfo::basic(Strategy::ThreadEdge),
        }
    }
}

impl GraphOpBackend for DglBackend {
    fn name(&self) -> &'static str {
        "dgl"
    }

    fn device(&self) -> &DeviceConfig {
        &self.device
    }

    fn run_op(
        &self,
        graph: &Graph,
        _site: &OpSite,
        op: &OpInfo,
        operands: &OpOperands<'_>,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        run_fixed(&self.runtime, graph, *op, operands, Self::strategy_for(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_gnn::{ModelKind, OpSiteKind};
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn fixed_strategies_by_category() {
        assert_eq!(
            DglBackend::strategy_for(&OpInfo::aggregation_sum()).strategy,
            Strategy::WarpVertex
        );
        assert_eq!(
            DglBackend::strategy_for(&OpInfo::message_creation_add()).strategy,
            Strategy::ThreadEdge
        );
    }

    #[test]
    fn runs_operators_correctly() {
        let g = uniform_random(100, 600, 5);
        let x = Tensor2::full(100, 8, 1.0);
        let backend = DglBackend::new(DeviceConfig::v100());
        let site = OpSite::new(ModelKind::Gcn, 1, OpSiteKind::Aggregation);
        let (out, report) = backend
            .run_op(
                &g,
                &site,
                &OpInfo::aggregation_sum(),
                &OpOperands::single(&x),
            )
            .unwrap();
        for v in 0..100 {
            assert_eq!(out[(v, 0)], g.in_degree(v) as f32);
        }
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn supports_all_models() {
        let backend = DglBackend::new(DeviceConfig::v100());
        for m in ModelKind::ALL {
            assert!(backend.supports(m));
        }
    }
}
