//! # ugrapher-baselines
//!
//! Faithful re-implementations of the *kernel execution strategies* of the
//! three baseline systems the paper compares against (§6), all running on
//! the same GPU simulator and model code as uGrapher so that end-to-end
//! differences isolate graph-operator scheduling:
//!
//! * [`DglBackend`] — DGL's static handwritten kernels: a fixed
//!   warp-per-destination-vertex CSR kernel for reductions (its SpMM path)
//!   and a fixed thread-per-edge kernel for message creation (its SDDMM
//!   path). No adaptation to graph or operator (paper §2.2).
//! * [`PygBackend`] — PyTorch-Geometric's gather–scatter execution: every
//!   operator materialises per-edge message tensors (`index_select`, then
//!   edge-wise compute, then `scatter-reduce`), paying the extra kernels
//!   and memory traffic the paper attributes to it.
//! * [`GnnAdvisorBackend`] — GNNAdvisor's warp-edge kernel with fixed
//!   neighbour grouping; supports only GCN and GIN (paper §6), with the
//!   node-renumbering optimisation disabled for fair comparison.
//!
//! Each backend implements [`GraphOpBackend`], so any model in
//! `ugrapher-gnn` can run on any of them (subject to `supports`).
//!
//! # Example
//!
//! ```
//! use ugrapher_baselines::{DglBackend, PygBackend};
//! use ugrapher_gnn::{run_inference, ModelConfig, ModelKind, UGrapherBackend};
//! use ugrapher_graph::generate::uniform_random;
//! use ugrapher_sim::DeviceConfig;
//! use ugrapher_tensor::Tensor2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = uniform_random(300, 2400, 3);
//! let x = Tensor2::full(300, 16, 0.5);
//! let model = ModelConfig::paper_default(ModelKind::Gcn);
//! let dgl = run_inference(&model, &g, &x, 4, &DglBackend::new(DeviceConfig::v100()))?;
//! let pyg = run_inference(&model, &g, &x, 4, &PygBackend::new(DeviceConfig::v100()))?;
//! // Same functional result, different kernel cost.
//! assert!(dgl.output.approx_eq(&pyg.output, 1e-3)?);
//! # Ok(())
//! # }
//! ```

mod dgl;
mod gnnadvisor;
mod pyg;
mod util;

pub use dgl::DglBackend;
pub use gnnadvisor::GnnAdvisorBackend;
pub use pyg::PygBackend;
pub use ugrapher_gnn::GraphOpBackend;
