//! Shared helper for fixed-strategy backends.

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::{GraphTensor, OpArgs, Runtime};
use ugrapher_core::exec::OpOperands;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::CoreError;
use ugrapher_graph::Graph;
use ugrapher_sim::SimReport;
use ugrapher_tensor::Tensor2;

/// Runs one operator under an explicitly fixed schedule: functional
/// evaluation plus simulated measurement, exactly as the uGrapher path but
/// with no tuning.
pub(crate) fn run_fixed(
    runtime: &Runtime,
    graph: &Graph,
    op: OpInfo,
    operands: &OpOperands<'_>,
    parallel: ParallelInfo,
) -> Result<(Tensor2, SimReport), CoreError> {
    let gt = GraphTensor::new(graph);
    let args = OpArgs {
        op,
        operands: *operands,
    };
    let res = runtime.run(&gt, &args, Some(parallel))?;
    Ok((res.output, res.report))
}
