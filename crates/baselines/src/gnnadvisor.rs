//! GNNAdvisor-style backend.
//!
//! GNNAdvisor (OSDI'21) accelerates GNN aggregation with a warp-centric
//! kernel over fixed-size *neighbour groups* plus feature-dimension workers
//! — in uGrapher terms, a warp-edge strategy with a fixed V/E grouping and
//! fixed feature tiling (paper Table 5 classifies it exactly that way). The
//! parameters are input-independent defaults, and only GCN and GIN are
//! supported (paper §6). Node renumbering is disabled for fair comparison,
//! as the paper does; the Fig. 19 study applies renumbering to all systems
//! equally via `ugrapher_graph::reorder`.

use ugrapher_core::abstraction::{OpCategory, OpInfo};
use ugrapher_core::api::Runtime;
use ugrapher_core::exec::OpOperands;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_core::CoreError;
use ugrapher_graph::Graph;
use ugrapher_sim::{DeviceConfig, SimReport};
use ugrapher_tensor::Tensor2;

use ugrapher_gnn::{GraphOpBackend, ModelKind, OpSite};

use crate::util::run_fixed;

/// GNNAdvisor's default neighbour-group size.
const NEIGHBOR_GROUP: usize = 16;
/// GNNAdvisor's default dimension-worker tiling.
const DIM_TILING: usize = 2;

/// GNNAdvisor's fixed warp-centric kernel strategy (see module docs).
#[derive(Debug, Clone)]
pub struct GnnAdvisorBackend {
    device: DeviceConfig,
    runtime: Runtime,
}

impl GnnAdvisorBackend {
    /// Creates a GNNAdvisor-style backend for the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            runtime: Runtime::new(device.clone()),
            device,
        }
    }

    /// The fixed schedule GNNAdvisor uses.
    pub fn strategy_for(op: &OpInfo) -> ParallelInfo {
        match op.category() {
            OpCategory::MessageAggregation | OpCategory::FusedAggregation => {
                ParallelInfo::new(Strategy::WarpEdge, NEIGHBOR_GROUP, DIM_TILING)
            }
            // GNNAdvisor has no dedicated SDDMM kernel; edge outputs fall
            // back to a plain thread-per-edge loop.
            OpCategory::MessageCreation => ParallelInfo::basic(Strategy::ThreadEdge),
        }
    }
}

impl GraphOpBackend for GnnAdvisorBackend {
    fn name(&self) -> &'static str {
        "gnnadvisor"
    }

    fn device(&self) -> &DeviceConfig {
        &self.device
    }

    fn supports(&self, model: ModelKind) -> bool {
        matches!(model, ModelKind::Gcn | ModelKind::Gin)
    }

    fn run_op(
        &self,
        graph: &Graph,
        _site: &OpSite,
        op: &OpInfo,
        operands: &OpOperands<'_>,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        run_fixed(&self.runtime, graph, *op, operands, Self::strategy_for(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_gnn::{run_inference, GnnError, ModelConfig, OpSiteKind};
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn supports_only_gcn_and_gin() {
        let b = GnnAdvisorBackend::new(DeviceConfig::v100());
        assert!(b.supports(ModelKind::Gcn));
        assert!(b.supports(ModelKind::Gin));
        assert!(!b.supports(ModelKind::Gat));
        assert!(!b.supports(ModelKind::SageMax));
    }

    #[test]
    fn unsupported_model_errors_cleanly() {
        let g = uniform_random(50, 250, 7);
        let x = Tensor2::full(50, 8, 1.0);
        let b = GnnAdvisorBackend::new(DeviceConfig::v100());
        let err =
            run_inference(&ModelConfig::paper_default(ModelKind::Gat), &g, &x, 3, &b).unwrap_err();
        assert!(matches!(err, GnnError::UnsupportedModel { .. }));
    }

    #[test]
    fn aggregation_uses_grouped_warp_edge() {
        let p = GnnAdvisorBackend::strategy_for(&OpInfo::aggregation_sum());
        assert_eq!(p.strategy, Strategy::WarpEdge);
        assert_eq!(p.grouping, NEIGHBOR_GROUP);
    }

    #[test]
    fn runs_gcn_correctly() {
        let g = uniform_random(90, 500, 8);
        let x = Tensor2::full(90, 8, 0.5);
        let b = GnnAdvisorBackend::new(DeviceConfig::v100());
        let site = OpSite::new(ModelKind::Gcn, 1, OpSiteKind::Aggregation);
        let (out, rep) = b
            .run_op(
                &g,
                &site,
                &OpInfo::aggregation_sum(),
                &OpOperands::single(&x),
            )
            .unwrap();
        for v in 0..90 {
            assert_eq!(out[(v, 0)], 0.5 * g.in_degree(v) as f32);
        }
        assert!(rep.atomic_ops > 0.0, "warp-edge reductions are atomic");
    }
}
