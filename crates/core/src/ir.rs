//! The typed kernel IR — the single source of truth shared by the CUDA
//! emitter and the static verifier.
//!
//! [`crate::lower::lower`] turns a [`KernelPlan`](crate::plan::KernelPlan)
//! into a [`KernelIr`]: an explicit loop nest ([`Loop`]) around a short
//! SSA-like statement list ([`Stmt`]) whose loads and stores carry **index
//! provenance** ([`Provenance`]) — where each row index value comes from
//! and therefore which symbolic bound ([`Bound`]) it is below. The CUDA
//! emitter ([`crate::codegen_cuda::emit_cuda`]) renders its kernel body
//! from this IR, and the `ugrapher-analyze` verifier passes (bounds
//! checking, determinism classification, IR lint) analyze the *same* IR,
//! so a safety claim about the analysis is a claim about the emitted code
//! by construction — the two can no longer silently drift apart.
//!
//! Three families of derived facts live here because other `core` layers
//! consume them directly:
//!
//! * [`KernelIr::store_races`] — the race verdict re-derived from the IR
//!   write-set (cross-checked against
//!   [`crate::analysis::race_verdict`] and the sim write-log oracle by
//!   `ugrapher-analyze`);
//! * [`classify_determinism`] / [`DeterminismClass`] — whether repeated
//!   runs of the kernel are bitwise identical, surfaced on
//!   [`crate::robustness::RobustnessReport`];
//! * [`AccessPattern`] / [`operand_patterns_for`] — per-operand memory
//!   access classification feeding the predictor features in
//!   [`crate::tune::features`].

use crate::abstraction::{EdgeOp, OpInfo, TensorType};
use crate::schedule::{ParallelInfo, Strategy};

/// Which operand buffer a load reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandBuf {
    /// The first operand tensor.
    A,
    /// The second operand tensor.
    B,
}

impl OperandBuf {
    /// The buffer's parameter name in the emitted kernel (`"A"` / `"B"`).
    pub fn name(self) -> &'static str {
        match self {
            OperandBuf::A => "A",
            OperandBuf::B => "B",
        }
    }
}

/// A symbolic quantity a row index is strictly below — the vocabulary of
/// the bounds checker. Bounds are symbols, not numbers: `NumVertices` and
/// `NumEdges` are unrelated, so an index bounded by one never proves an
/// access into a buffer sized by the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// `num_vertices` — the row count of `SrcV`/`DstV` tensors.
    NumVertices,
    /// `num_edges` — the row count of `Edge` tensors.
    NumEdges,
    /// `FEAT` — the feature (column) dimension.
    FeatDim,
}

impl Bound {
    /// The bound's name in emitted code and witness messages.
    pub fn symbol(self) -> &'static str {
        match self {
            Bound::NumVertices => "num_vertices",
            Bound::NumEdges => "num_edges",
            Bound::FeatDim => "FEAT",
        }
    }

    /// The symbolic row count of a tensor type (`None` for `Null`).
    pub fn rows_of(t: TensorType) -> Option<Bound> {
        match t {
            TensorType::SrcV | TensorType::DstV => Some(Bound::NumVertices),
            TensorType::Edge => Some(Bound::NumEdges),
            TensorType::Null => None,
        }
    }
}

/// Where a row-index value comes from — the provenance every load/store in
/// the IR carries. Provenance determines both the C variable the renderer
/// emits (`dst`, `src`, `eid`) and the symbolic bound plus discharging
/// invariant the bounds checker uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// `dst` produced by partitioning `[0, num_vertices)` into groups —
    /// the destination loop of vertex strategies. Bounded by the loop's
    /// own `min(..., num_vertices)` clamp.
    DstPartition,
    /// `dst` loaded from `slot_dst[s]` (edge strategies). Bounded by
    /// `Graph::validate`'s vertex-id check on the slot arrays.
    DstIndirect,
    /// `src` loaded from `in_src[s]`. Bounded by `Graph::validate`'s
    /// vertex-id check on the slot arrays.
    SrcIndirect,
    /// `eid` loaded from `in_eid[s]`. Bounded by `Graph::validate`'s
    /// edge-id bijection check.
    EidIndirect,
}

impl Provenance {
    /// The C variable this index renders to.
    pub fn var(self) -> &'static str {
        match self {
            Provenance::DstPartition | Provenance::DstIndirect => "dst",
            Provenance::SrcIndirect => "src",
            Provenance::EidIndirect => "eid",
        }
    }

    /// The symbolic bound this index is strictly below for any graph that
    /// passes `Graph::validate`.
    pub fn bound(self) -> Bound {
        match self {
            Provenance::DstPartition | Provenance::DstIndirect | Provenance::SrcIndirect => {
                Bound::NumVertices
            }
            Provenance::EidIndirect => Bound::NumEdges,
        }
    }

    /// The fact that discharges the bound: either a loop clamp visible in
    /// the IR itself or a named `Graph::validate` invariant.
    pub fn discharged_by(self) -> &'static str {
        match self {
            Provenance::DstPartition => "loop clamp min(..., num_vertices)",
            Provenance::DstIndirect => {
                "Graph::validate: slot arrays hold vertex ids < num_vertices"
            }
            Provenance::SrcIndirect => "Graph::validate: in_src holds vertex ids < num_vertices",
            Provenance::EidIndirect => "Graph::validate: in_eid is a bijection over 0..num_edges",
        }
    }

    /// Whether the value is read through a slot array (and therefore needs
    /// an in-bounds slot index `s`, supplied by a [`Loop::CsrSlots`] or
    /// [`Loop::EdgeGroup`] loop).
    pub fn is_indirect(self) -> bool {
        !matches!(self, Provenance::DstPartition)
    }
}

/// One memory access: a buffer row addressed by a provenance-carrying
/// index, optionally strided by the feature loop
/// (`buf[(size_t)row * FEAT + f]` vs the scalar-broadcast `buf[row]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Load {
    /// The operand buffer being read.
    pub buf: OperandBuf,
    /// The buffer's tensor type (decides its symbolic row count).
    pub tensor: TensorType,
    /// Row index provenance.
    pub row: Provenance,
    /// `true` for full feature rows, `false` for one-column scalar
    /// broadcast operands.
    pub feature_indexed: bool,
}

/// A value in the inner-loop statement list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// The `0.0f` placeholder of a `Null` operand. Pass-1 fusion must
    /// eliminate every one of these; a `Zero` surviving into a lowered
    /// kernel is an IR lint finding.
    Zero,
    /// A load from an operand buffer.
    Load(Load),
    /// The edge temporary defined by [`Stmt::DefineEdgeTmp`].
    EdgeTmp,
}

/// How the output element is updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// `C[i] = v` — exclusive overwrite (copy gathers / edge outputs).
    Assign,
    /// `C[i] += v` — exclusive sum/mean accumulation.
    Accumulate,
    /// `C[i] = fmaxf(C[i], v)` — exclusive running max.
    MaxInPlace,
    /// `C[i] = fminf(C[i], v)` — exclusive running min.
    MinInPlace,
    /// `atomicAdd(&C[i], v)` — contended float sum/mean.
    AtomicAdd,
    /// Compare-and-swap loop implementing atomic float max.
    AtomicCasMax,
    /// Compare-and-swap loop implementing atomic float min.
    AtomicCasMin,
}

impl UpdateKind {
    /// Whether the update uses hardware atomics.
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            UpdateKind::AtomicAdd | UpdateKind::AtomicCasMax | UpdateKind::AtomicCasMin
        )
    }

    /// Whether the update reads the previous output value
    /// (read-modify-write) rather than overwriting it.
    pub fn is_reduction(self) -> bool {
        !matches!(self, UpdateKind::Assign)
    }
}

/// The output store: the final statement of every kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Store {
    /// The output tensor type (decides its symbolic row count).
    pub tensor: TensorType,
    /// Row index provenance.
    pub row: Provenance,
    /// The stored value.
    pub value: Value,
    /// Plain or atomic update form.
    pub update: UpdateKind,
}

/// One statement of the innermost loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `float edge_tmp = ugrapher_edge_fn(a, b);` — the materialised edge
    /// stage. Absent when pass-1 fusion removed the copy.
    DefineEdgeTmp {
        /// The element-wise edge op the device function applies.
        op: EdgeOp,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// The output update.
    Store(Store),
}

/// One level of the kernel's loop nest, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loop {
    /// `for dst in [gidx*GROUP, min((gidx+1)*GROUP, num_vertices))` — the
    /// destination partition of vertex strategies.
    DstGroup,
    /// `for s in [in_ptr[dst], in_ptr[dst+1])` — the CSR in-edge slots of
    /// one destination. In-bounds because `in_ptr` is monotone with
    /// `in_ptr[num_vertices] == num_edges` (`Graph::validate`).
    CsrSlots,
    /// `for s in [gidx*GROUP, min((gidx+1)*GROUP, num_edges))` — the edge
    /// slot partition of edge strategies.
    EdgeGroup,
    /// `for f in [f0 (+lane), min(f0 + TILE_LEN, FEAT)) step stride` —
    /// the feature tile loop. `stride > 1` means warp lanes split the
    /// tile.
    Feature {
        /// The loop starts at `f0 + lane` (warp strategies).
        lane_offset: bool,
        /// Step between iterations of one thread (1 or the warp width).
        stride: usize,
    },
}

/// A fully lowered kernel: typed loop nest, statement list, and launch
/// geometry, plus the `(operator, schedule)` pair it was lowered from so
/// verifier passes are self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelIr {
    /// The operator this kernel implements.
    pub op: OpInfo,
    /// The schedule it was lowered under.
    pub parallel: ParallelInfo,
    /// Kernel symbol suffix (the lowercased schedule label).
    pub name: String,
    /// Loop nest, outermost first; the last entry is always the feature
    /// loop wrapping [`KernelIr::body`].
    pub loops: Vec<Loop>,
    /// Innermost-loop statements; the last is always the [`Store`].
    pub body: Vec<Stmt>,
    /// Feature (column) dimension.
    pub feat: usize,
    /// V/E grouping (the `GROUP` constant).
    pub group: usize,
    /// Work-item groups after partitioning (launch metadata).
    pub num_groups: usize,
    /// Feature tile count (the `TILES` constant).
    pub tiles: usize,
    /// Features per tile (the `TILE_LEN` constant).
    pub tile_len: usize,
    /// Launch geometry: blocks in the grid.
    pub grid_blocks: usize,
    /// Launch geometry: threads per block.
    pub threads_per_block: usize,
}

impl KernelIr {
    /// The output store (the last statement; lowering guarantees exactly
    /// one).
    ///
    /// # Panics
    ///
    /// Panics if the IR was hand-built without a store — lowered IR always
    /// has one.
    pub fn store(&self) -> &Store {
        match self.body.last() {
            Some(Stmt::Store(s)) => s,
            _ => panic!("lowered kernel IR always ends in a store"),
        }
    }

    /// Every operand load in the body, in statement order.
    pub fn loads(&self) -> Vec<Load> {
        let mut out = Vec::new();
        let mut push = |v: &Value| {
            if let Value::Load(l) = v {
                out.push(*l);
            }
        };
        for stmt in &self.body {
            match stmt {
                Stmt::DefineEdgeTmp { a, b, .. } => {
                    push(a);
                    push(b);
                }
                Stmt::Store(s) => push(&s.value),
            }
        }
        out
    }

    /// Whether one work item occupies a whole warp (feature loop strided
    /// over lanes).
    pub fn warp_per_item(&self) -> bool {
        self.loops.iter().any(|l| {
            matches!(
                l,
                Loop::Feature {
                    lane_offset: true,
                    ..
                }
            )
        })
    }

    /// Whether work items iterate edge slots (vs destination vertices).
    pub fn edge_parallel(&self) -> bool {
        self.loops.contains(&Loop::EdgeGroup)
    }

    /// The race verdict re-derived from the IR write-set: two work items
    /// can write the same output element iff the store is a
    /// read-modify-write through an *indirect* destination index — i.e.
    /// the row is data (`slot_dst[s]`), not a loop variable that
    /// partitions rows across items.
    ///
    /// `ugrapher-analyze` cross-checks this against
    /// [`crate::analysis::race_verdict`], `KernelPlan::needs_atomic`, and
    /// the simulator's write-log oracle.
    pub fn store_races(&self) -> bool {
        let store = self.store();
        store.update.is_reduction()
            && store.row.is_indirect()
            && store.row.bound() == Bound::NumVertices
    }

    /// Per-operand access-pattern classification (see [`AccessPattern`]).
    pub fn operand_patterns(&self) -> OperandPatterns {
        let warp = self.warp_per_item();
        let classify_load = |buf: OperandBuf| {
            self.loads()
                .iter()
                .find(|l| l.buf == buf)
                .map(|l| AccessPattern::of(l.row, l.feature_indexed, warp))
        };
        let store = self.store();
        OperandPatterns {
            a: classify_load(OperandBuf::A),
            b: classify_load(OperandBuf::B),
            c: AccessPattern::of(store.row, true, warp),
        }
    }
}

/// How a warp's 32 lanes touch memory when executing one access of the
/// kernel — the static feature the adaptive tuner consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Adjacent lanes read adjacent words (warp strategies striding lanes
    /// over the feature dimension): one transaction per warp per 32
    /// words.
    Coalesced,
    /// Adjacent lanes read rows a fixed stride apart (thread strategies
    /// walking partitioned destination rows): predictable but uncoalesced.
    Strided,
    /// Every lane reads the same word (scalar operands under warp
    /// strategies): served by one transaction + broadcast.
    Broadcast,
    /// Lanes read data-dependent rows through an indirection array
    /// (`in_src`/`slot_dst`/`in_eid`): the irregular GNN gather.
    Gather,
}

impl AccessPattern {
    /// Stable lower-case label (trace attributes, JSON export).
    pub fn label(self) -> &'static str {
        match self {
            AccessPattern::Coalesced => "coalesced",
            AccessPattern::Strided => "strided",
            AccessPattern::Broadcast => "broadcast",
            AccessPattern::Gather => "gather",
        }
    }

    /// Small stable id for feature vectors (0 is reserved for "operand
    /// absent").
    pub fn feature_id(self) -> f64 {
        match self {
            AccessPattern::Coalesced => 1.0,
            AccessPattern::Strided => 2.0,
            AccessPattern::Broadcast => 3.0,
            AccessPattern::Gather => 4.0,
        }
    }

    /// Classifies one access from its index provenance, stride shape, and
    /// the work-item granularity — the single classification rule used by
    /// both [`KernelIr::operand_patterns`] and the plan-free
    /// [`operand_patterns_for`] helper.
    ///
    /// * Warp items stride lanes over features: full rows coalesce,
    ///   scalars broadcast.
    /// * Thread items walk features serially, so the pattern across lanes
    ///   is decided by the *row* index: partitioned loop rows are a fixed
    ///   stride apart, indirect rows are data-dependent gathers.
    pub fn of(row: Provenance, feature_indexed: bool, warp_item: bool) -> AccessPattern {
        if warp_item {
            if feature_indexed {
                AccessPattern::Coalesced
            } else {
                AccessPattern::Broadcast
            }
        } else if row.is_indirect() {
            AccessPattern::Gather
        } else if feature_indexed {
            AccessPattern::Strided
        } else {
            AccessPattern::Coalesced
        }
    }
}

/// The access patterns of one kernel's operands (`None` = operand absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandPatterns {
    /// Operand A's pattern.
    pub a: Option<AccessPattern>,
    /// Operand B's pattern.
    pub b: Option<AccessPattern>,
    /// The output tensor's pattern.
    pub c: AccessPattern,
}

impl OperandPatterns {
    /// Feature-vector encoding: one id per operand, 0 when absent.
    pub fn feature_ids(&self) -> [f64; 3] {
        let id = |p: Option<AccessPattern>| p.map_or(0.0, AccessPattern::feature_id);
        [
            id(self.a),
            id(self.b),
            Some(self.c).map_or(0.0, |p| p.feature_id()),
        ]
    }
}

/// The row-index provenance of a tensor operand under a strategy — shared
/// by lowering and the plan-free feature helpers. `None` for `Null`
/// operands (nothing is loaded).
pub fn provenance_of(tensor: TensorType, strategy: Strategy) -> Option<Provenance> {
    match tensor {
        TensorType::SrcV => Some(Provenance::SrcIndirect),
        TensorType::Edge => Some(Provenance::EidIndirect),
        TensorType::DstV => Some(if strategy.is_edge_parallel() {
            Provenance::DstIndirect
        } else {
            Provenance::DstPartition
        }),
        TensorType::Null => None,
    }
}

/// Plan-free access-pattern classification for an `(operator, strategy)`
/// pair with full-width operands — what [`crate::tune::features`] feeds
/// the predictor (operand widths are not part of the tuning context).
///
/// # Panics
///
/// Panics if `op.c` is `Null` — validated operators always have an output.
pub fn operand_patterns_for(op: &OpInfo, strategy: Strategy) -> OperandPatterns {
    let warp = strategy.is_warp_per_item();
    let of = |t: TensorType| provenance_of(t, strategy).map(|p| AccessPattern::of(p, true, warp));
    OperandPatterns {
        a: of(op.a),
        b: of(op.b),
        c: of(op.c).expect("validated operators have a non-Null output"),
    }
}

/// Whether repeated executions of a kernel produce bitwise-identical
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeterminismClass {
    /// Exclusive writes or a single-owner sequential reduction in fixed
    /// CSR slot order: bitwise deterministic.
    Sequential,
    /// Atomic CAS float max/min: updates interleave, but max/min is
    /// insensitive to ordering of finite floats — bitwise deterministic.
    AtomicOrderInsensitive,
    /// Atomic float sum/mean: float addition is non-associative, so the
    /// bitwise result depends on the interleaving the hardware happens to
    /// schedule.
    AtomicOrderDependent,
}

impl DeterminismClass {
    /// `true` when repeated runs are bitwise identical.
    pub fn bitwise_deterministic(self) -> bool {
        !matches!(self, DeterminismClass::AtomicOrderDependent)
    }

    /// Stable lower-case label (metrics, JSON export, robustness report).
    pub fn label(self) -> &'static str {
        match self {
            DeterminismClass::Sequential => "sequential",
            DeterminismClass::AtomicOrderInsensitive => "atomic-order-insensitive",
            DeterminismClass::AtomicOrderDependent => "atomic-order-dependent",
        }
    }
}

impl std::fmt::Display for DeterminismClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies a lowered kernel's determinism from its store's update form
/// (see [`DeterminismClass`] for the case analysis).
pub fn classify_determinism(ir: &KernelIr) -> DeterminismClass {
    match ir.store().update {
        UpdateKind::Assign
        | UpdateKind::Accumulate
        | UpdateKind::MaxInPlace
        | UpdateKind::MinInPlace => DeterminismClass::Sequential,
        UpdateKind::AtomicCasMax | UpdateKind::AtomicCasMin => {
            DeterminismClass::AtomicOrderInsensitive
        }
        UpdateKind::AtomicAdd => DeterminismClass::AtomicOrderDependent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OpInfo;
    use crate::lower::lower;
    use crate::plan::KernelPlan;

    fn ir(op: OpInfo, strategy: Strategy) -> KernelIr {
        let plan = KernelPlan::generate(op, ParallelInfo::basic(strategy), 1000, 4000, 32).unwrap();
        lower(&plan).unwrap()
    }

    #[test]
    fn write_set_race_matches_shared_analysis_on_registry() {
        for op in crate::abstraction::registry::all_valid_ops() {
            for strategy in Strategy::ALL {
                let p = ParallelInfo::basic(strategy);
                assert_eq!(
                    ir(op, strategy).store_races(),
                    crate::analysis::race_verdict(&op, &p).needs_atomic,
                    "{op:?} under {p}"
                );
            }
        }
    }

    #[test]
    fn access_patterns_follow_strategy_and_provenance() {
        // Warp strategies coalesce full rows.
        let p = ir(OpInfo::aggregation_sum(), Strategy::WarpEdge).operand_patterns();
        assert_eq!(p.a, Some(AccessPattern::Coalesced));
        assert_eq!(p.c, AccessPattern::Coalesced);
        // Thread-edge gathers through in_src / slot_dst.
        let p = ir(OpInfo::aggregation_sum(), Strategy::ThreadEdge).operand_patterns();
        assert_eq!(p.a, Some(AccessPattern::Gather));
        assert_eq!(p.c, AccessPattern::Gather);
        // Thread-vertex: src rows gather, the partitioned dst rows stride.
        let p = ir(OpInfo::aggregation_sum(), Strategy::ThreadVertex).operand_patterns();
        assert_eq!(p.a, Some(AccessPattern::Gather));
        assert_eq!(p.c, AccessPattern::Strided);
        assert_eq!(p.b, None);
    }

    #[test]
    fn scalar_operands_broadcast_under_warp_strategies() {
        let plan = KernelPlan::generate(
            OpInfo::weighted_aggregation_sum(),
            ParallelInfo::basic(Strategy::WarpEdge),
            100,
            500,
            16,
        )
        .unwrap()
        .with_scalar_operands(false, true);
        let p = lower(&plan).unwrap().operand_patterns();
        assert_eq!(p.b, Some(AccessPattern::Broadcast));
        assert_eq!(p.a, Some(AccessPattern::Coalesced));
    }

    #[test]
    fn determinism_class_per_update_kind() {
        let sum = OpInfo::aggregation_sum();
        assert_eq!(
            classify_determinism(&ir(sum, Strategy::ThreadVertex)),
            DeterminismClass::Sequential
        );
        assert_eq!(
            classify_determinism(&ir(sum, Strategy::ThreadEdge)),
            DeterminismClass::AtomicOrderDependent
        );
        assert_eq!(
            classify_determinism(&ir(OpInfo::aggregation_max(), Strategy::WarpEdge)),
            DeterminismClass::AtomicOrderInsensitive
        );
        assert!(DeterminismClass::AtomicOrderInsensitive.bitwise_deterministic());
        assert!(!DeterminismClass::AtomicOrderDependent.bitwise_deterministic());
        assert_eq!(
            classify_determinism(&ir(OpInfo::message_creation_add(), Strategy::WarpEdge)),
            DeterminismClass::Sequential
        );
    }

    #[test]
    fn plan_free_patterns_agree_with_lowered_ir() {
        for op in crate::abstraction::registry::all_valid_ops() {
            for strategy in Strategy::ALL {
                assert_eq!(
                    operand_patterns_for(&op, strategy),
                    ir(op, strategy).operand_patterns(),
                    "{op:?} {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn feature_ids_reserve_zero_for_absent() {
        let p = ir(OpInfo::aggregation_sum(), Strategy::ThreadVertex).operand_patterns();
        let ids = p.feature_ids();
        assert_eq!(ids[1], 0.0, "Null operand B encodes as 0");
        assert!(ids[0] > 0.0 && ids[2] > 0.0);
    }
}
