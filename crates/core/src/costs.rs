//! Calibration constants of the kernel cost model.
//!
//! These are the per-instruction costs the trace generator charges while
//! walking a schedule. They play the role of the instruction mix of the
//! paper's generated CUDA kernels: copies cost nothing (the fusion pass
//! removed them), arithmetic costs issue slots, every memory instruction
//! carries address-generation work, and the fine-grained knobs carry the
//! bookkeeping overhead the paper attributes to them (paper §4.2:
//! "grouping ... reduces work-efficiency owing to the additional group
//! computation overhead"; "feature tiling ... reduces work-efficiency
//! because of the extra address calculation").

/// Warp-cycles per arithmetic warp instruction.
pub const CYCLES_PER_ARITH: f64 = 1.0;

/// Warp-cycles of address generation + issue per memory warp instruction.
pub const CYCLES_PER_MEM_ISSUE: f64 = 2.0;

/// Warp-cycles of loop bookkeeping per edge iteration.
pub const CYCLES_LOOP: f64 = 2.0;

/// Extra warp-cycles per V/E group processed (group index computation).
pub const CYCLES_GROUP_OVERHEAD: f64 = 3.0;

/// Extra warp-cycles per work item when feature tiling is enabled (tile
/// base address computation).
pub const CYCLES_TILE_OVERHEAD: f64 = 4.0;

/// Extra warp-cycles per atomic instruction issued (read-modify-write setup
/// on top of the L2 serialization modeled by the simulator).
pub const CYCLES_ATOMIC_ISSUE: f64 = 4.0;

/// Threads per block used by all generated kernels (matching the fixed
/// block size of the paper's templates).
pub const THREADS_PER_BLOCK: usize = 256;

/// Baseline register usage per thread for a generated kernel.
pub const BASE_REGS_PER_THREAD: usize = 24;
