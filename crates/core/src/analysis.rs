//! Static analysis of `(operator, schedule)` pairs — the paper's §5.2
//! atomic-requirement pass promoted to a first-class, shared analysis.
//!
//! Historically the atomics decision lived inline in
//! [`KernelPlan::generate`](crate::plan::KernelPlan::generate) and the
//! legality checks were scattered across `plan.rs` / `schedule.rs` /
//! `tune`. This module is now the *only* implementation of both:
//!
//! * [`race_verdict`] symbolically derives the output **write-set per
//!   parallel work item** for any strategy × grouping × tiling combination
//!   and decides whether two items can write the same output element
//!   (Table 4 tensor types decide whether `c_idx` is per-destination or
//!   per-edge);
//! * [`race_witness`] specializes the verdict to a concrete graph shape,
//!   producing two work items and the destination row they share — or
//!   `None` when this particular graph cannot race under the schedule
//!   (e.g. the grouping is so large that one item owns every edge);
//! * [`check_context`] is the single legality gate (operator Table 4
//!   rules, schedule knobs, feature dimension) that plan generation, grid
//!   search and the predictor all call before proposing or executing a
//!   candidate;
//! * [`check_plan`] audits a fully built [`KernelPlan`] — its recorded
//!   `needs_atomic` must agree with the race verdict, and a copy gather
//!   must never be marked atomic — returning
//!   [`CoreError::Internal`] instead of panicking;
//! * [`lint_schedule`] reports warning-level findings (clamped tiling,
//!   degenerate grouping) that are legal but wasteful.
//!
//! The `ugrapher-analyze` crate builds its three analysis passes and the
//! dynamic sim cross-check on top of these primitives.

use ugrapher_graph::Graph;

use crate::abstraction::{GatherOp, OpInfo, TensorType};
use crate::plan::KernelPlan;
use crate::schedule::ParallelInfo;
use crate::CoreError;

/// How the output index `c_idx` of paper Fig. 5 is derived from the
/// iteration variables, per the Table 4 output tensor type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteIndex {
    /// `C[dst]` — one row per destination vertex; all in-edges of a
    /// destination reduce into the same row.
    PerDst,
    /// `C[eid]` — one row per edge; every edge owns its row exclusively.
    PerEdge,
    /// `C[src]` — one row per source vertex. No legal Table 4 operator
    /// writes per-source (reductions run over in-edges), but the write-set
    /// model is total so the analyzer can classify malformed operators
    /// instead of crashing on them.
    PerSrc,
}

impl WriteIndex {
    /// The write index of an output tensor type, if it has one.
    pub fn of(c: TensorType) -> Option<WriteIndex> {
        match c {
            TensorType::DstV => Some(WriteIndex::PerDst),
            TensorType::Edge => Some(WriteIndex::PerEdge),
            TensorType::SrcV => Some(WriteIndex::PerSrc),
            TensorType::Null => None,
        }
    }
}

/// The outcome of the static race analysis for one `(operator, schedule)`
/// pair, independent of any concrete graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceVerdict {
    /// Two parallel work items can write the same output element; the
    /// generated kernel must use atomic updates.
    pub needs_atomic: bool,
    /// Human-readable derivation of the verdict.
    pub reason: &'static str,
}

/// Derives the output write-set per parallel work item and decides whether
/// the schedule can race on the output.
///
/// The derivation, by case:
///
/// * **Vertex strategies** — work item `(tile t, group g)` owns destination
///   vertices `[g·G, (g+1)·G)` and feature slice `t`. Per-destination
///   outputs partition by construction; per-edge outputs partition too,
///   because every edge has exactly one destination. Never a race.
/// * **Edge strategies, per-edge output** — item `(t, g)` owns edge
///   positions `[g·G, (g+1)·G)` and writes rows `eid(pos)`, a bijection on
///   positions. Never a race.
/// * **Edge strategies, per-destination reduction** — item `(t, g)` writes
///   rows `{dst(slot) : slot ∈ [g·G, (g+1)·G)}`. Destinations with edges on
///   both sides of a group boundary are written by two items: a race.
/// * **Copy gathers** — each output element is written at most once per
///   owning item; no read-modify-write, no race (and the emitter has no
///   atomic form for them, see [`check_plan`]).
pub fn race_verdict(op: &OpInfo, parallel: &ParallelInfo) -> RaceVerdict {
    let Some(widx) = WriteIndex::of(op.c) else {
        return RaceVerdict {
            needs_atomic: false,
            reason: "operator has no output tensor; nothing is written",
        };
    };
    if !op.gather_op.is_reduction() {
        return RaceVerdict {
            needs_atomic: false,
            reason: "copy gather: each output element is written by exactly one item",
        };
    }
    if !parallel.strategy.is_edge_parallel() {
        return RaceVerdict {
            needs_atomic: false,
            reason: "vertex-parallel items own disjoint destination rows",
        };
    }
    match widx {
        WriteIndex::PerEdge => RaceVerdict {
            needs_atomic: false,
            reason: "per-edge output rows partition across edge-parallel items",
        },
        // Per-src would reduce over out-edges of a source shared by items;
        // same argument as per-dst, kept for totality on malformed ops.
        WriteIndex::PerDst | WriteIndex::PerSrc => RaceVerdict {
            needs_atomic: true,
            reason: "edge-parallel reduction: items sharing a destination write the same row",
        },
    }
}

/// Two concrete work items that write the same output row on `graph`.
///
/// `item_a` / `item_b` are V/E group indices (`slot / grouping`) of the
/// first feature tile; the race exists on every tile, but tile 0 is the
/// canonical witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceWitness {
    /// The destination vertex whose output row both items write.
    pub dst: usize,
    /// The lower work item (group index).
    pub item_a: usize,
    /// The higher work item (group index).
    pub item_b: usize,
    /// An edge slot of `dst` owned by `item_a`.
    pub slot_a: usize,
    /// An edge slot of `dst` owned by `item_b`.
    pub slot_b: usize,
}

/// Specializes [`race_verdict`] to a concrete graph: finds two work items
/// that write the same output row, or proves that this graph cannot race
/// under this schedule.
///
/// Edge-parallel reductions iterate edges in destination-sorted (CSR) slot
/// order and flush one store per same-destination run (see
/// `exec::trace`), so two items share a destination exactly when that
/// destination's contiguous slot range crosses a `grouping` boundary.
pub fn race_witness(graph: &Graph, op: &OpInfo, parallel: &ParallelInfo) -> Option<RaceWitness> {
    if !race_verdict(op, parallel).needs_atomic {
        return None;
    }
    let grp = parallel.grouping.max(1);
    for dst in 0..graph.num_vertices() {
        let s0 = graph.in_ptr()[dst];
        let s1 = graph.in_ptr()[dst + 1];
        if s1 == s0 {
            continue;
        }
        let (item_a, item_b) = (s0 / grp, (s1 - 1) / grp);
        if item_a != item_b {
            return Some(RaceWitness {
                dst,
                item_a,
                item_b,
                slot_a: s0,
                slot_b: s1 - 1,
            });
        }
    }
    None
}

/// The single legality gate for an `(operator, schedule, feature-dim)`
/// context: Table 4 operator rules, schedule knobs, non-empty feature
/// dimension. Plan generation, grid search and the predictor all call
/// this instead of keeping their own scattered checks.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOperator`] for illegal operators,
/// [`CoreError::InvalidSchedule`] for zero knobs, and
/// [`CoreError::FeatureMismatch`] for `feat == 0`.
pub fn check_context(op: &OpInfo, parallel: &ParallelInfo, feat: usize) -> Result<(), CoreError> {
    op.validate()?;
    parallel.validate()?;
    if feat == 0 {
        return Err(CoreError::FeatureMismatch {
            expected: 1,
            found: 0,
        });
    }
    Ok(())
}

/// Audits a fully built [`KernelPlan`] against the race analysis.
///
/// A plan whose public `needs_atomic` field disagrees with the verdict —
/// possible only through field mutation or a bug in plan generation — is an
/// internal inconsistency, as is a copy gather marked atomic (the CUDA
/// emitter has no atomic form for copies).
///
/// # Errors
///
/// Returns [`CoreError::Internal`] describing the inconsistency.
pub fn check_plan(plan: &KernelPlan) -> Result<(), CoreError> {
    let verdict = race_verdict(&plan.op, &plan.parallel);
    if plan.needs_atomic != verdict.needs_atomic {
        return Err(CoreError::Internal {
            reason: format!(
                "plan for {} marks needs_atomic={} but the race analysis derives {} ({})",
                plan.parallel.label(),
                plan.needs_atomic,
                verdict.needs_atomic,
                verdict.reason
            ),
        });
    }
    if plan.needs_atomic && !plan.op.gather_op.is_reduction() {
        return Err(CoreError::Internal {
            reason: format!(
                "copy gather {:?} marked atomic; atomics exist only for reductions",
                plan.op.gather_op
            ),
        });
    }
    Ok(())
}

/// A warning-level schedule finding: legal, but wasteful or degenerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleLint {
    /// The requested feature tiling exceeds the feature dimension; the
    /// plan clamps it, so every knob value above `feat` produces the same
    /// kernel (wasted tuning candidates).
    TilingExceedsFeat {
        /// Requested tiling knob.
        tiling: usize,
        /// Actual feature dimension.
        feat: usize,
    },
    /// The grouping knob is at least the number of work units, so a single
    /// work item owns all of them — the schedule degenerates to serial
    /// execution over that loop.
    GroupingExceedsWork {
        /// Requested grouping knob.
        grouping: usize,
        /// Vertices (vertex strategies) or edges (edge strategies).
        work_units: usize,
    },
}

impl std::fmt::Display for ScheduleLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleLint::TilingExceedsFeat { tiling, feat } => write!(
                f,
                "tiling {tiling} exceeds feature dimension {feat}; clamped (redundant candidate)"
            ),
            ScheduleLint::GroupingExceedsWork {
                grouping,
                work_units,
            } => write!(
                f,
                "grouping {grouping} >= {work_units} work units; one item owns all work"
            ),
        }
    }
}

/// Reports warning-level schedule findings for a concrete graph shape.
/// An empty result means the schedule exercises real parallelism and no
/// knob is silently clamped.
pub fn lint_schedule(
    op: &OpInfo,
    parallel: &ParallelInfo,
    feat: usize,
    num_vertices: usize,
    num_edges: usize,
) -> Vec<ScheduleLint> {
    let mut lints = Vec::new();
    if parallel.tiling > feat && feat > 0 {
        lints.push(ScheduleLint::TilingExceedsFeat {
            tiling: parallel.tiling,
            feat,
        });
    }
    let work_units = if parallel.strategy.is_edge_parallel() {
        num_edges
    } else {
        num_vertices
    };
    if work_units > 0 && parallel.grouping >= work_units && parallel.grouping > 1 {
        lints.push(ScheduleLint::GroupingExceedsWork {
            grouping: parallel.grouping,
            work_units,
        });
    }
    let _ = op; // shape-only lints today; op-specific lints slot in here
    lints
}

/// `true` when the gather op has an atomic emission form (float `max`/`min`
/// need a compare-and-swap loop; `sum`/`mean` map to `atomicAdd`).
pub fn has_atomic_form(gather: GatherOp) -> bool {
    gather.is_reduction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::registry;
    use crate::schedule::Strategy;
    use ugrapher_graph::generate::uniform_random;

    /// The pre-refactor inline rule from `KernelPlan::generate`, pinned
    /// verbatim: the new shared analysis must agree with it on every legal
    /// operator × strategy (the dedup regression test).
    fn legacy_rule(op: &OpInfo, parallel: &ParallelInfo) -> bool {
        op.c == TensorType::DstV
            && op.gather_op.is_reduction()
            && parallel.strategy.is_edge_parallel()
    }

    #[test]
    fn verdict_agrees_with_legacy_rule_on_entire_registry() {
        for op in registry::all_valid_ops() {
            for strategy in Strategy::ALL {
                for (g, t) in [(1, 1), (4, 2), (64, 64)] {
                    let p = ParallelInfo::new(strategy, g, t);
                    assert_eq!(
                        race_verdict(&op, &p).needs_atomic,
                        legacy_rule(&op, &p),
                        "{op:?} under {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn edge_outputs_never_race() {
        for op in registry::all_valid_ops()
            .iter()
            .filter(|o| o.c == TensorType::Edge)
        {
            for strategy in Strategy::ALL {
                let v = race_verdict(op, &ParallelInfo::basic(strategy));
                assert!(!v.needs_atomic, "{op:?} under {strategy:?}: {}", v.reason);
            }
        }
    }

    #[test]
    fn witness_found_when_destination_spans_items() {
        let g = uniform_random(100, 800, 3); // mean in-degree 8 >> 1
        let op = OpInfo::aggregation_sum();
        let p = ParallelInfo::basic(Strategy::ThreadEdge);
        let w = race_witness(&g, &op, &p).expect("dense graph must race under G=1");
        assert_ne!(w.item_a, w.item_b);
        assert!(g.in_degree(w.dst) >= 2);
        // The two slots really belong to the witness destination.
        assert!(g.in_ptr()[w.dst] <= w.slot_a && w.slot_b < g.in_ptr()[w.dst + 1]);
    }

    #[test]
    fn witness_absent_when_one_item_owns_everything() {
        let g = uniform_random(50, 60, 4);
        let op = OpInfo::aggregation_sum();
        // Grouping 64 covers all 60 edges: a single work item, no race on
        // this graph even though the shape-generic verdict is atomic.
        let p = ParallelInfo::new(Strategy::ThreadEdge, 64, 1);
        assert!(race_verdict(&op, &p).needs_atomic);
        assert!(race_witness(&g, &op, &p).is_none());
    }

    #[test]
    fn witness_none_for_non_racing_schedules() {
        let g = uniform_random(80, 400, 5);
        assert!(race_witness(
            &g,
            &OpInfo::aggregation_sum(),
            &ParallelInfo::basic(Strategy::WarpVertex)
        )
        .is_none());
        assert!(race_witness(
            &g,
            &OpInfo::message_creation_add(),
            &ParallelInfo::basic(Strategy::ThreadEdge)
        )
        .is_none());
    }

    #[test]
    fn check_context_rejects_each_bad_input() {
        let op = OpInfo::aggregation_sum();
        let ok = ParallelInfo::basic(Strategy::ThreadEdge);
        assert!(check_context(&op, &ok, 8).is_ok());
        let bad_schedule = ParallelInfo {
            strategy: Strategy::ThreadEdge,
            grouping: 0,
            tiling: 1,
        };
        assert!(matches!(
            check_context(&op, &bad_schedule, 8),
            Err(CoreError::InvalidSchedule { .. })
        ));
        assert!(matches!(
            check_context(&op, &ok, 0),
            Err(CoreError::FeatureMismatch { .. })
        ));
        let bad_op = OpInfo {
            edge_op: crate::abstraction::EdgeOp::Mul,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::DstV,
        };
        assert!(matches!(
            check_context(&bad_op, &ok, 8),
            Err(CoreError::InvalidOperator { .. })
        ));
    }

    #[test]
    fn check_plan_catches_mutated_atomic_flag() {
        let op = OpInfo::aggregation_sum();
        let mut plan =
            KernelPlan::generate(op, ParallelInfo::basic(Strategy::ThreadEdge), 100, 500, 8)
                .unwrap();
        assert!(check_plan(&plan).is_ok());
        plan.needs_atomic = false; // simulate a corrupted plan
        assert!(matches!(check_plan(&plan), Err(CoreError::Internal { .. })));
    }

    #[test]
    fn lints_flag_clamped_and_degenerate_knobs() {
        let op = OpInfo::aggregation_sum();
        let p = ParallelInfo::new(Strategy::ThreadEdge, 64, 64);
        let lints = lint_schedule(&op, &p, 8, 40, 50);
        assert!(lints
            .iter()
            .any(|l| matches!(l, ScheduleLint::TilingExceedsFeat { .. })));
        assert!(lints
            .iter()
            .any(|l| matches!(l, ScheduleLint::GroupingExceedsWork { .. })));
        assert!(
            lint_schedule(&op, &ParallelInfo::basic(Strategy::ThreadEdge), 8, 40, 50).is_empty()
        );
        for l in &lints {
            assert!(!l.to_string().is_empty());
        }
    }
}
