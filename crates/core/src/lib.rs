//! # ugrapher-core
//!
//! The uGrapher contribution (ASPLOS'23): a unified abstraction for GNN
//! graph operators with *decoupled computation and schedule*, plus the
//! machinery built on top of it —
//!
//! * [`abstraction`] — the nested sparse–dense loop abstraction of paper §3:
//!   [`abstraction::EdgeOp`], [`abstraction::GatherOp`],
//!   [`abstraction::TensorType`] and [`abstraction::OpInfo`] capture the
//!   complete semantics of every graph operator (Table 4), and
//!   [`abstraction::registry`] enumerates the legal operator space
//!   (Table 2's census).
//! * [`schedule`] — the parallelization-strategy space of paper §4:
//!   [`schedule::Strategy`] (thread/warp × vertex/edge), V/E grouping and feature
//!   tiling, combined in [`schedule::ParallelInfo`].
//! * [`plan`] — the two "code generation" passes of paper §5.2 (NULL-op
//!   fusion and atomic-requirement analysis) producing a [`plan::KernelPlan`].
//! * [`ir`] / [`lower`] — the typed kernel IR every plan lowers to:
//!   loads/stores with index provenance, explicit update forms and loop
//!   nests. The CUDA emitter renders from it and the `ugrapher-analyze`
//!   verifier passes (bounds, determinism, access patterns) analyze it, so
//!   emitter and analyzer share one source of truth.
//! * [`analysis`] — the shared static analysis behind pass 2: the
//!   write-set race verdict, concrete-graph race witnesses, and the single
//!   legality gate used by planning and tuning (extended by the
//!   `ugrapher-analyze` crate into a standalone analyzer).
//! * [`exec`] — the executor: functional evaluation of any operator
//!   (schedule-independent results) and schedule-faithful trace generation
//!   driving the `ugrapher-sim` GPU model.
//! * [`tune`] — grid search over the strategy space and the learned
//!   LightGBM-style predictor of paper §5.4.
//! * [`api`] — the three-argument `uGrapher(graph_tensor, op_info,
//!   parallel_info)` entry point of paper Fig. 9, with auto-tuning when the
//!   schedule is omitted.
//! * [`cache`] — the compiled-plan cache: memoizes schedule choice, plan
//!   generation and IR lowering per (operator, graph version, shape), so
//!   repeat requests skip compilation and tuning entirely (the hot path
//!   of the `ugrapher-serve` engine).
//!
//! # Example
//!
//! ```
//! use ugrapher_core::abstraction::OpInfo;
//! use ugrapher_core::api::{uGrapher, GraphTensor, OpArgs};
//! use ugrapher_graph::generate::ring;
//! use ugrapher_tensor::Tensor2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ring(16);
//! let x = Tensor2::full(16, 8, 1.0);
//! // aggregation-sum: every vertex sums its in-neighbors' features.
//! let out = uGrapher(
//!     &GraphTensor::new(&graph),
//!     &OpArgs::fused(OpInfo::aggregation_sum(), &x),
//!     None, // let uGrapher pick the schedule
//! )?;
//! assert_eq!(out.output[(0, 0)], 1.0);
//! # Ok(())
//! # }
//! ```

pub mod abstraction;
pub mod analysis;
pub mod api;
pub mod cache;
pub mod codegen_cuda;
mod costs;
mod error;
pub mod exec;
pub mod ir;
pub mod lower;
pub mod plan;
pub mod robustness;
pub mod schedule;
pub mod tune;

pub use error::CoreError;
