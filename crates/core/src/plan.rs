//! Kernel plan generation — the reproduction of the paper's two-pass CUDA
//! code generator (§5.2).
//!
//! Pass 1 (**fusion**) removes the copy stages: when `edge_op` is a pure
//! copy the edge temporary is the input element itself (no register, no
//! arithmetic), and when `gather_op` is `copy_rhs` the store writes the
//! edge value directly. Pass 2 (**atomic analysis**) decides whether the
//! output must be updated atomically: exactly when a reduction into a
//! vertex tensor is parallelized over edges, so that several threads can
//! own edges of the same destination.
//!
//! The result is a [`KernelPlan`]: the fused operator, the schedule, the
//! grid shape, and the per-thread resource estimate that feeds the
//! occupancy model.

use crate::abstraction::{OpInfo, TensorType};
use crate::analysis;
use crate::costs;
use crate::schedule::ParallelInfo;
use crate::CoreError;

/// A fully scheduled graph-operator kernel, ready to execute or trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    /// The operator semantics.
    pub op: OpInfo,
    /// The schedule.
    pub parallel: ParallelInfo,
    /// Pass 1: the edge stage is a pure copy and was fused away.
    pub fused_edge: bool,
    /// Pass 1: the gather stage is a pure copy and was fused away.
    pub fused_gather: bool,
    /// Pass 2: the output must be updated with atomics.
    pub needs_atomic: bool,
    /// Destination-vertex groups (vertex strategies) or edge groups (edge
    /// strategies).
    pub num_groups: usize,
    /// Effective number of feature tiles (requested tiling clamped to the
    /// feature dimension).
    pub tile_count: usize,
    /// Features per tile.
    pub tile_size: usize,
    /// Total work items (`num_groups * tile_count`); one item is one thread
    /// (thread strategies) or one warp (warp strategies).
    pub num_items: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Grid size in blocks.
    pub grid_blocks: usize,
    /// Estimated registers per thread (drives occupancy).
    pub regs_per_thread: usize,
    /// Feature dimension of the operator's tensors.
    pub feat: usize,
    /// Operand A is a one-column scalar broadcast (one value per row).
    pub a_scalar: bool,
    /// Operand B is a one-column scalar broadcast.
    pub b_scalar: bool,
}

impl KernelPlan {
    /// Generates a plan for `op` under `parallel` on a graph with the given
    /// vertex/edge counts and feature dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOperator`] if `op` fails validation,
    /// [`CoreError::InvalidSchedule`] if `parallel` has a zero knob, or
    /// [`CoreError::FeatureMismatch`] if `feat == 0`.
    pub fn generate(
        op: OpInfo,
        parallel: ParallelInfo,
        num_vertices: usize,
        num_edges: usize,
        feat: usize,
    ) -> Result<Self, CoreError> {
        analysis::check_context(&op, &parallel, feat)?;

        // Pass 1: fusion of NULL (copy) stages.
        let fused_edge = op.edge_op.is_copy();
        let fused_gather = !op.gather_op.is_reduction();

        // Pass 2: atomic-requirement analysis, delegated to the shared
        // write-set race analysis (the single implementation of the rule;
        // see `crate::analysis`).
        let needs_atomic = analysis::race_verdict(&op, &parallel).needs_atomic;

        // Schedule shape. The requested tiling is clamped to the feature
        // dimension, then re-derived from the tile size so that
        // `tile_count * tile_size` covers `feat` without overshooting by a
        // whole tile (e.g. feat 12 with tiling 8 becomes 6 tiles of 2).
        let tile_size = feat.div_ceil(parallel.tiling.min(feat).max(1));
        let tile_count = feat.div_ceil(tile_size);
        let work_units = if parallel.strategy.is_edge_parallel() {
            num_edges
        } else {
            num_vertices
        };
        let num_groups = work_units.div_ceil(parallel.grouping).max(1);
        let num_items = num_groups * tile_count;

        let threads_per_block = costs::THREADS_PER_BLOCK;
        let warp = 32;
        let grid_blocks = if parallel.strategy.is_warp_per_item() {
            let warps_per_block = threads_per_block / warp;
            num_items.div_ceil(warps_per_block).max(1)
        } else {
            num_items.div_ceil(threads_per_block).max(1)
        };

        // Register estimate: thread-per-item strategies keep the whole
        // feature tile in registers (vertex strategies accumulate there),
        // warp strategies split the tile over 32 lanes.
        let accum_regs = if parallel.strategy.is_warp_per_item() {
            tile_size.div_ceil(warp)
        } else {
            tile_size
        };
        let regs_per_thread = (costs::BASE_REGS_PER_THREAD + accum_regs).min(255);

        Ok(Self {
            op,
            parallel,
            fused_edge,
            fused_gather,
            needs_atomic,
            num_groups,
            tile_count,
            tile_size,
            num_items,
            threads_per_block,
            grid_blocks,
            regs_per_thread,
            feat,
            a_scalar: false,
            b_scalar: false,
        })
    }

    /// Marks operands as one-column scalar broadcasts (see
    /// [`crate::exec::execute`]); scalar operands load 4 bytes per edge
    /// instead of a full feature tile.
    pub fn with_scalar_operands(mut self, a_scalar: bool, b_scalar: bool) -> Self {
        self.a_scalar = a_scalar;
        self.b_scalar = b_scalar;
        self
    }

    /// Arithmetic warp instructions per feature element in the inner loop
    /// (after fusion).
    pub fn arith_per_element(&self) -> f64 {
        let edge = if self.fused_edge { 0.0 } else { 1.0 };
        let gather = if self.fused_gather { 0.0 } else { 1.0 };
        edge + gather
    }

    /// Number of input tensors that must be loaded per edge.
    pub fn input_loads(&self) -> usize {
        usize::from(self.op.a != TensorType::Null) + usize::from(self.op.b != TensorType::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Strategy;

    fn plan(op: OpInfo, p: ParallelInfo) -> KernelPlan {
        KernelPlan::generate(op, p, 1000, 5000, 32).unwrap()
    }

    #[test]
    fn fusion_pass_detects_copies() {
        let p = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadVertex),
        );
        assert!(p.fused_edge, "copy_lhs edge op must fuse");
        assert!(!p.fused_gather, "sum gather is real work");
        assert_eq!(p.arith_per_element(), 1.0);

        let p2 = plan(
            OpInfo::message_creation_add(),
            ParallelInfo::basic(Strategy::ThreadEdge),
        );
        assert!(!p2.fused_edge);
        assert!(p2.fused_gather, "copy_rhs gather must fuse");
        assert_eq!(p2.arith_per_element(), 1.0);
    }

    #[test]
    fn atomic_analysis_matches_strategy() {
        let agg = OpInfo::aggregation_sum();
        assert!(!plan(agg, ParallelInfo::basic(Strategy::ThreadVertex)).needs_atomic);
        assert!(!plan(agg, ParallelInfo::basic(Strategy::WarpVertex)).needs_atomic);
        assert!(plan(agg, ParallelInfo::basic(Strategy::ThreadEdge)).needs_atomic);
        assert!(plan(agg, ParallelInfo::basic(Strategy::WarpEdge)).needs_atomic);
        // Message creation never needs atomics: each edge is written once.
        let msg = OpInfo::message_creation_add();
        assert!(!plan(msg, ParallelInfo::basic(Strategy::ThreadEdge)).needs_atomic);
        assert!(!plan(msg, ParallelInfo::basic(Strategy::WarpEdge)).needs_atomic);
    }

    #[test]
    fn grouping_reduces_items() {
        let base = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadEdge, 1, 1),
        );
        let grouped = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadEdge, 4, 1),
        );
        assert_eq!(base.num_items, 5000);
        assert_eq!(grouped.num_items, 1250);
        assert!(grouped.grid_blocks < base.grid_blocks);
    }

    #[test]
    fn tiling_multiplies_items_and_shrinks_tiles() {
        let tiled = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadVertex, 1, 4),
        );
        assert_eq!(tiled.tile_count, 4);
        assert_eq!(tiled.tile_size, 8);
        assert_eq!(tiled.num_items, 4000);
    }

    #[test]
    fn tiling_clamped_to_feature_dim() {
        let p = KernelPlan::generate(
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadVertex, 1, 64),
            100,
            500,
            8,
        )
        .unwrap();
        assert_eq!(p.tile_count, 8);
        assert_eq!(p.tile_size, 1);
    }

    #[test]
    fn warp_items_need_fewer_blocks() {
        let tv = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadVertex),
        );
        let wv = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::WarpVertex),
        );
        // Same items, but warp strategies pack 8 per block vs 256.
        assert_eq!(tv.num_items, wv.num_items);
        assert!(wv.grid_blocks > tv.grid_blocks);
    }

    #[test]
    fn register_pressure_grows_with_tile_size() {
        let big_tile = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadVertex, 1, 1),
        );
        let small_tile = plan(
            OpInfo::aggregation_sum(),
            ParallelInfo::new(Strategy::ThreadVertex, 1, 8),
        );
        assert!(big_tile.regs_per_thread > small_tile.regs_per_thread);
    }

    #[test]
    fn zero_feat_rejected() {
        assert!(matches!(
            KernelPlan::generate(
                OpInfo::aggregation_sum(),
                ParallelInfo::basic(Strategy::ThreadEdge),
                10,
                10,
                0
            ),
            Err(CoreError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn zero_knob_schedule_rejected_not_div_by_zero() {
        let bad = ParallelInfo {
            strategy: Strategy::ThreadEdge,
            grouping: 0,
            tiling: 1,
        };
        assert!(matches!(
            KernelPlan::generate(OpInfo::aggregation_sum(), bad, 10, 10, 4),
            Err(CoreError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn invalid_op_rejected() {
        let bad = OpInfo {
            edge_op: crate::abstraction::EdgeOp::Mul,
            gather_op: crate::abstraction::GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::DstV,
        };
        assert!(
            KernelPlan::generate(bad, ParallelInfo::basic(Strategy::ThreadEdge), 10, 10, 4)
                .is_err()
        );
    }
}
