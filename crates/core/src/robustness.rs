//! Degradation tracking for the hardened execution pipeline.
//!
//! Schedule selection has a fallback chain — trained predictor, then
//! budgeted grid search, then a safe default schedule — and each step may
//! silently degrade quality but must never abort a run that can still
//! produce a correct result. A [`RobustnessReport`] makes those downgrades
//! visible: every fallback taken is recorded as a [`Downgrade`], and
//! callers that care (benchmark harnesses, CI) can assert on
//! [`RobustnessReport::degraded`] while interactive users just read the
//! log.
//!
//! The report also carries the [`DeterminismClass`] of the executed
//! kernel, derived from its lowered IR: whether repeated runs are
//! bitwise-identical (sequential reductions, copies, CAS max/min) or
//! reduction-order-dependent (atomic float sum/mean). Callers that need
//! bitwise reproducibility can assert on
//! [`RobustnessReport::bitwise_deterministic`] and re-run with a
//! vertex-parallel schedule when it fails.

use crate::ir::DeterminismClass;

/// One recorded fallback event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Downgrade {
    /// The stage that failed (`"predictor"`, `"grid-search"`,
    /// `"tune-budget"`).
    pub stage: &'static str,
    /// What the pipeline used instead.
    pub fallback: &'static str,
    /// Why the stage could not be used as-is.
    pub reason: String,
}

impl std::fmt::Display for Downgrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}: {}", self.stage, self.fallback, self.reason)
    }
}

/// The downgrades accumulated while serving one request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Fallbacks taken, in the order they occurred.
    pub downgrades: Vec<Downgrade>,
    /// Trace id of the request this report belongs to (`0` until the
    /// runtime stamps it; joins the report to emitted spans).
    pub trace_id: u64,
    /// Determinism classification of the executed kernel, derived from
    /// its lowered IR (`None` until the runtime stamps it — e.g. on
    /// requests that fail before a plan exists).
    pub determinism: Option<DeterminismClass>,
}

impl RobustnessReport {
    /// A report with no recorded downgrades.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any fallback was taken.
    pub fn degraded(&self) -> bool {
        !self.downgrades.is_empty()
    }

    /// Whether repeated executions of the served request produce
    /// bitwise-identical output. `false` when the kernel's reduction is
    /// order-dependent *or* when no classification was stamped (absence
    /// of proof is not proof).
    pub fn bitwise_deterministic(&self) -> bool {
        self.determinism
            .is_some_and(|class| class.bitwise_deterministic())
    }

    /// Records one fallback event. Also bumps the process-wide fallback
    /// counter (`ugrapher_fallbacks_total{stage=...}`).
    pub fn record(
        &mut self,
        stage: &'static str,
        fallback: &'static str,
        reason: impl Into<String>,
    ) {
        ugrapher_obs::MetricsRegistry::global().inc_labeled(
            ugrapher_obs::metrics::FALLBACKS,
            "stage",
            stage,
        );
        self.downgrades.push(Downgrade {
            stage,
            fallback,
            reason: reason.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_downgrades_in_order() {
        let mut r = RobustnessReport::new();
        assert!(!r.degraded());
        r.record("predictor", "grid-search", "non-finite score");
        r.record("grid-search", "default schedule", "budget exhausted");
        assert!(r.degraded());
        assert_eq!(r.downgrades.len(), 2);
        assert_eq!(r.downgrades[0].stage, "predictor");
        assert!(r.downgrades[1].to_string().contains("default schedule"));
    }

    #[test]
    fn determinism_defaults_to_unstamped_and_unproven() {
        let mut r = RobustnessReport::new();
        assert_eq!(r.determinism, None);
        assert!(!r.bitwise_deterministic(), "unstamped is not a guarantee");
        r.determinism = Some(DeterminismClass::Sequential);
        assert!(r.bitwise_deterministic());
        r.determinism = Some(DeterminismClass::AtomicOrderInsensitive);
        assert!(r.bitwise_deterministic(), "CAS max/min commutes bitwise");
        r.determinism = Some(DeterminismClass::AtomicOrderDependent);
        assert!(!r.bitwise_deterministic());
    }
}
