//! Degradation tracking for the hardened execution pipeline.
//!
//! Schedule selection has a fallback chain — trained predictor, then
//! budgeted grid search, then a safe default schedule — and each step may
//! silently degrade quality but must never abort a run that can still
//! produce a correct result. A [`RobustnessReport`] makes those downgrades
//! visible: every fallback taken is recorded as a [`Downgrade`], and
//! callers that care (benchmark harnesses, CI) can assert on
//! [`RobustnessReport::degraded`] while interactive users just read the
//! log.

/// One recorded fallback event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Downgrade {
    /// The stage that failed (`"predictor"`, `"grid-search"`,
    /// `"tune-budget"`).
    pub stage: &'static str,
    /// What the pipeline used instead.
    pub fallback: &'static str,
    /// Why the stage could not be used as-is.
    pub reason: String,
}

impl std::fmt::Display for Downgrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}: {}", self.stage, self.fallback, self.reason)
    }
}

/// The downgrades accumulated while serving one request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Fallbacks taken, in the order they occurred.
    pub downgrades: Vec<Downgrade>,
    /// Trace id of the request this report belongs to (`0` until the
    /// runtime stamps it; joins the report to emitted spans).
    pub trace_id: u64,
}

impl RobustnessReport {
    /// A report with no recorded downgrades.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any fallback was taken.
    pub fn degraded(&self) -> bool {
        !self.downgrades.is_empty()
    }

    /// Records one fallback event. Also bumps the process-wide fallback
    /// counter (`ugrapher_fallbacks_total{stage=...}`).
    pub fn record(
        &mut self,
        stage: &'static str,
        fallback: &'static str,
        reason: impl Into<String>,
    ) {
        ugrapher_obs::MetricsRegistry::global().inc_labeled(
            ugrapher_obs::metrics::FALLBACKS,
            "stage",
            stage,
        );
        self.downgrades.push(Downgrade {
            stage,
            fallback,
            reason: reason.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_downgrades_in_order() {
        let mut r = RobustnessReport::new();
        assert!(!r.degraded());
        r.record("predictor", "grid-search", "non-finite score");
        r.record("grid-search", "default schedule", "budget exhausted");
        assert!(r.degraded());
        assert_eq!(r.downgrades.len(), 2);
        assert_eq!(r.downgrades[0].stage, "predictor");
        assert!(r.downgrades[1].to_string().contains("default schedule"));
    }
}
