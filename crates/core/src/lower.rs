//! Lowering: [`KernelPlan`] → [`KernelIr`].
//!
//! This is the single place where the two codegen passes recorded on the
//! plan (NULL-op fusion, atomic-requirement analysis) are turned into
//! explicit typed statements. The CUDA emitter renders the result; the
//! `ugrapher-analyze` verifier passes prove properties of the same result.

use crate::abstraction::{EdgeOp, GatherOp, TensorType};
use crate::analysis;
use crate::ir::{provenance_of, KernelIr, Load, Loop, OperandBuf, Stmt, Store, UpdateKind, Value};
use crate::plan::KernelPlan;
use crate::CoreError;

/// Lowers a kernel plan into the typed IR.
///
/// The plan is audited against the shared race analysis first
/// ([`analysis::check_plan`]), so a plan whose `needs_atomic` flag was
/// mutated out from under the analysis — or a copy gather marked atomic,
/// for which no atomic update form exists — comes back as a typed error
/// instead of malformed IR.
///
/// # Errors
///
/// Returns [`CoreError::Internal`] if the plan is internally inconsistent.
pub fn lower(plan: &KernelPlan) -> Result<KernelIr, CoreError> {
    analysis::check_plan(plan)?;
    let strategy = plan.parallel.strategy;

    let operand = |buf: OperandBuf, tensor: TensorType, scalar: bool| -> Value {
        match provenance_of(tensor, strategy) {
            Some(row) => Value::Load(Load {
                buf,
                tensor,
                row,
                feature_indexed: !scalar,
            }),
            None => Value::Zero,
        }
    };
    let a = operand(OperandBuf::A, plan.op.a, plan.a_scalar);
    let b = operand(OperandBuf::B, plan.op.b, plan.b_scalar);

    // Pass-1 fusion, replayed on the IR: a copy edge op stores the operand
    // value directly; anything else materialises the edge temporary
    // through the device function.
    let mut body = Vec::with_capacity(2);
    let value = if plan.fused_edge {
        if plan.op.edge_op == EdgeOp::CopyLhs {
            a
        } else {
            b
        }
    } else {
        body.push(Stmt::DefineEdgeTmp {
            op: plan.op.edge_op,
            a,
            b,
        });
        Value::EdgeTmp
    };

    body.push(Stmt::Store(Store {
        tensor: plan.op.c,
        row: provenance_of(plan.op.c, strategy).ok_or_else(|| CoreError::Internal {
            reason: "operator with Null output survived plan validation".to_owned(),
        })?,
        value,
        update: update_kind(plan)?,
    }));

    let feature = Loop::Feature {
        lane_offset: strategy.is_warp_per_item(),
        stride: if strategy.is_warp_per_item() { 32 } else { 1 },
    };
    let loops = if strategy.is_edge_parallel() {
        vec![Loop::EdgeGroup, feature]
    } else {
        vec![Loop::DstGroup, Loop::CsrSlots, feature]
    };

    Ok(KernelIr {
        op: plan.op,
        parallel: plan.parallel,
        name: plan.parallel.label().to_lowercase(),
        loops,
        body,
        feat: plan.feat,
        group: plan.parallel.grouping,
        num_groups: plan.num_groups,
        tiles: plan.tile_count,
        tile_len: plan.tile_size,
        grid_blocks: plan.grid_blocks,
        threads_per_block: plan.threads_per_block,
    })
}

/// Maps the plan's `(gather_op, needs_atomic)` pair onto the update form.
fn update_kind(plan: &KernelPlan) -> Result<UpdateKind, CoreError> {
    if !plan.needs_atomic {
        return Ok(match plan.op.gather_op {
            GatherOp::CopyLhs | GatherOp::CopyRhs => UpdateKind::Assign,
            GatherOp::Sum | GatherOp::Mean => UpdateKind::Accumulate,
            GatherOp::Max => UpdateKind::MaxInPlace,
            GatherOp::Min => UpdateKind::MinInPlace,
        });
    }
    match plan.op.gather_op {
        GatherOp::Sum | GatherOp::Mean => Ok(UpdateKind::AtomicAdd),
        GatherOp::Max => Ok(UpdateKind::AtomicCasMax),
        GatherOp::Min => Ok(UpdateKind::AtomicCasMin),
        // check_plan rejects this combination before we get here; keep a
        // typed arm for direct callers hand-building plans.
        GatherOp::CopyLhs | GatherOp::CopyRhs => Err(CoreError::Internal {
            reason: format!(
                "copy gather {:?} marked atomic under {}; pass 2 never marks copy gathers atomic",
                plan.op.gather_op,
                plan.parallel.label()
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OpInfo;
    use crate::ir::Provenance;
    use crate::schedule::{ParallelInfo, Strategy};

    fn plan(op: OpInfo, strategy: Strategy) -> KernelPlan {
        KernelPlan::generate(op, ParallelInfo::basic(strategy), 1000, 4000, 32).unwrap()
    }

    #[test]
    fn loop_nests_follow_strategy_family() {
        let ir = lower(&plan(OpInfo::aggregation_sum(), Strategy::ThreadVertex)).unwrap();
        assert_eq!(
            ir.loops,
            vec![
                Loop::DstGroup,
                Loop::CsrSlots,
                Loop::Feature {
                    lane_offset: false,
                    stride: 1
                }
            ]
        );
        let ir = lower(&plan(OpInfo::aggregation_sum(), Strategy::WarpEdge)).unwrap();
        assert_eq!(
            ir.loops,
            vec![
                Loop::EdgeGroup,
                Loop::Feature {
                    lane_offset: true,
                    stride: 32
                }
            ]
        );
    }

    #[test]
    fn fusion_is_replayed_in_the_statement_list() {
        // Copy edge op: single store statement reading A directly.
        let ir = lower(&plan(OpInfo::aggregation_sum(), Strategy::ThreadEdge)).unwrap();
        assert_eq!(ir.body.len(), 1);
        assert!(matches!(
            ir.store().value,
            Value::Load(Load {
                buf: OperandBuf::A,
                ..
            })
        ));
        // Real edge op: edge temporary materialised, store reads it.
        let ir = lower(&plan(
            OpInfo::weighted_aggregation_sum(),
            Strategy::ThreadEdge,
        ))
        .unwrap();
        assert_eq!(ir.body.len(), 2);
        assert!(matches!(ir.body[0], Stmt::DefineEdgeTmp { .. }));
        assert_eq!(ir.store().value, Value::EdgeTmp);
    }

    #[test]
    fn store_provenance_tracks_output_tensor_and_strategy() {
        let ir = lower(&plan(OpInfo::aggregation_sum(), Strategy::ThreadVertex)).unwrap();
        assert_eq!(ir.store().row, Provenance::DstPartition);
        let ir = lower(&plan(OpInfo::aggregation_sum(), Strategy::ThreadEdge)).unwrap();
        assert_eq!(ir.store().row, Provenance::DstIndirect);
        let ir = lower(&plan(OpInfo::message_creation_add(), Strategy::ThreadEdge)).unwrap();
        assert_eq!(ir.store().row, Provenance::EidIndirect);
        assert_eq!(ir.store().update, UpdateKind::Assign);
    }

    #[test]
    fn atomic_update_forms_mirror_pass_two() {
        assert_eq!(
            lower(&plan(OpInfo::aggregation_sum(), Strategy::ThreadEdge))
                .unwrap()
                .store()
                .update,
            UpdateKind::AtomicAdd
        );
        assert_eq!(
            lower(&plan(OpInfo::aggregation_max(), Strategy::WarpEdge))
                .unwrap()
                .store()
                .update,
            UpdateKind::AtomicCasMax
        );
        assert_eq!(
            lower(&plan(OpInfo::aggregation_max(), Strategy::WarpVertex))
                .unwrap()
                .store()
                .update,
            UpdateKind::MaxInPlace
        );
    }

    #[test]
    fn corrupted_plan_is_rejected_not_lowered() {
        let mut p = plan(OpInfo::message_creation_add(), Strategy::ThreadEdge);
        p.needs_atomic = true;
        assert!(matches!(lower(&p), Err(CoreError::Internal { .. })));
    }

    #[test]
    fn scalar_flags_clear_feature_indexing() {
        let p = plan(OpInfo::weighted_aggregation_sum(), Strategy::ThreadEdge)
            .with_scalar_operands(false, true);
        let ir = lower(&p).unwrap();
        let loads = ir.loads();
        let b = loads.iter().find(|l| l.buf == OperandBuf::B).unwrap();
        assert!(!b.feature_indexed);
        let a = loads.iter().find(|l| l.buf == OperandBuf::A).unwrap();
        assert!(a.feature_indexed);
    }
}
