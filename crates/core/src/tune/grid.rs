//! Exhaustive schedule search, optionally under a tuning budget.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ugrapher_graph::Graph;
use ugrapher_obs::{metrics, MetricsRegistry, SpanKind};

use crate::abstraction::OpInfo;
use crate::exec::{measure, MeasureOptions};
use crate::plan::KernelPlan;
use crate::schedule::ParallelInfo;
use crate::CoreError;

/// Limits on how much work a tuning pass may do before returning its
/// best-so-far (FeatGraph-style budgeted search; needed to keep tuning
/// usable on a serving path).
///
/// The default ([`TuneBudget::unlimited`]) imposes no limit, matching the
/// paper's offline exhaustive search. Either limit may be set
/// independently; a search that is cut short still returns the best
/// schedule among those it measured and flags the result via
/// [`TuneResult::budget_exhausted`]. Only a budget so tight that *zero*
/// candidates were measured is an error ([`CoreError::BudgetExceeded`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneBudget {
    /// Stop starting new measurements once this much wall-clock time has
    /// elapsed.
    pub wall_clock: Option<Duration>,
    /// Measure at most this many candidate schedules.
    pub max_candidates: Option<usize>,
}

impl TuneBudget {
    /// No limits: the search runs to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit the number of candidates measured.
    pub fn max_candidates(n: usize) -> Self {
        Self {
            wall_clock: None,
            max_candidates: Some(n),
        }
    }

    /// Limit the wall-clock time spent measuring.
    pub fn wall_clock(limit: Duration) -> Self {
        Self {
            wall_clock: Some(limit),
            max_candidates: None,
        }
    }

    /// Sets the wall-clock limit on an existing budget.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.wall_clock = Some(limit);
        self
    }

    /// `true` if this budget imposes any limit.
    pub fn is_limited(&self) -> bool {
        self.wall_clock.is_some() || self.max_candidates.is_some()
    }
}

/// Outcome of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The fastest schedule found.
    pub best: ParallelInfo,
    /// Its simulated time in milliseconds.
    pub best_time_ms: f64,
    /// Every `(schedule, time_ms)` pair measured, in search order.
    pub all: Vec<(ParallelInfo, f64)>,
    /// `true` if a [`TuneBudget`] stopped the search before every
    /// candidate was measured; `best` is then best-so-far, not the proven
    /// optimum.
    pub budget_exhausted: bool,
}

impl TuneResult {
    /// Time of a specific schedule, if it was part of the search.
    pub fn time_of(&self, schedule: &ParallelInfo) -> Option<f64> {
        self.all
            .iter()
            .find(|(p, _)| p == schedule)
            .map(|(_, t)| *t)
    }

    /// Number of candidates actually measured.
    pub fn evaluated(&self) -> usize {
        self.all.len()
    }
}

/// Searches the full [`ParallelInfo::space`] for the fastest schedule.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid or `feat == 0`.
pub fn grid_search(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    options: &MeasureOptions,
) -> Result<TuneResult, CoreError> {
    grid_search_space(graph, op, feat, options, &ParallelInfo::space())
}

/// Searches an explicit list of candidate schedules, in parallel across
/// worker threads.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`, or
/// `candidates` is empty.
pub fn grid_search_space(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
) -> Result<TuneResult, CoreError> {
    grid_search_shaped(graph, op, feat, (false, false), options, candidates)
}

/// [`grid_search_space`] with explicit operand shapes: `scalars` marks
/// operands that are one-column broadcasts, so candidate kernels are costed
/// exactly as they will run (a scalar edge weight moves 4 bytes per edge,
/// not a feature tile — enough to flip the optimum).
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`, or
/// `candidates` is empty.
pub fn grid_search_shaped(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    scalars: (bool, bool),
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
) -> Result<TuneResult, CoreError> {
    grid_search_budgeted(
        graph,
        op,
        feat,
        scalars,
        options,
        candidates,
        TuneBudget::unlimited(),
    )
}

/// [`grid_search_shaped`] under a [`TuneBudget`]: the search stops starting
/// new measurements once the budget is exhausted and returns the best
/// schedule among those measured so far.
///
/// With only `max_candidates` set, the measured prefix is deterministic
/// (the first N candidates in list order); a wall-clock limit makes the
/// cut-off point timing-dependent by nature.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`,
/// `candidates` is empty ([`CoreError::TuningFailed`]), the device config
/// is unusable ([`CoreError::DeviceInvalid`]), or the budget expired before
/// a single candidate was measured ([`CoreError::BudgetExceeded`]).
#[allow(clippy::too_many_arguments)]
pub fn grid_search_budgeted(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    scalars: (bool, bool),
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
    budget: TuneBudget,
) -> Result<TuneResult, CoreError> {
    if candidates.is_empty() {
        return Err(CoreError::TuningFailed {
            reason: "empty candidate schedule list".to_owned(),
        });
    }
    options.device.validate()?;
    // One legality gate up front (operator, first schedule, feature dim) so
    // worker threads cannot fail on it; individual candidates are still
    // validated per-plan.
    crate::analysis::check_context(op, &candidates[0], feat)?;

    let limit = budget
        .max_candidates
        .unwrap_or(candidates.len())
        .min(candidates.len());
    let deadline = budget.wall_clock.map(|d| Instant::now() + d);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(limit.max(1));
    // Workers claim candidate indices from a shared counter; a budget trip
    // sets the stop flag so in-flight measurements finish but no new ones
    // start.
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let measured: Mutex<Vec<(usize, ParallelInfo, f64)>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<CoreError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, ParallelInfo, f64)> = Vec::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= limit {
                        break;
                    }
                    let p = candidates[i];
                    match KernelPlan::generate(
                        *op,
                        p,
                        graph.num_vertices(),
                        graph.num_edges(),
                        feat,
                    ) {
                        Ok(plan) => {
                            let plan = plan.with_scalar_operands(scalars.0, scalars.1);
                            let mut span = options.recorder.span_traced(
                                "tune.candidate",
                                SpanKind::Tune,
                                options.trace_id,
                            );
                            let time_ms = measure(graph, &plan, options).time_ms;
                            if span.is_enabled() {
                                span.attr("schedule", p.label())
                                    .attr("candidate_index", i)
                                    .attr("measured_time_ms", time_ms);
                            }
                            drop(span);
                            MetricsRegistry::global().inc(metrics::TUNING_EVALUATIONS);
                            local.push((i, p, time_ms));
                        }
                        Err(e) => {
                            let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                            slot.get_or_insert(e);
                        }
                    }
                }
                measured
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });

    let mut rows = measured.into_inner().unwrap_or_else(|e| e.into_inner());
    rows.sort_by_key(|(i, _, _)| *i);
    let budget_exhausted =
        stop.load(Ordering::Relaxed) || limit < candidates.len() || rows.len() < limit;
    let all: Vec<(ParallelInfo, f64)> = rows.into_iter().map(|(_, p, t)| (p, t)).collect();

    if all.is_empty() {
        // Either every candidate was illegal, or the budget expired before
        // anything ran; report whichever actually happened.
        if let Some(e) = first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(CoreError::TuningFailed {
                reason: format!("no legal candidate schedule: {e}"),
            });
        }
        return Err(CoreError::BudgetExceeded {
            reason: format!(
                "budget {budget:?} expired before any of {} candidates was measured",
                candidates.len()
            ),
        });
    }

    let (best, best_time_ms) = all
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("all is non-empty");
    Ok(TuneResult {
        best,
        best_time_ms,
        all,
        budget_exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use ugrapher_graph::generate::uniform_random;
    use ugrapher_sim::DeviceConfig;

    fn options() -> MeasureOptions {
        MeasureOptions::auto(DeviceConfig::v100())
    }

    #[test]
    fn finds_minimum_of_searched_space() {
        let g = uniform_random(400, 2000, 1);
        let res = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            16,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert_eq!(res.all.len(), 4);
        assert!(!res.budget_exhausted);
        let min = res
            .all
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_time_ms, min);
        assert_eq!(res.time_of(&res.best), Some(res.best_time_ms));
    }

    #[test]
    fn full_space_search_covers_everything() {
        let g = uniform_random(200, 1000, 2);
        let res = grid_search(&g, &OpInfo::aggregation_sum(), 8, &options()).unwrap();
        assert_eq!(res.all.len(), ParallelInfo::space().len());
        assert!(!res.budget_exhausted);
    }

    #[test]
    fn empty_candidates_rejected() {
        let g = uniform_random(50, 200, 3);
        let err =
            grid_search_space(&g, &OpInfo::aggregation_sum(), 8, &options(), &[]).unwrap_err();
        assert!(matches!(err, CoreError::TuningFailed { .. }));
    }

    #[test]
    fn deterministic_results() {
        let g = uniform_random(300, 1500, 4);
        let a = grid_search_space(
            &g,
            &OpInfo::aggregation_max(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        let b = grid_search_space(
            &g,
            &OpInfo::aggregation_max(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn candidate_budget_measures_exact_prefix() {
        let g = uniform_random(200, 1000, 5);
        let space = ParallelInfo::space();
        let res = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &space,
            TuneBudget::max_candidates(10),
        )
        .unwrap();
        assert_eq!(res.evaluated(), 10);
        assert!(res.budget_exhausted);
        // The measured prefix is deterministic: the first 10 candidates.
        let measured: Vec<ParallelInfo> = res.all.iter().map(|(p, _)| *p).collect();
        assert_eq!(measured, space[..10].to_vec());
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let g = uniform_random(150, 700, 6);
        let unbudgeted = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        let budgeted = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &ParallelInfo::basics(),
            TuneBudget::max_candidates(1000).with_wall_clock(Duration::from_secs(600)),
        )
        .unwrap();
        assert_eq!(budgeted.best, unbudgeted.best);
        assert_eq!(budgeted.all, unbudgeted.all);
        assert!(!budgeted.budget_exhausted);
    }

    #[test]
    fn zero_candidate_budget_is_budget_exceeded() {
        let g = uniform_random(100, 500, 7);
        let err = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &ParallelInfo::basics(),
            TuneBudget::max_candidates(0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }));
    }

    #[test]
    fn invalid_device_is_typed_error() {
        let g = uniform_random(100, 500, 8);
        let mut opts = options();
        opts.device.num_sms = 0;
        let err = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            &opts,
            &ParallelInfo::basics(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::DeviceInvalid { .. }));
    }
}
