//! Exhaustive schedule search, optionally under a tuning budget.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ugrapher_graph::Graph;
use ugrapher_obs::{metrics, MetricsRegistry, SpanKind};

use crate::abstraction::OpInfo;
use crate::exec::{measure, MeasureOptions};
use crate::plan::KernelPlan;
use crate::schedule::ParallelInfo;
use crate::CoreError;

/// Limits on how much work a tuning pass may do before returning its
/// best-so-far (FeatGraph-style budgeted search; needed to keep tuning
/// usable on a serving path).
///
/// The default ([`TuneBudget::unlimited`]) imposes no limit, matching the
/// paper's offline exhaustive search. Either limit may be set
/// independently; a search that is cut short still returns the best
/// schedule among those it measured and flags the result via
/// [`TuneResult::budget_exhausted`]. Only a budget so tight that *zero*
/// candidates were measured is an error ([`CoreError::BudgetExceeded`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneBudget {
    /// Stop starting new measurements once this much wall-clock time has
    /// elapsed.
    pub wall_clock: Option<Duration>,
    /// Measure at most this many candidate schedules.
    pub max_candidates: Option<usize>,
}

impl TuneBudget {
    /// No limits: the search runs to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit the number of candidates measured.
    pub fn max_candidates(n: usize) -> Self {
        Self {
            wall_clock: None,
            max_candidates: Some(n),
        }
    }

    /// Limit the wall-clock time spent measuring.
    pub fn wall_clock(limit: Duration) -> Self {
        Self {
            wall_clock: Some(limit),
            max_candidates: None,
        }
    }

    /// Sets the wall-clock limit on an existing budget.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.wall_clock = Some(limit);
        self
    }

    /// `true` if this budget imposes any limit.
    pub fn is_limited(&self) -> bool {
        self.wall_clock.is_some() || self.max_candidates.is_some()
    }
}

/// Outcome of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The fastest schedule found.
    pub best: ParallelInfo,
    /// Its simulated time in milliseconds.
    pub best_time_ms: f64,
    /// Every `(schedule, time_ms)` pair measured, in search order.
    pub all: Vec<(ParallelInfo, f64)>,
    /// `true` if a [`TuneBudget`] stopped the search before every
    /// candidate was measured; `best` is then best-so-far, not the proven
    /// optimum. Candidates whose plan generation failed do **not** count
    /// as exhaustion — they are tallied in [`TuneResult::illegal`] — so
    /// this flag is `true` exactly when the wall-clock deadline tripped or
    /// `max_candidates` cut the candidate list short.
    pub budget_exhausted: bool,
    /// Candidates skipped because their kernel plan failed to generate
    /// (illegal schedule for this operator/graph). They are excluded from
    /// [`TuneResult::all`] and are *not* budget exhaustion.
    pub illegal: usize,
}

impl TuneResult {
    /// Time of a specific schedule, if it was part of the search.
    pub fn time_of(&self, schedule: &ParallelInfo) -> Option<f64> {
        self.all
            .iter()
            .find(|(p, _)| p == schedule)
            .map(|(_, t)| *t)
    }

    /// Number of candidates actually measured.
    pub fn evaluated(&self) -> usize {
        self.all.len()
    }
}

/// Searches the full [`ParallelInfo::space`] for the fastest schedule.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid or `feat == 0`.
pub fn grid_search(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    options: &MeasureOptions,
) -> Result<TuneResult, CoreError> {
    grid_search_space(graph, op, feat, options, &ParallelInfo::space())
}

/// Searches an explicit list of candidate schedules, in parallel across
/// worker threads.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`, or
/// `candidates` is empty.
pub fn grid_search_space(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
) -> Result<TuneResult, CoreError> {
    grid_search_shaped(graph, op, feat, (false, false), options, candidates)
}

/// [`grid_search_space`] with explicit operand shapes: `scalars` marks
/// operands that are one-column broadcasts, so candidate kernels are costed
/// exactly as they will run (a scalar edge weight moves 4 bytes per edge,
/// not a feature tile — enough to flip the optimum).
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`, or
/// `candidates` is empty.
pub fn grid_search_shaped(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    scalars: (bool, bool),
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
) -> Result<TuneResult, CoreError> {
    grid_search_budgeted(
        graph,
        op,
        feat,
        scalars,
        options,
        candidates,
        TuneBudget::unlimited(),
    )
}

/// [`grid_search_shaped`] under a [`TuneBudget`]: the search stops starting
/// new measurements once the budget is exhausted and returns the best
/// schedule among those measured so far.
///
/// With only `max_candidates` set, the measured prefix is deterministic
/// (the first N candidates in list order); a wall-clock limit makes the
/// cut-off point timing-dependent by nature.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`,
/// `candidates` is empty ([`CoreError::TuningFailed`]), the device config
/// is unusable ([`CoreError::DeviceInvalid`]), or the budget expired before
/// a single candidate was measured ([`CoreError::BudgetExceeded`]).
#[allow(clippy::too_many_arguments)]
pub fn grid_search_budgeted(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    scalars: (bool, bool),
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
    budget: TuneBudget,
) -> Result<TuneResult, CoreError> {
    if candidates.is_empty() {
        return Err(CoreError::TuningFailed {
            reason: "empty candidate schedule list".to_owned(),
        });
    }
    options.device.validate()?;
    // Operator and feature-dimension legality gate up front, so caller
    // errors surface as typed `Err` before any work starts. Candidate
    // schedules are deliberately *not* pre-validated here: each one is
    // checked during per-plan generation, so a broken candidate anywhere
    // in the list (first included) is tallied in `illegal` instead of
    // failing the whole search.
    op.validate()?;
    if feat == 0 {
        return Err(CoreError::FeatureMismatch {
            expected: 1,
            found: 0,
        });
    }

    let limit = budget
        .max_candidates
        .unwrap_or(candidates.len())
        .min(candidates.len());
    let deadline = budget.wall_clock.map(|d| Instant::now() + d);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(limit.max(1));
    // Workers claim candidate indices from a shared counter; a budget trip
    // sets the stop flag so in-flight measurements finish but no new ones
    // start.
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Set only when the wall-clock deadline fires; distinguishes a genuine
    // budget trip from candidates lost to plan-generation errors.
    let deadline_tripped = AtomicBool::new(false);
    let illegal = AtomicUsize::new(0);
    let measured: Mutex<Vec<(usize, ParallelInfo, f64)>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<CoreError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, ParallelInfo, f64)> = Vec::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            deadline_tripped.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= limit {
                        break;
                    }
                    let p = candidates[i];
                    match KernelPlan::generate(
                        *op,
                        p,
                        graph.num_vertices(),
                        graph.num_edges(),
                        feat,
                    ) {
                        Ok(plan) => {
                            let plan = plan.with_scalar_operands(scalars.0, scalars.1);
                            let mut span = options.recorder.span_traced(
                                "tune.candidate",
                                SpanKind::Tune,
                                options.trace_id,
                            );
                            let time_ms = measure(graph, &plan, options).time_ms;
                            if span.is_enabled() {
                                span.attr("schedule", p.label())
                                    .attr("candidate_index", i)
                                    .attr("measured_time_ms", time_ms);
                            }
                            drop(span);
                            MetricsRegistry::global().inc(metrics::TUNING_EVALUATIONS);
                            local.push((i, p, time_ms));
                        }
                        Err(e) => {
                            illegal.fetch_add(1, Ordering::Relaxed);
                            let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                            slot.get_or_insert(e);
                        }
                    }
                }
                measured
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });

    let mut rows = measured.into_inner().unwrap_or_else(|e| e.into_inner());
    rows.sort_by_key(|(i, _, _)| *i);
    // Exhaustion means the *budget* cut the search short: the wall-clock
    // deadline fired, or `max_candidates` excluded part of the candidate
    // list. Candidates lost to plan-generation errors are counted in
    // `illegal` instead (reporting them as exhaustion would make an
    // unbudgeted search with one broken candidate look budget-limited).
    let deadline_tripped = deadline_tripped.load(Ordering::Relaxed);
    let illegal = illegal.load(Ordering::Relaxed);
    let budget_exhausted = deadline_tripped || limit < candidates.len();
    let all: Vec<(ParallelInfo, f64)> = rows.into_iter().map(|(_, p, t)| (p, t)).collect();

    if all.is_empty() {
        let pending = first_error.into_inner().unwrap_or_else(|e| e.into_inner());
        return Err(empty_search_error(
            deadline_tripped,
            pending,
            &budget,
            candidates.len(),
        ));
    }

    let (best, best_time_ms) = all
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("all is non-empty");
    Ok(TuneResult {
        best,
        best_time_ms,
        all,
        budget_exhausted,
        illegal,
    })
}

/// The error for a search that measured nothing, picking the verdict that
/// actually happened: a wall-clock deadline trip is [`CoreError::BudgetExceeded`]
/// even when an earlier candidate was illegal (the pending error is cited,
/// not promoted — the deadline, not the broken candidate, ended the
/// search); with no deadline trip, a pending plan-generation error means
/// every *attempted* candidate was illegal ([`CoreError::TuningFailed`]);
/// otherwise the budget admitted zero candidates ([`CoreError::BudgetExceeded`]).
fn empty_search_error(
    deadline_tripped: bool,
    pending: Option<CoreError>,
    budget: &TuneBudget,
    num_candidates: usize,
) -> CoreError {
    if deadline_tripped {
        let note = match pending {
            Some(e) => format!(" (an earlier candidate was also illegal: {e})"),
            None => String::new(),
        };
        return CoreError::BudgetExceeded {
            reason: format!(
                "wall-clock budget {budget:?} expired before any of {num_candidates} candidates was measured{note}"
            ),
        };
    }
    if let Some(e) = pending {
        return CoreError::TuningFailed {
            reason: format!("no legal candidate schedule: {e}"),
        };
    }
    CoreError::BudgetExceeded {
        reason: format!(
            "budget {budget:?} expired before any of {num_candidates} candidates was measured"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::schedule::Strategy;
    use ugrapher_graph::generate::uniform_random;
    use ugrapher_sim::DeviceConfig;

    fn options() -> MeasureOptions {
        MeasureOptions::auto(DeviceConfig::v100())
    }

    #[test]
    fn finds_minimum_of_searched_space() {
        let g = uniform_random(400, 2000, 1);
        let res = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            16,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert_eq!(res.all.len(), 4);
        assert!(!res.budget_exhausted);
        let min = res
            .all
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_time_ms, min);
        assert_eq!(res.time_of(&res.best), Some(res.best_time_ms));
    }

    #[test]
    fn full_space_search_covers_everything() {
        let g = uniform_random(200, 1000, 2);
        let res = grid_search(&g, &OpInfo::aggregation_sum(), 8, &options()).unwrap();
        assert_eq!(res.all.len(), ParallelInfo::space().len());
        assert!(!res.budget_exhausted);
    }

    #[test]
    fn empty_candidates_rejected() {
        let g = uniform_random(50, 200, 3);
        let err =
            grid_search_space(&g, &OpInfo::aggregation_sum(), 8, &options(), &[]).unwrap_err();
        assert!(matches!(err, CoreError::TuningFailed { .. }));
    }

    #[test]
    fn deterministic_results() {
        let g = uniform_random(300, 1500, 4);
        let a = grid_search_space(
            &g,
            &OpInfo::aggregation_max(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        let b = grid_search_space(
            &g,
            &OpInfo::aggregation_max(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn candidate_budget_measures_exact_prefix() {
        let g = uniform_random(200, 1000, 5);
        let space = ParallelInfo::space();
        let res = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &space,
            TuneBudget::max_candidates(10),
        )
        .unwrap();
        assert_eq!(res.evaluated(), 10);
        assert!(res.budget_exhausted);
        // The measured prefix is deterministic: the first 10 candidates.
        let measured: Vec<ParallelInfo> = res.all.iter().map(|(p, _)| *p).collect();
        assert_eq!(measured, space[..10].to_vec());
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let g = uniform_random(150, 700, 6);
        let unbudgeted = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        let budgeted = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &ParallelInfo::basics(),
            TuneBudget::max_candidates(1000).with_wall_clock(Duration::from_secs(600)),
        )
        .unwrap();
        assert_eq!(budgeted.best, unbudgeted.best);
        assert_eq!(budgeted.all, unbudgeted.all);
        assert!(!budgeted.budget_exhausted);
    }

    #[test]
    fn zero_candidate_budget_is_budget_exceeded() {
        let g = uniform_random(100, 500, 7);
        let err = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &ParallelInfo::basics(),
            TuneBudget::max_candidates(0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }));
    }

    #[test]
    fn illegal_candidate_is_not_budget_exhaustion() {
        // Regression: an unbudgeted search containing one candidate whose
        // plan generation errors used to set `budget_exhausted` (because
        // fewer rows than `limit` were measured). The loss must be tallied
        // as `illegal`, not misreported as a budget trip.
        let g = uniform_random(120, 600, 21);
        let bad = ParallelInfo {
            strategy: Strategy::ThreadEdge,
            grouping: 0, // fails KernelPlan::generate with InvalidSchedule
            tiling: 1,
        };
        let candidates = [
            ParallelInfo::basic(Strategy::ThreadVertex),
            bad,
            ParallelInfo::basic(Strategy::WarpVertex),
        ];
        let res = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &candidates,
            TuneBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(res.evaluated(), 2, "both legal candidates measured");
        assert_eq!(res.illegal, 1, "the broken candidate is tallied");
        assert!(
            !res.budget_exhausted,
            "no budget was set, so nothing can be exhausted"
        );
        // A genuine candidate budget on the same list still reports
        // exhaustion (and the illegal candidate independently).
        let res = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &candidates,
            TuneBudget::max_candidates(2),
        )
        .unwrap();
        assert!(res.budget_exhausted);
        assert_eq!(res.illegal, 1);
        assert_eq!(res.evaluated(), 1);
    }

    #[test]
    fn all_candidates_illegal_is_tuning_failed() {
        let g = uniform_random(60, 240, 22);
        let bad = ParallelInfo {
            strategy: Strategy::ThreadVertex,
            grouping: 0,
            tiling: 1,
        };
        let err = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &[bad, bad],
            TuneBudget::unlimited(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::TuningFailed { .. }), "{err:?}");
    }

    #[test]
    fn zero_deadline_is_budget_exceeded_not_tuning_failed() {
        // A deadline that fires immediately stops workers before any
        // candidate is claimed: the verdict is BudgetExceeded even though
        // the list contains an illegal candidate.
        let g = uniform_random(60, 240, 23);
        let bad = ParallelInfo {
            strategy: Strategy::ThreadVertex,
            grouping: 0,
            tiling: 1,
        };
        let err = grid_search_budgeted(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            (false, false),
            &options(),
            &[bad, ParallelInfo::basic(Strategy::ThreadVertex)],
            TuneBudget::wall_clock(Duration::ZERO),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }), "{err:?}");
    }

    #[test]
    fn empty_search_verdict_prefers_deadline_over_pending_error() {
        // The deadline-with-pending-illegal-candidate interleaving cannot
        // be forced deterministically through the worker pool, so the
        // verdict function is exercised directly: a deadline trip with an
        // earlier illegal candidate is BudgetExceeded (citing the pending
        // error), not "no legal candidate".
        let pending = CoreError::InvalidSchedule {
            reason: "TV: grouping must be >= 1".to_owned(),
        };
        let err = empty_search_error(
            true,
            Some(pending),
            &TuneBudget::wall_clock(Duration::from_millis(1)),
            10,
        );
        match err {
            CoreError::BudgetExceeded { reason } => {
                assert!(reason.contains("grouping must be >= 1"), "{reason}");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // Without a deadline trip, the pending error wins.
        assert!(matches!(
            empty_search_error(
                false,
                Some(CoreError::InvalidSchedule {
                    reason: "x".to_owned()
                }),
                &TuneBudget::unlimited(),
                10,
            ),
            CoreError::TuningFailed { .. }
        ));
        // Neither: the budget admitted zero candidates.
        assert!(matches!(
            empty_search_error(false, None, &TuneBudget::max_candidates(0), 10),
            CoreError::BudgetExceeded { .. }
        ));
    }

    #[test]
    fn invalid_device_is_typed_error() {
        let g = uniform_random(100, 500, 8);
        let mut opts = options();
        opts.device.num_sms = 0;
        let err = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            8,
            &opts,
            &ParallelInfo::basics(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::DeviceInvalid { .. }));
    }
}
