//! Exhaustive schedule search.

use ugrapher_graph::Graph;

use crate::abstraction::OpInfo;
use crate::exec::{measure, MeasureOptions};
use crate::plan::KernelPlan;
use crate::schedule::ParallelInfo;
use crate::CoreError;

/// Outcome of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The fastest schedule found.
    pub best: ParallelInfo,
    /// Its simulated time in milliseconds.
    pub best_time_ms: f64,
    /// Every `(schedule, time_ms)` pair measured, in search order.
    pub all: Vec<(ParallelInfo, f64)>,
}

impl TuneResult {
    /// Time of a specific schedule, if it was part of the search.
    pub fn time_of(&self, schedule: &ParallelInfo) -> Option<f64> {
        self.all
            .iter()
            .find(|(p, _)| p == schedule)
            .map(|(_, t)| *t)
    }
}

/// Searches the full [`ParallelInfo::space`] for the fastest schedule.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid or `feat == 0`.
pub fn grid_search(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    options: &MeasureOptions,
) -> Result<TuneResult, CoreError> {
    grid_search_space(graph, op, feat, options, &ParallelInfo::space())
}

/// Searches an explicit list of candidate schedules, in parallel across
/// worker threads.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`, or
/// `candidates` is empty.
pub fn grid_search_space(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
) -> Result<TuneResult, CoreError> {
    grid_search_shaped(graph, op, feat, (false, false), options, candidates)
}

/// [`grid_search_space`] with explicit operand shapes: `scalars` marks
/// operands that are one-column broadcasts, so candidate kernels are costed
/// exactly as they will run (a scalar edge weight moves 4 bytes per edge,
/// not a feature tile — enough to flip the optimum).
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid, `feat == 0`, or
/// `candidates` is empty.
pub fn grid_search_shaped(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    scalars: (bool, bool),
    options: &MeasureOptions,
    candidates: &[ParallelInfo],
) -> Result<TuneResult, CoreError> {
    if candidates.is_empty() {
        return Err(CoreError::InvalidOperator {
            op: *op,
            reason: "empty candidate schedule list".to_owned(),
        });
    }
    // Validate once up front so worker threads cannot fail.
    KernelPlan::generate(
        *op,
        candidates[0],
        graph.num_vertices(),
        graph.num_edges(),
        feat,
    )?;

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(candidates.len());
    let chunk = candidates.len().div_ceil(workers);
    let mut all: Vec<(ParallelInfo, f64)> = Vec::with_capacity(candidates.len());

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .map(|&p| {
                            let plan = KernelPlan::generate(
                                *op,
                                p,
                                graph.num_vertices(),
                                graph.num_edges(),
                                feat,
                            )
                            .expect("validated above")
                            .with_scalar_operands(scalars.0, scalars.1);
                            (p, measure(graph, &plan, options).time_ms)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("tuner worker panicked"));
        }
    })
    .expect("tuner scope panicked");

    let (best, best_time_ms) = all
        .iter()
        .cloned()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
        .expect("candidates is non-empty");
    Ok(TuneResult {
        best,
        best_time_ms,
        all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Fidelity;
    use ugrapher_graph::generate::uniform_random;
    use ugrapher_sim::DeviceConfig;

    fn options() -> MeasureOptions {
        MeasureOptions {
            device: DeviceConfig::v100(),
            fidelity: Fidelity::Auto,
        }
    }

    #[test]
    fn finds_minimum_of_searched_space() {
        let g = uniform_random(400, 2000, 1);
        let res = grid_search_space(
            &g,
            &OpInfo::aggregation_sum(),
            16,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert_eq!(res.all.len(), 4);
        let min = res
            .all
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_time_ms, min);
        assert_eq!(res.time_of(&res.best), Some(res.best_time_ms));
    }

    #[test]
    fn full_space_search_covers_everything() {
        let g = uniform_random(200, 1000, 2);
        let res = grid_search(&g, &OpInfo::aggregation_sum(), 8, &options()).unwrap();
        assert_eq!(res.all.len(), ParallelInfo::space().len());
    }

    #[test]
    fn empty_candidates_rejected() {
        let g = uniform_random(50, 200, 3);
        assert!(grid_search_space(&g, &OpInfo::aggregation_sum(), 8, &options(), &[]).is_err());
    }

    #[test]
    fn deterministic_results() {
        let g = uniform_random(300, 1500, 4);
        let a = grid_search_space(
            &g,
            &OpInfo::aggregation_max(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        let b = grid_search_space(
            &g,
            &OpInfo::aggregation_max(),
            8,
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
