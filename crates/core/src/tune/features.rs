//! Feature extraction for the schedule predictor (paper Table 7).
//!
//! The paper's features are the graph info (`#Vertex`, `#Edge`, `std_nnz`)
//! and the operator info (`Edge_op`, `Gather_op`, `A/B/C Type`). We add the
//! feature (embedding) dimension — it determines feature-tiling behaviour
//! (paper Fig. 7 shows the optimum flips between feature sizes 8 and 16) and
//! is available to the runtime for free — and the candidate schedule's own
//! parameters, since the model scores (context, schedule) pairs.

//!
//! On top of the paper's features, the vector carries the IR-derived
//! memory-access-pattern classification of each operand under the
//! candidate strategy ([`crate::ir::operand_patterns_for`]): whether the
//! `A`/`B` loads and the `C` store are coalesced, strided, broadcast, or
//! gathered. These are static features — they fall out of the operand
//! tensor types and the strategy's work-item shape alone — and they encode
//! exactly the locality difference that makes e.g. warp-per-item schedules
//! win on wide feature dimensions.

use ugrapher_graph::DegreeStats;

use crate::abstraction::{EdgeOp, GatherOp, OpInfo, TensorType};
use crate::ir::operand_patterns_for;
use crate::schedule::{ParallelInfo, Strategy};

/// Number of entries in a [`feature_vector`].
pub const NUM_FEATURES: usize = 19;

fn edge_op_id(op: EdgeOp) -> f64 {
    EdgeOp::ALL
        .iter()
        .position(|&e| e == op)
        .expect("EdgeOp::ALL covers every variant") as f64
}

fn gather_op_id(op: GatherOp) -> f64 {
    GatherOp::ALL
        .iter()
        .position(|&g| g == op)
        .expect("GatherOp::ALL covers every variant") as f64
}

fn tensor_type_id(t: TensorType) -> f64 {
    TensorType::ALL
        .iter()
        .position(|&x| x == t)
        .expect("TensorType::ALL covers every variant") as f64
}

/// Builds the model input for one (graph, operator, feature-dim, schedule)
/// combination.
pub fn feature_vector(
    stats: &DegreeStats,
    op: &OpInfo,
    feat_dim: usize,
    schedule: &ParallelInfo,
) -> Vec<f64> {
    feature_vector_masked(stats, op, feat_dim, schedule, true)
}

/// [`feature_vector`] with the operator-info features optionally zeroed —
/// the Table 7 ablation (graph-only features vs graph + operator
/// features).
pub fn feature_vector_masked(
    stats: &DegreeStats,
    op: &OpInfo,
    feat_dim: usize,
    schedule: &ParallelInfo,
    include_op: bool,
) -> Vec<f64> {
    let strategy_onehot = |s: Strategy| {
        if schedule.strategy == s {
            1.0
        } else {
            0.0
        }
    };
    // Memory-access-pattern ids (0 = operand absent; see
    // `AccessPattern::feature_id`). Derived from operator info, so the
    // Table 7 graph-only ablation zeroes them with the rest.
    let access = if include_op {
        operand_patterns_for(op, schedule.strategy).feature_ids()
    } else {
        [0.0; 3]
    };
    let v = vec![
        // Graph info (Table 7).
        (stats.num_vertices as f64 + 1.0).ln(),
        (stats.num_edges as f64 + 1.0).ln(),
        (stats.std_in_degree + 1.0).ln(),
        (stats.mean_in_degree + 1.0).ln(),
        // Operator info (Table 7); zeroed in the graph-only ablation.
        if include_op {
            edge_op_id(op.edge_op)
        } else {
            0.0
        },
        if include_op {
            gather_op_id(op.gather_op)
        } else {
            0.0
        },
        if include_op {
            tensor_type_id(op.a)
        } else {
            0.0
        },
        if include_op {
            tensor_type_id(op.b)
        } else {
            0.0
        },
        if include_op {
            tensor_type_id(op.c)
        } else {
            0.0
        },
        // Feature dimension (see module docs).
        (feat_dim as f64).ln(),
        // Candidate schedule.
        strategy_onehot(Strategy::ThreadVertex),
        strategy_onehot(Strategy::ThreadEdge),
        strategy_onehot(Strategy::WarpVertex),
        strategy_onehot(Strategy::WarpEdge),
        (schedule.grouping as f64).log2(),
        (schedule.tiling as f64).log2(),
        // IR-derived access-pattern classification (see module docs).
        access[0],
        access[1],
        access[2],
    ];
    debug_assert_eq!(v.len(), NUM_FEATURES);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_graph::generate::uniform_random;

    fn stats() -> DegreeStats {
        uniform_random(100, 500, 1).degree_stats()
    }

    #[test]
    fn vector_has_declared_length() {
        let v = feature_vector(
            &stats(),
            &OpInfo::aggregation_sum(),
            32,
            &ParallelInfo::basic(Strategy::ThreadEdge),
        );
        assert_eq!(v.len(), NUM_FEATURES);
    }

    #[test]
    fn vectors_distinguish_schedules() {
        let s = stats();
        let op = OpInfo::aggregation_sum();
        let a = feature_vector(&s, &op, 32, &ParallelInfo::new(Strategy::ThreadEdge, 4, 2));
        let b = feature_vector(&s, &op, 32, &ParallelInfo::new(Strategy::WarpEdge, 4, 2));
        let c = feature_vector(&s, &op, 32, &ParallelInfo::new(Strategy::ThreadEdge, 8, 2));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vectors_distinguish_operators() {
        let s = stats();
        let p = ParallelInfo::basic(Strategy::ThreadEdge);
        let a = feature_vector(&s, &OpInfo::aggregation_sum(), 32, &p);
        let b = feature_vector(&s, &OpInfo::weighted_aggregation_sum(), 32, &p);
        assert_ne!(a, b);
    }

    #[test]
    fn op_mask_zeroes_operator_features() {
        let s = stats();
        let p = ParallelInfo::basic(Strategy::ThreadEdge);
        let with = feature_vector_masked(&s, &OpInfo::weighted_aggregation_sum(), 32, &p, true);
        let without = feature_vector_masked(&s, &OpInfo::weighted_aggregation_sum(), 32, &p, false);
        assert_ne!(with, without);
        assert_eq!(&without[4..9], &[0.0; 5]);
        // Access-pattern ids derive from operator info, so the ablation
        // zeroes them too.
        assert_eq!(&without[16..], &[0.0; 3]);
        // Graph and schedule features unchanged.
        assert_eq!(&with[..4], &without[..4]);
        assert_eq!(&with[9..16], &without[9..16]);
        // Masked vectors can no longer distinguish operators.
        let other = feature_vector_masked(&s, &OpInfo::aggregation_max(), 32, &p, false);
        assert_eq!(without, other);
    }

    #[test]
    fn access_pattern_features_track_the_lowered_ir() {
        use crate::ir::AccessPattern;
        use crate::lower::lower;
        use crate::plan::KernelPlan;
        let s = stats();
        let op = OpInfo::aggregation_sum();
        for strategy in Strategy::ALL {
            let schedule = ParallelInfo::basic(strategy);
            let v = feature_vector(&s, &op, 32, &schedule);
            let plan = KernelPlan::generate(op, schedule, 100, 500, 32).unwrap();
            let ids = lower(&plan).unwrap().operand_patterns().feature_ids();
            assert_eq!(&v[16..], &ids, "{strategy:?}");
        }
        // The ids encode a real strategy distinction: a gathered A operand
        // under thread-per-edge vs a coalesced one under warp-per-edge.
        let te = feature_vector(&s, &op, 32, &ParallelInfo::basic(Strategy::ThreadEdge));
        let we = feature_vector(&s, &op, 32, &ParallelInfo::basic(Strategy::WarpEdge));
        assert_eq!(te[16], AccessPattern::Gather.feature_id());
        assert_eq!(we[16], AccessPattern::Coalesced.feature_id());
        // B is Null for plain aggregation: id 0 is reserved for "absent".
        assert_eq!(te[17], 0.0);
    }

    #[test]
    fn vectors_are_finite() {
        let v = feature_vector(
            &stats(),
            &OpInfo::message_creation_add(),
            1,
            &ParallelInfo::new(Strategy::WarpVertex, 64, 64),
        );
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
