//! Schedule tuning (paper §5.4).
//!
//! Two ways to pick a schedule for an `(operator, graph)` pair:
//!
//! * [`grid_search`] — measure every point of the
//!   [`crate::schedule::ParallelInfo::space`] on the simulator and keep the
//!   fastest (the paper's ground truth, "days of time" on real hardware,
//!   affordable here thanks to sampled tracing);
//! * [`Predictor`] — a GBDT trained on randomly generated graphs that maps
//!   (graph features, operator info, schedule) to predicted log-time and
//!   picks the argmin (the paper's LightGBM model, Table 7; validated
//!   against grid search in Fig. 12).

pub mod features;
mod grid;
mod predictor;
mod random;

pub use grid::{
    grid_search, grid_search_budgeted, grid_search_shaped, grid_search_space, TuneBudget,
    TuneResult,
};
pub use predictor::{Predictor, PredictorConfig};
pub use random::random_search;
