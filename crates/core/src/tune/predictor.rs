//! The learned schedule predictor (paper §5.4).

use ugrapher_util::json::{FromJson, JsonError, ToJson, Value};
use ugrapher_util::rng::StdRng;

use ugrapher_gbdt::{Gbdt, GbdtParams, TrainSet};
use ugrapher_graph::generate::{DegreeModel, GraphSpec};
use ugrapher_graph::{DegreeStats, Graph};
use ugrapher_sim::DeviceConfig;

use ugrapher_obs::{Recorder, SpanKind};

use crate::abstraction::OpInfo;
use crate::exec::{measure, MeasureOptions};
use crate::plan::KernelPlan;
use crate::schedule::ParallelInfo;
use crate::CoreError;

/// Configuration of predictor training.
///
/// The paper synthesises its training set from 128 random graphs of the
/// network-repository collection and trains LightGBM on the Table 7
/// features; [`PredictorConfig::paper`] mirrors that, and
/// [`PredictorConfig::quick`] is a down-scaled variant for tests.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Device the predictor is trained for.
    pub device: DeviceConfig,
    /// Number of random training graphs (paper: 128).
    pub num_graphs: usize,
    /// Vertex-count range the graphs are drawn from.
    pub vertex_range: (usize, usize),
    /// Mean-degree range the graphs are drawn from.
    pub degree_range: (f64, f64),
    /// Operators to include in the training set.
    pub ops: Vec<OpInfo>,
    /// Feature dimensions to include.
    pub feat_dims: Vec<usize>,
    /// Candidate schedules measured per (graph, op, feat) context.
    pub schedules: Vec<ParallelInfo>,
    /// GBDT hyper-parameters.
    pub gbdt: GbdtParams,
    /// RNG seed for graph synthesis.
    pub seed: u64,
    /// Include the operator-info features (Table 7); set to `false` for
    /// the graph-only feature ablation.
    pub use_op_features: bool,
}

impl PredictorConfig {
    /// Paper-scale training: 128 random graphs, the common operators, the
    /// full schedule space.
    pub fn paper(device: DeviceConfig) -> Self {
        Self {
            device,
            num_graphs: 128,
            vertex_range: (256, 100_000),
            degree_range: (1.5, 40.0),
            ops: vec![
                OpInfo::aggregation_sum(),
                OpInfo::aggregation_max(),
                OpInfo::aggregation_mean(),
                OpInfo::weighted_aggregation_sum(),
                OpInfo::message_creation_add(),
                OpInfo::edge_aggregation_sum(),
            ],
            feat_dims: vec![8, 16, 32, 64, 128],
            schedules: ParallelInfo::space(),
            gbdt: GbdtParams {
                num_trees: 200,
                max_depth: 7,
                ..GbdtParams::default()
            },
            seed: 0x0420,
            use_op_features: true,
        }
    }

    /// A small configuration for unit tests (a few seconds to train).
    pub fn quick(device: DeviceConfig) -> Self {
        Self {
            device,
            num_graphs: 6,
            vertex_range: (128, 2048),
            degree_range: (2.0, 10.0),
            ops: vec![OpInfo::aggregation_sum()],
            feat_dims: vec![16],
            schedules: ParallelInfo::basics(),
            gbdt: GbdtParams {
                num_trees: 60,
                max_depth: 5,
                ..GbdtParams::default()
            },
            seed: 7,
            use_op_features: true,
        }
    }
}

/// A trained schedule predictor.
///
/// Serializable: train once, persist with [`Predictor::save`], and load at
/// deployment — the flow the paper describes (§5.4: prediction runs once
/// before model inference).
#[derive(Debug, Clone)]
pub struct Predictor {
    model: Gbdt,
    schedules: Vec<ParallelInfo>,
    use_op_features: bool,
}

impl ToJson for Predictor {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("model", self.model.to_json()),
            ("schedules", self.schedules.to_json()),
            ("use_op_features", self.use_op_features.to_json()),
        ])
    }
}

impl FromJson for Predictor {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let schedules = Vec::<ParallelInfo>::from_json(v.field("schedules")?)?;
        if schedules.is_empty() {
            return Err(JsonError::new("predictor: empty schedule list"));
        }
        Ok(Predictor {
            model: Gbdt::from_json(v.field("model")?)?,
            schedules,
            // Older model files predate the ablation flag; default to the
            // full feature set.
            use_op_features: match v.get("use_op_features") {
                Some(flag) => bool::from_json(flag)?,
                None => true,
            },
        })
    }
}

impl Predictor {
    /// Synthesises a training set per the configuration and fits the GBDT.
    ///
    /// Every (graph, operator, feature-dim, schedule) tuple becomes one row
    /// mapping the Table 7 features to `ln(simulated time)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no graphs, ops, feature dims, or
    /// schedules.
    pub fn train(config: &PredictorConfig) -> Self {
        assert!(
            config.num_graphs > 0
                && !config.ops.is_empty()
                && !config.feat_dims.is_empty()
                && !config.schedules.is_empty(),
            "empty predictor training configuration"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let options = MeasureOptions::auto(config.device.clone());

        for _ in 0..config.num_graphs {
            let graph = random_graph(config, &mut rng);
            let stats = graph.degree_stats();
            for op in &config.ops {
                for &feat in &config.feat_dims {
                    measure_context(
                        &graph,
                        &stats,
                        op,
                        feat,
                        config,
                        &options,
                        &mut rows,
                        &mut targets,
                    );
                }
            }
        }

        let data = TrainSet::new(rows, targets).expect("training rows are consistent");
        Self {
            model: Gbdt::fit(&data, &config.gbdt),
            schedules: config.schedules.clone(),
            use_op_features: config.use_op_features,
        }
    }

    /// Predicted `ln(time_ms)` for a candidate schedule.
    pub fn predict_log_time(
        &self,
        stats: &DegreeStats,
        op: &OpInfo,
        feat: usize,
        schedule: &ParallelInfo,
    ) -> f64 {
        self.model
            .predict(&crate::tune::features::feature_vector_masked(
                stats,
                op,
                feat,
                schedule,
                self.use_op_features,
            ))
    }

    /// Picks the schedule with the minimum predicted time.
    ///
    /// The prediction comes from a learned model that may have been loaded
    /// from disk, so its output is treated as untrusted: a non-finite
    /// score, an empty candidate list, or an illegal winning schedule all
    /// come back as [`CoreError::TuningFailed`] /
    /// [`CoreError::InvalidSchedule`] instead of a panic, letting the
    /// runtime fall back to grid search.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid or the model's
    /// output is unusable.
    pub fn choose(
        &self,
        stats: &DegreeStats,
        op: &OpInfo,
        feat: usize,
    ) -> Result<ParallelInfo, CoreError> {
        self.choose_traced(stats, op, feat, &Recorder::disabled(), 0)
    }

    /// [`Predictor::choose`] with tracing: one `"tune.predict"` span per
    /// candidate schedule scored, carrying the predicted log-time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid or the model's
    /// output is unusable.
    pub fn choose_traced(
        &self,
        stats: &DegreeStats,
        op: &OpInfo,
        feat: usize,
        recorder: &Recorder,
        trace_id: u64,
    ) -> Result<ParallelInfo, CoreError> {
        op.validate()?;
        let mut best: Option<(ParallelInfo, f64)> = None;
        for &s in &self.schedules {
            let mut span = recorder.span_traced("tune.predict", SpanKind::Tune, trace_id);
            let t = self.predict_log_time(stats, op, feat, &s);
            if span.is_enabled() {
                span.attr("schedule", s.label())
                    .attr("predicted_log_time", t);
            }
            drop(span);
            if !t.is_finite() {
                return Err(CoreError::TuningFailed {
                    reason: format!("predictor scored {} as {t}", s.label()),
                });
            }
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((s, t));
            }
        }
        let (s, _) = best.ok_or_else(|| CoreError::TuningFailed {
            reason: "predictor has no candidate schedules".to_owned(),
        })?;
        // Same legality gate as plan generation and grid search: the
        // winning schedule must be executable in this (op, feat) context.
        crate::analysis::check_context(op, &s, feat)?;
        Ok(s)
    }

    /// The candidate schedules this predictor ranks.
    pub fn schedules(&self) -> &[ParallelInfo] {
        &self.schedules
    }

    /// Persists the trained model as JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, ugrapher_util::json::to_string(self))
    }

    /// Loads a model persisted by [`Predictor::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or parsed.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        ugrapher_util::json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn random_graph(config: &PredictorConfig, rng: &mut StdRng) -> Graph {
    let nv = rng.random_range(config.vertex_range.0..=config.vertex_range.1);
    let mean_deg = rng.random_range(config.degree_range.0..=config.degree_range.1);
    let ne = ((nv as f64 * mean_deg) as usize).max(nv);
    let degree_model = match rng.random_range(0..3) {
        0 => DegreeModel::NearRegular,
        1 => DegreeModel::TargetStd {
            std: mean_deg * rng.random_range(0.5..4.0),
        },
        _ => DegreeModel::PowerLaw {
            alpha: rng.random_range(1.3..2.5),
        },
    };
    GraphSpec {
        num_vertices: nv,
        num_edges: ne,
        degree_model,
        locality: rng.random_range(0.0..0.9),
        seed: rng.random(),
    }
    .build()
}

#[allow(clippy::too_many_arguments)]
fn measure_context(
    graph: &Graph,
    stats: &DegreeStats,
    op: &OpInfo,
    feat: usize,
    config: &PredictorConfig,
    options: &MeasureOptions,
    rows: &mut Vec<Vec<f64>>,
    targets: &mut Vec<f64>,
) {
    for &schedule in &config.schedules {
        let plan =
            KernelPlan::generate(*op, schedule, graph.num_vertices(), graph.num_edges(), feat)
                .expect("training ops are valid");
        let time = measure(graph, &plan, options).time_ms;
        rows.push(crate::tune::features::feature_vector_masked(
            stats,
            op,
            feat,
            &schedule,
            config.use_op_features,
        ));
        targets.push(time.max(1e-6).ln());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune::grid_search_space;
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn quick_predictor_ranks_close_to_grid_search() {
        let config = PredictorConfig::quick(DeviceConfig::v100());
        let predictor = Predictor::train(&config);

        // Evaluate on a held-out graph.
        let g = uniform_random(700, 4200, 99);
        let stats = g.degree_stats();
        let op = OpInfo::aggregation_sum();
        let chosen = predictor.choose(&stats, &op, 16).unwrap();

        let options = MeasureOptions::auto(DeviceConfig::v100());
        let truth = grid_search_space(&g, &op, 16, &options, &ParallelInfo::basics()).unwrap();
        let chosen_time = truth.time_of(&chosen).unwrap();
        // Paper Fig. 12: predictor performance is close to grid search. We
        // allow 2x on this deliberately tiny training config.
        assert!(
            chosen_time <= truth.best_time_ms * 2.0,
            "predictor chose {chosen} ({chosen_time} ms) vs optimum {} ({} ms)",
            truth.best,
            truth.best_time_ms
        );
    }

    #[test]
    fn choose_rejects_invalid_op() {
        let config = PredictorConfig::quick(DeviceConfig::v100());
        let predictor = Predictor::train(&config);
        let g = uniform_random(100, 400, 1);
        let bad = OpInfo {
            edge_op: crate::abstraction::EdgeOp::Mul,
            gather_op: crate::abstraction::GatherOp::Sum,
            a: crate::abstraction::TensorType::SrcV,
            b: crate::abstraction::TensorType::Null,
            c: crate::abstraction::TensorType::DstV,
        };
        assert!(predictor.choose(&g.degree_stats(), &bad, 16).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let config = PredictorConfig::quick(DeviceConfig::v100());
        let predictor = Predictor::train(&config);
        let dir = std::env::temp_dir().join("ugrapher_predictor_test.json");
        predictor.save(&dir).unwrap();
        let loaded = Predictor::load(&dir).unwrap();
        let g = uniform_random(200, 900, 17);
        let stats = g.degree_stats();
        let op = OpInfo::aggregation_sum();
        assert_eq!(
            predictor.choose(&stats, &op, 16).unwrap(),
            loaded.choose(&stats, &op, 16).unwrap()
        );
        for p in predictor.schedules() {
            assert_eq!(
                predictor.predict_log_time(&stats, &op, 16, p),
                loaded.predict_log_time(&stats, &op, 16, p)
            );
        }
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn predictions_are_finite() {
        let config = PredictorConfig::quick(DeviceConfig::v100());
        let predictor = Predictor::train(&config);
        let g = uniform_random(333, 999, 5);
        let stats = g.degree_stats();
        for p in predictor.schedules() {
            let t = predictor.predict_log_time(&stats, &OpInfo::aggregation_sum(), 16, p);
            assert!(t.is_finite());
        }
    }
}
