//! Budgeted random search.
//!
//! Grid search measures all 196 schedules; the predictor is instant but
//! approximate. Random search sits between: measure a fixed budget of
//! uniformly drawn schedules (always including the four basics as anchors)
//! and return the best seen. Useful when the operator is exotic enough
//! that the trained predictor cannot be trusted but a full sweep is too
//! slow — and as a baseline to quantify how much exhaustive search
//! actually buys.

use ugrapher_util::rng::StdRng;

use ugrapher_graph::Graph;

use crate::abstraction::OpInfo;
use crate::exec::MeasureOptions;
use crate::schedule::ParallelInfo;
use crate::tune::{grid_search_shaped, TuneResult};
use crate::CoreError;

/// Searches `budget` randomly drawn schedules (plus the four basic
/// anchors), returning the best found.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid or `feat == 0`.
///
/// # Panics
///
/// Panics if `budget == 0`.
pub fn random_search(
    graph: &Graph,
    op: &OpInfo,
    feat: usize,
    scalars: (bool, bool),
    options: &MeasureOptions,
    budget: usize,
    seed: u64,
) -> Result<TuneResult, CoreError> {
    assert!(budget > 0, "budget must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let space = ParallelInfo::space();
    let mut candidates = ParallelInfo::basics();
    while candidates.len() < budget + 4 {
        let pick = space[rng.random_range(0..space.len())];
        if !candidates.contains(&pick) {
            candidates.push(pick);
        }
        if candidates.len() >= space.len() {
            break;
        }
    }
    grid_search_shaped(graph, op, feat, scalars, options, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    use ugrapher_graph::generate::uniform_random;
    use ugrapher_sim::DeviceConfig;

    fn options() -> MeasureOptions {
        MeasureOptions::auto(DeviceConfig::v100())
    }

    #[test]
    fn random_search_never_beats_grid_and_never_loses_to_basics() {
        let g = uniform_random(600, 4200, 31);
        let op = OpInfo::aggregation_sum();
        let rs = random_search(&g, &op, 16, (false, false), &options(), 24, 1).unwrap();
        let grid = grid_search_shaped(
            &g,
            &op,
            16,
            (false, false),
            &options(),
            &ParallelInfo::space(),
        )
        .unwrap();
        let basics = grid_search_shaped(
            &g,
            &op,
            16,
            (false, false),
            &options(),
            &ParallelInfo::basics(),
        )
        .unwrap();
        assert!(grid.best_time_ms <= rs.best_time_ms + 1e-12);
        assert!(rs.best_time_ms <= basics.best_time_ms + 1e-12);
        // Budget respected: 4 anchors + 24 draws.
        assert!(rs.all.len() <= 28);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let g = uniform_random(300, 1500, 32);
        let op = OpInfo::aggregation_max();
        let a = random_search(&g, &op, 8, (false, false), &options(), 8, 9).unwrap();
        let b = random_search(&g, &op, 8, (false, false), &options(), 8, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_larger_than_space_terminates() {
        let g = uniform_random(100, 400, 33);
        let op = OpInfo::aggregation_sum();
        let r = random_search(&g, &op, 8, (false, false), &options(), 10_000, 3).unwrap();
        assert!(r.all.len() <= ParallelInfo::space().len());
    }
}
