//! The compiled-plan cache.
//!
//! uGrapher's value proposition (paper §5.3–5.4) is that operator
//! compilation and schedule selection happen *once* and are then reused
//! across every `update_all`/`apply_edges` call of a model. A [`PlanCache`]
//! makes that reuse explicit at the runtime layer: it memoizes, per
//! request shape, everything [`crate::api::Runtime::run`] derives before a
//! kernel can execute —
//!
//! * the **chosen schedule** (the output of the predictor or the budgeted
//!   grid search, by far the most expensive stage),
//! * the generated [`KernelPlan`],
//! * the lowered [`KernelIr`] and its [`DeterminismClass`], and
//! * the [`Downgrade`]s recorded while choosing (so a cache hit reports
//!   the same robustness verdict as the miss that populated it).
//!
//! The key ([`PlanKey`]) is the full set of inputs those derivations
//! depend on: operator semantics, the explicit schedule (or `None` for
//! auto-tuned entries), the graph's structural fingerprint
//! ([`ugrapher_graph::Graph::structural_fingerprint`]), the feature
//! dimension, and the scalar-broadcast shape of each operand. A mutated
//! graph (changed nnz, rewired edge, renumbered edge ids) changes the
//! fingerprint and therefore misses; [`PlanCache::invalidate_graph`]
//! additionally drops the stale entries when a graph version is retired.
//!
//! The cache is bounded (FIFO eviction) and thread-safe; hits and misses
//! are counted both locally ([`PlanCache::stats`]) and in the
//! process-wide metrics registry (`ugrapher_plan_cache_hits_total` /
//! `ugrapher_plan_cache_misses_total` / `ugrapher_plan_cache_evictions_total`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ugrapher_obs::{metrics, MetricsRegistry};

use crate::abstraction::OpInfo;
use crate::ir::{DeterminismClass, KernelIr};
use crate::plan::KernelPlan;
use crate::robustness::Downgrade;
use crate::schedule::ParallelInfo;

/// Everything a compiled plan depends on; two requests with equal keys can
/// share one [`CachedPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Operator semantics.
    pub op: OpInfo,
    /// The caller-supplied schedule, or `None` for auto-tuned requests.
    /// Explicit and auto entries never alias: an auto entry remembers the
    /// *result* of tuning, which must not shadow a user's explicit choice.
    pub explicit: Option<ParallelInfo>,
    /// [`ugrapher_graph::Graph::structural_fingerprint`] of the graph
    /// version the plan was compiled against.
    pub graph_fingerprint: u64,
    /// Feature (column) dimension of the operator's tensors.
    pub feat: usize,
    /// Scalar-broadcast flags of operands A and B (a one-column operand
    /// is costed and planned differently from a full-width one).
    pub scalars: (bool, bool),
}

/// The memoized compilation artifacts for one [`PlanKey`].
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The schedule that will execute (chosen by tuning, or the explicit
    /// one the key was built with).
    pub schedule: ParallelInfo,
    /// The generated plan, scalar-operand flags applied.
    pub plan: KernelPlan,
    /// The lowered kernel IR (what `emit_cuda` renders and the verifier
    /// passes analyze).
    pub ir: Arc<KernelIr>,
    /// Determinism classification of `ir`.
    pub determinism: DeterminismClass,
    /// Downgrades recorded while this entry was compiled (tune budget
    /// trips, schedule lints, predictor fallbacks). Replayed into the
    /// [`crate::robustness::RobustnessReport`] of every hit so cached and
    /// uncached requests report the same verdict.
    pub downgrades: Vec<Downgrade>,
}

/// Point-in-time counters of one cache instance (process-global metrics
/// aggregate over all instances; these are per-cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Entries dropped by [`PlanCache::invalidate_graph`] /
    /// [`PlanCache::clear`].
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PlanKey, Arc<CachedPlan>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<PlanKey>,
}

/// A bounded, thread-safe cache of compiled plans (see the module docs).
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default entry capacity; generous for any realistic operator ×
    /// schedule × graph-version working set while bounding memory.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A cache holding at most `capacity` entries (minimum 1); the oldest
    /// entry is evicted first.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// A shared cache ready to hand to [`crate::api::Runtime::with_plan_cache`]
    /// (and clone across serving workers).
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// Looks up a compiled plan, counting the hit or miss.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        let found = self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .get(key)
            .cloned();
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().inc(metrics::PLAN_CACHE_HITS);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().inc(metrics::PLAN_CACHE_MISSES);
            }
        }
        found
    }

    /// Inserts (or replaces) the entry for `key`, evicting the oldest
    /// entry if the cache is full. Returns the stored handle.
    pub fn insert(&self, key: PlanKey, value: CachedPlan) -> Arc<CachedPlan> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.insert(key, Arc::clone(&value)).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                // `order` can hold keys already dropped by invalidation;
                // skip those without charging an eviction.
                if let Some(old) = inner.order.pop_front() {
                    if inner.map.remove(&old).is_some() {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        MetricsRegistry::global().inc(metrics::PLAN_CACHE_EVICTIONS);
                    }
                } else {
                    break;
                }
            }
        }
        value
    }

    /// Drops every entry compiled against the given graph fingerprint
    /// (call when a graph version is retired or mutated in place).
    /// Returns how many entries were removed.
    pub fn invalidate_graph(&self, graph_fingerprint: u64) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let before = inner.map.len();
        inner
            .map
            .retain(|k, _| k.graph_fingerprint != graph_fingerprint);
        inner
            .order
            .retain(|k| k.graph_fingerprint != graph_fingerprint);
        let removed = before - inner.map.len();
        if removed > 0 {
            self.invalidations
                .fetch_add(removed as u64, Ordering::Relaxed);
            MetricsRegistry::global().inc_by(metrics::PLAN_CACHE_EVICTIONS, removed as u64);
        }
        removed
    }

    /// Drops every entry.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let removed = inner.map.len();
        inner.map.clear();
        inner.order.clear();
        if removed > 0 {
            self.invalidations
                .fetch_add(removed as u64, Ordering::Relaxed);
            MetricsRegistry::global().inc_by(metrics::PLAN_CACHE_EVICTIONS, removed as u64);
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .map
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::schedule::Strategy;

    fn key(fingerprint: u64, feat: usize) -> PlanKey {
        PlanKey {
            op: OpInfo::aggregation_sum(),
            explicit: None,
            graph_fingerprint: fingerprint,
            feat,
            scalars: (false, false),
        }
    }

    fn entry(feat: usize) -> CachedPlan {
        let schedule = ParallelInfo::basic(Strategy::ThreadVertex);
        let plan =
            KernelPlan::generate(OpInfo::aggregation_sum(), schedule, 100, 400, feat).unwrap();
        let ir = lower(&plan).unwrap();
        let determinism = crate::ir::classify_determinism(&ir);
        CachedPlan {
            schedule,
            plan,
            ir: Arc::new(ir),
            determinism,
            downgrades: Vec::new(),
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = PlanCache::new(8);
        assert!(cache.get(&key(1, 8)).is_none());
        cache.insert(key(1, 8), entry(8));
        assert!(cache.get(&key(1, 8)).is_some());
        // A different graph fingerprint (same shape otherwise) misses.
        assert!(cache.get(&key(2, 8)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = PlanCache::new(2);
        cache.insert(key(1, 8), entry(8));
        cache.insert(key(2, 8), entry(8));
        cache.insert(key(3, 8), entry(8));
        assert!(cache.get(&key(1, 8)).is_none(), "oldest evicted");
        assert!(cache.get(&key(2, 8)).is_some());
        assert!(cache.get(&key(3, 8)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_graph_drops_only_that_graph() {
        let cache = PlanCache::new(8);
        cache.insert(key(1, 8), entry(8));
        cache.insert(key(1, 16), entry(16));
        cache.insert(key(2, 8), entry(8));
        assert_eq!(cache.invalidate_graph(1), 2);
        assert!(cache.get(&key(1, 8)).is_none());
        assert!(cache.get(&key(1, 16)).is_none());
        assert!(cache.get(&key(2, 8)).is_some());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn explicit_and_auto_entries_do_not_alias() {
        let cache = PlanCache::new(8);
        let auto = key(1, 8);
        let explicit = PlanKey {
            explicit: Some(ParallelInfo::basic(Strategy::ThreadVertex)),
            ..auto
        };
        cache.insert(auto, entry(8));
        assert!(cache.get(&explicit).is_none());
    }

    #[test]
    fn clear_empties_everything() {
        let cache = PlanCache::new(8);
        cache.insert(key(1, 8), entry(8));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(&key(1, 8)).is_none());
    }
}
