//! Schedule-faithful trace generation.
//!
//! For a given [`KernelPlan`], this module walks the exact loop structure
//! the paper's code generator would emit for that schedule (paper Fig. 6)
//! and streams the resulting warp-level memory accesses and compute cycles
//! into the `ugrapher-sim` GPU model:
//!
//! * **thread-vertex / thread-edge** — each lane owns a group of
//!   vertices/edges; feature elements are traversed sequentially per lane,
//!   so cross-lane accesses gather from up to 32 distinct rows
//!   ([`Access::PerLaneRows`]) and index arrays are read one element per
//!   lane per step ([`Access::Scatter`]);
//! * **warp-vertex / warp-edge** — each warp owns a group; lanes sweep the
//!   feature tile, so feature rows are read in coalesced 32-lane chunks
//!   ([`Access::Coalesced`]) and index arrays via [`Access::Broadcast`];
//! * edge-parallel reductions update destination rows with
//!   [`KernelSim::atomic`], tracking per-destination conflict chains.
//!
//! Tracing can be *sampled* ([`Fidelity::Sampled`]): only every `stride`-th
//! block is walked and the simulator scales counts back up, which is what
//! makes grid-search tuning affordable (DESIGN.md §7).

use ugrapher_graph::Graph;
use ugrapher_obs::{metrics, MetricsRegistry, Recorder, SpanKind};
use ugrapher_sim::{Access, AddressSpace, DeviceConfig, KernelSim, LaunchConfig, SimReport};

use crate::abstraction::TensorType;
use crate::costs;
use crate::plan::KernelPlan;
use crate::schedule::Strategy;

/// Trace fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Trace every block.
    Full,
    /// Trace every `stride`-th block (adjusted to be coprime with the SM
    /// count so sampling does not alias with round-robin dispatch).
    Sampled(usize),
    /// Pick a stride so that roughly 1024 blocks are traced.
    Auto,
}

/// Options for [`measure`].
#[derive(Debug, Clone)]
pub struct MeasureOptions {
    /// Target device model.
    pub device: DeviceConfig,
    /// Sampling fidelity.
    pub fidelity: Fidelity,
    /// Span recorder: every [`measure`] call emits one `"sim.kernel"` span
    /// here, carrying the full [`SimReport`] metric set as attributes.
    /// Defaults to the process-global recorder (disabled unless installed),
    /// so this costs nothing when tracing is off.
    pub recorder: Recorder,
    /// Trace id stamped on emitted spans (`0` = not part of a traced
    /// request).
    pub trace_id: u64,
}

impl MeasureOptions {
    /// Full-fidelity measurement on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            fidelity: Fidelity::Full,
            recorder: Recorder::global(),
            trace_id: 0,
        }
    }

    /// Auto-sampled measurement (used by the tuner).
    pub fn auto(device: DeviceConfig) -> Self {
        Self {
            device,
            fidelity: Fidelity::Auto,
            recorder: Recorder::global(),
            trace_id: 0,
        }
    }

    /// Sets the sampling fidelity.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Routes `"sim.kernel"` spans to an explicit recorder instead of the
    /// process-global one.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Stamps emitted spans with a request trace id.
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }
}

/// Device addresses of every array a kernel touches.
struct Layout {
    in_ptr: u64,
    in_src: u64,
    in_eid: u64,
    coo_src: u64,
    coo_dst: u64,
    a: u64,
    b: u64,
    c: u64,
    feat: u64,
}

impl Layout {
    fn build(graph: &Graph, plan: &KernelPlan) -> Self {
        let mut mem = AddressSpace::new();
        let nv = graph.num_vertices() as u64;
        let ne = graph.num_edges() as u64;
        let feat = plan.feat as u64;
        let rows = |t: TensorType| match t {
            TensorType::SrcV | TensorType::DstV => nv,
            TensorType::Edge => ne,
            TensorType::Null => 0,
        };
        let a_cols = if plan.a_scalar { 1 } else { feat };
        let b_cols = if plan.b_scalar { 1 } else { feat };
        Self {
            in_ptr: mem.alloc((nv + 1) * 8),
            in_src: mem.alloc(ne * 4),
            in_eid: mem.alloc(ne * 4),
            coo_src: mem.alloc(ne * 4),
            coo_dst: mem.alloc(ne * 4),
            a: mem.alloc(rows(plan.op.a) * a_cols * 4),
            b: mem.alloc(rows(plan.op.b) * b_cols * 4),
            c: mem.alloc(rows(plan.op.c) * feat * 4),
            feat,
        }
    }

    fn row_addr(&self, base: u64, row: u64, tile_off: usize) -> u64 {
        base + (row * self.feat + tile_off as u64) * 4
    }
}

/// One non-null input operand as the tracer sees it.
#[derive(Debug, Clone, Copy)]
struct InputSpec {
    ttype: TensorType,
    base: u64,
    /// One-column broadcast: the kernel loads a single 4-byte value per
    /// row instead of a feature tile.
    scalar: bool,
}

impl InputSpec {
    /// Address of this operand's data for `row` at `tile_off`.
    fn addr(&self, lay: &Layout, row: u64, tile_off: usize) -> u64 {
        if self.scalar {
            self.base + row * 4
        } else {
            lay.row_addr(self.base, row, tile_off)
        }
    }

    /// Bytes one lane streams for this operand.
    fn bytes(&self, tile_len: usize) -> u32 {
        if self.scalar {
            4
        } else {
            (tile_len * 4) as u32
        }
    }

    /// Memory-issue cycles one lane spends loading this operand.
    fn issue_cycles(&self, tile_len: usize) -> f64 {
        if self.scalar {
            crate::costs::CYCLES_PER_MEM_ISSUE
        } else {
            tile_len as f64 * crate::costs::CYCLES_PER_MEM_ISSUE
        }
    }
}

/// The per-edge arrays an edge-parallel kernel iterates, in its iteration
/// order (see [`Tracer::edge_view`]).
struct EdgeView {
    src: Vec<u32>,
    dst: Vec<u32>,
    /// Stable edge ids per position; empty in COO mode where `eid == e`.
    eids: Vec<u32>,
    /// Whether positions follow dst-sorted CSR slot order.
    csr: bool,
}

impl EdgeView {
    fn eid(&self, e: usize) -> u64 {
        if self.csr {
            self.eids[e] as u64
        } else {
            e as u64
        }
    }

    /// Device base address of the per-position source-vertex array.
    fn src_base(&self, lay: &Layout) -> u64 {
        if self.csr {
            lay.in_src
        } else {
            lay.coo_src
        }
    }

    /// Device base address of the per-position destination-vertex array
    /// (for CSR order this is the expanded slot->dst array real kernels
    /// carry alongside the CSC structure).
    fn dst_base(&self, lay: &Layout) -> u64 {
        lay.coo_dst
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Resolves `(block_stride, warp_stride)` for a launch. Auto mode budgets
/// the total *traced work* (approximate edge visits), because per-warp work
/// grows with the V/E grouping parameter: a grid of 6 blocks with `G = 64`
/// can hold more work than a grid of 100k one-edge blocks.
const AUTO_BLOCK_TARGET: usize = 384;
const AUTO_VISIT_TARGET: f64 = 98_304.0;

fn resolve_sampling(
    fidelity: Fidelity,
    grid_blocks: usize,
    warps_per_block: usize,
    visits_per_warp: f64,
    num_sms: usize,
) -> (usize, usize) {
    let coprime = |mut stride: usize| {
        while stride > 1 && gcd(stride, num_sms) != 1 {
            stride += 1;
        }
        stride
    };
    let mut block_stride = match fidelity {
        Fidelity::Full => return (1, 1),
        Fidelity::Sampled(s) => return (coprime(s.max(1)), 1),
        Fidelity::Auto => coprime((grid_blocks / AUTO_BLOCK_TARGET).max(1)),
    };
    let mut warp_stride = 1usize;
    loop {
        let traced_blocks = grid_blocks.div_ceil(block_stride).max(1);
        let traced_warps = warps_per_block.div_ceil(warp_stride).max(1);
        let visits = traced_blocks as f64 * traced_warps as f64 * visits_per_warp;
        if visits <= AUTO_VISIT_TARGET {
            break;
        }
        if warp_stride < warps_per_block {
            warp_stride *= 2;
        } else {
            let next = coprime(block_stride * 2);
            if grid_blocks.div_ceil(next) < 32 {
                break; // keep at least 32 traced blocks of signal
            }
            block_stride = next;
        }
    }
    (block_stride, warp_stride.min(warps_per_block))
}

/// Measures the performance of executing `plan` over `graph` on the
/// configured device, returning the simulated [`SimReport`].
///
/// The trace touches only graph *structure* (never feature values), so no
/// operand tensors are needed — the memory behaviour of a graph operator is
/// data-independent given the schedule.
///
/// # Example
///
/// ```
/// use ugrapher_core::abstraction::OpInfo;
/// use ugrapher_core::exec::{measure, MeasureOptions};
/// use ugrapher_core::plan::KernelPlan;
/// use ugrapher_core::schedule::{ParallelInfo, Strategy};
/// use ugrapher_graph::generate::ring;
/// use ugrapher_sim::DeviceConfig;
///
/// let g = ring(256);
/// let plan = KernelPlan::generate(
///     OpInfo::aggregation_sum(),
///     ParallelInfo::basic(Strategy::WarpVertex),
///     g.num_vertices(),
///     g.num_edges(),
///     32,
/// )
/// .unwrap();
/// let report = measure(&g, &plan, &MeasureOptions::new(DeviceConfig::v100()));
/// assert!(report.time_ms > 0.0);
/// ```
pub fn measure(graph: &Graph, plan: &KernelPlan, options: &MeasureOptions) -> SimReport {
    let mut span = options
        .recorder
        .span_traced("sim.kernel", SpanKind::Kernel, options.trace_id);
    let device = &options.device;
    let wpb = plan.threads_per_block / 32;
    // Approximate edge visits per warp, the unit of tracing cost.
    let mean_deg = if graph.num_vertices() > 0 {
        graph.num_edges() as f64 / graph.num_vertices() as f64
    } else {
        0.0
    };
    let lanes = if plan.parallel.strategy.is_warp_per_item() {
        1.0
    } else {
        32.0
    };
    let per_unit = if plan.parallel.strategy.is_edge_parallel() {
        1.0
    } else {
        mean_deg.max(0.25)
    };
    let visits_per_warp = lanes * plan.parallel.grouping as f64 * per_unit;
    let (stride, warp_stride) = resolve_sampling(
        options.fidelity,
        plan.grid_blocks,
        wpb.max(1),
        visits_per_warp,
        device.num_sms,
    );
    let traced = plan.grid_blocks.div_ceil(stride).max(1);
    let replication = (plan.grid_blocks as f64 / traced as f64).max(1.0);

    let launch = LaunchConfig::new(plan.grid_blocks, plan.threads_per_block)
        .with_regs(plan.regs_per_thread)
        .with_replication(replication);
    let mut sim = KernelSim::new(device, launch);

    let lay = Layout::build(graph, plan);
    let tracer = Tracer {
        graph,
        plan,
        lay,
        stride,
        warp_stride,
    };
    tracer.run(&mut sim);
    let report = sim.finish();
    if span.is_enabled() {
        span.attr("schedule", plan.parallel.label())
            .attr("op", plan.op.label())
            .attr("feat", plan.feat)
            .attr("grid_blocks", plan.grid_blocks)
            .attr("time_ms", report.time_ms)
            .attr("kernels", report.kernels)
            .attr("achieved_occupancy", report.achieved_occupancy)
            .attr("theoretical_occupancy", report.theoretical_occupancy)
            .attr("sm_efficiency", report.sm_efficiency)
            .attr("l1_hit_rate", report.l1_hit_rate)
            .attr("l2_hit_rate", report.l2_hit_rate)
            .attr("dram_bytes", report.dram_bytes)
            .attr("l2_transactions", report.l2_transactions)
            .attr("l1_transactions", report.l1_transactions)
            .attr("atomic_ops", report.atomic_ops)
            .attr("max_atomic_conflict", report.max_atomic_conflict)
            .attr("compute_cycles", report.compute_cycles);
    }
    let reg = MetricsRegistry::global();
    reg.inc(metrics::KERNELS_LAUNCHED);
    reg.observe_labeled(
        metrics::KERNEL_TIME_MS,
        "strategy",
        plan.parallel.strategy.label(),
        report.time_ms,
    );
    report
}

/// Replays `plan`'s schedule over `graph` at **full fidelity** with the
/// simulator's write log enabled, returning the word-granular write-set of
/// the kernel's output stores and atomics.
///
/// This is the dynamic side of the race cross-check (`ugrapher-analyze`):
/// the tracer emits exactly one store/atomic per output element per owning
/// work item — edge-parallel reductions accumulate same-destination runs
/// in registers and flush once per run, vertex strategies flush each owned
/// row once per tile, and feature tiles write disjoint word ranges — so an
/// output word logged twice was written by two distinct work items.
/// Sampling is never used here: a thinned trace would under-count writers.
///
/// Word-exactness caveat: warps whose lanes sit in different feature tiles
/// issue one instruction sized by the first lane's tile length, so a
/// *ragged* last tile (`feat % tile_size != 0`) can over-approximate the
/// write-set by a few spilled words. Callers comparing against the static
/// verdict should use feature dimensions that tile evenly (any power of
/// two against the power-of-two knob values).
///
/// # Errors
///
/// Returns [`CoreError`](crate::CoreError) if the device configuration is
/// invalid.
pub fn collect_writes(
    graph: &Graph,
    plan: &KernelPlan,
    device: &DeviceConfig,
) -> Result<ugrapher_sim::WriteLog, crate::CoreError> {
    device.validate()?;
    let launch =
        LaunchConfig::new(plan.grid_blocks, plan.threads_per_block).with_regs(plan.regs_per_thread);
    let mut sim = KernelSim::new(device, launch);
    sim.enable_write_log()?;
    let lay = Layout::build(graph, plan);
    let tracer = Tracer {
        graph,
        plan,
        lay,
        stride: 1,
        warp_stride: 1,
    };
    tracer.run(&mut sim);
    let (_report, log) = sim.finish_with_writes();
    log.ok_or_else(|| crate::CoreError::Internal {
        reason: "write log enabled but absent at finish".to_owned(),
    })
}

/// One lane's iteration state in a thread-per-item strategy.
struct Lane {
    tile: usize,
    tile_off: usize,
    /// Current vertex (thread-vertex) — unused for thread-edge.
    v: usize,
    /// Current in-edge slot / edge id.
    slot: usize,
    /// End of the current vertex's slot range (thread-vertex only).
    v_slot_end: usize,
    /// End of the lane's whole range.
    end: usize,
}

struct Tracer<'a> {
    graph: &'a Graph,
    plan: &'a KernelPlan,
    lay: Layout,
    stride: usize,
    /// Intra-block warp sampling: trace every `warp_stride`-th warp and
    /// scale the block's recorded costs back up.
    warp_stride: usize,
}

impl Tracer<'_> {
    /// Walks the plan's loop structure, dispatching on the strategy.
    fn run(&self, sim: &mut KernelSim) {
        match self.plan.parallel.strategy {
            Strategy::ThreadVertex => self.thread_vertex(sim),
            Strategy::ThreadEdge => self.thread_edge(sim),
            Strategy::WarpVertex => self.warp_vertex(sim),
            Strategy::WarpEdge => self.warp_edge(sim),
        }
    }

    fn decode_item(&self, item: usize) -> (usize, usize) {
        // item = tile * num_groups + group, so consecutive items are
        // consecutive groups of the same tile (coalesced-friendly).
        (item / self.plan.num_groups, item % self.plan.num_groups)
    }

    fn tile_off(&self, tile: usize) -> usize {
        tile * self.plan.tile_size
    }

    fn tile_len(&self, tile: usize) -> usize {
        (self.plan.feat - self.tile_off(tile)).min(self.plan.tile_size)
    }

    /// Each non-null input operand.
    fn inputs(&self) -> Vec<InputSpec> {
        let mut v = Vec::with_capacity(2);
        if self.plan.op.a != TensorType::Null {
            v.push(InputSpec {
                ttype: self.plan.op.a,
                base: self.lay.a,
                scalar: self.plan.a_scalar,
            });
        }
        if self.plan.op.b != TensorType::Null {
            v.push(InputSpec {
                ttype: self.plan.op.b,
                base: self.lay.b,
                scalar: self.plan.b_scalar,
            });
        }
        v
    }

    fn needs_eid(&self) -> bool {
        self.plan.op.reads_edge() || self.plan.op.c == TensorType::Edge
    }

    /// Iteration order for edge-parallel strategies: reductions walk edges
    /// in dst-sorted CSR slot order (register accumulation over
    /// same-destination runs, coalesced index arrays); edge-output
    /// operators walk raw COO order (coalesced output writes).
    fn edge_view(&self) -> EdgeView {
        if self.plan.op.c != TensorType::Edge {
            let g = self.graph;
            let mut dst = vec![0u32; g.num_edges()];
            for v in 0..g.num_vertices() {
                dst[g.in_ptr()[v]..g.in_ptr()[v + 1]].fill(v as u32);
            }
            EdgeView {
                src: g.in_src().to_vec(),
                dst,
                eids: g.in_eid().to_vec(),
                csr: true,
            }
        } else {
            let coo = self.graph.to_coo();
            EdgeView {
                src: coo.src().to_vec(),
                dst: coo.dst().to_vec(),
                eids: Vec::new(),
                csr: false,
            }
        }
    }

    /// Warps of one block to trace, honouring the warp stride.
    fn traced_warps(&self, wpb: usize) -> Vec<usize> {
        (0..wpb).step_by(self.warp_stride).collect()
    }

    /// The cost scale compensating for skipped warps.
    fn warp_scale(&self, wpb: usize) -> f64 {
        let traced = wpb.div_ceil(self.warp_stride).max(1);
        wpb as f64 / traced as f64
    }

    fn item_overhead(&self) -> f64 {
        let mut c = 0.0;
        if self.plan.parallel.grouping > 1 {
            c += costs::CYCLES_GROUP_OVERHEAD;
        }
        if self.plan.tile_count > 1 {
            c += costs::CYCLES_TILE_OVERHEAD;
        }
        c
    }

    // ---------------------------------------------------------- thread-vertex

    fn thread_vertex(&self, sim: &mut KernelSim) {
        let plan = self.plan;
        let g = self.graph;
        let nv = g.num_vertices();
        let grp = plan.parallel.grouping;
        let tpb = plan.threads_per_block;
        let wpb = tpb / 32;
        let inputs = self.inputs();
        let dst_inputs: Vec<InputSpec> = inputs
            .iter()
            .filter(|i| i.ttype == TensorType::DstV)
            .copied()
            .collect();
        let edge_inputs: Vec<InputSpec> = inputs
            .iter()
            .filter(|i| i.ttype != TensorType::DstV)
            .copied()
            .collect();
        let reads_src = plan.op.reads_src();
        let needs_eid = self.needs_eid();
        let out_is_edge = plan.op.c == TensorType::Edge;

        let mut block = 0;
        while block < plan.grid_blocks {
            sim.begin_block_scaled(block as u32, self.warp_scale(wpb));
            for w in self.traced_warps(wpb) {
                let item0 = block * tpb + w * 32;
                if item0 >= plan.num_items {
                    break;
                }
                let mut lanes: Vec<Lane> = Vec::with_capacity(32);
                let mut ptr_bases = Vec::with_capacity(32);
                for item in item0..(item0 + 32).min(plan.num_items) {
                    let (tile, gidx) = self.decode_item(item);
                    let vstart = (gidx * grp).min(nv);
                    let vend = ((gidx + 1) * grp).min(nv);
                    if vstart >= vend {
                        continue;
                    }
                    ptr_bases.push(self.lay.in_ptr + vstart as u64 * 8);
                    lanes.push(Lane {
                        tile,
                        tile_off: self.tile_off(tile),
                        v: vstart,
                        slot: g.in_ptr()[vstart],
                        v_slot_end: g.in_ptr()[vstart + 1],
                        end: g.in_ptr()[vend],
                    });
                }
                if lanes.is_empty() {
                    continue;
                }
                let tile_len = self.tile_len(lanes[0].tile);
                sim.load(Access::PerLaneRows {
                    bases: ptr_bases,
                    bytes: ((grp + 1) * 8) as u32,
                });
                sim.compute(costs::CYCLES_PER_MEM_ISSUE + self.item_overhead());

                // Edge loop, all lanes in lockstep.
                loop {
                    let mut idx_addrs = Vec::new();
                    let mut eid_addrs = Vec::new();
                    let mut in_bases: Vec<Vec<u64>> =
                        edge_inputs.iter().map(|_| Vec::new()).collect();
                    let mut store_bases = Vec::new();
                    let mut active = 0usize;
                    for lane in &mut lanes {
                        if lane.slot >= lane.end {
                            continue;
                        }
                        while lane.slot >= lane.v_slot_end {
                            lane.v += 1;
                            lane.v_slot_end = g.in_ptr()[lane.v + 1];
                        }
                        let src = g.in_src()[lane.slot] as u64;
                        let eid = g.in_eid()[lane.slot] as u64;
                        if reads_src {
                            idx_addrs.push(self.lay.in_src + lane.slot as u64 * 4);
                        }
                        if needs_eid {
                            eid_addrs.push(self.lay.in_eid + lane.slot as u64 * 4);
                        }
                        for (k, input) in edge_inputs.iter().enumerate() {
                            let row = match input.ttype {
                                TensorType::SrcV => src,
                                TensorType::Edge => eid,
                                _ => unreachable!("DstV handled per vertex"),
                            };
                            in_bases[k].push(input.addr(&self.lay, row, lane.tile_off));
                        }
                        if out_is_edge {
                            store_bases.push(self.lay.row_addr(self.lay.c, eid, lane.tile_off));
                        }
                        lane.slot += 1;
                        active += 1;
                    }
                    if active == 0 {
                        break;
                    }
                    if !idx_addrs.is_empty() {
                        sim.load(Access::Scatter { addrs: idx_addrs });
                        sim.compute(costs::CYCLES_PER_MEM_ISSUE);
                    }
                    if !eid_addrs.is_empty() {
                        sim.load(Access::Scatter { addrs: eid_addrs });
                        sim.compute(costs::CYCLES_PER_MEM_ISSUE);
                    }
                    let mut cyc = costs::CYCLES_LOOP
                        + tile_len as f64 * plan.arith_per_element() * costs::CYCLES_PER_ARITH;
                    for (k, bases) in in_bases.into_iter().enumerate() {
                        if !bases.is_empty() {
                            sim.load(Access::PerLaneRows {
                                bases,
                                bytes: edge_inputs[k].bytes(tile_len),
                            });
                            cyc += edge_inputs[k].issue_cycles(tile_len);
                        }
                    }
                    if !store_bases.is_empty() {
                        sim.store(Access::PerLaneRows {
                            bases: store_bases,
                            bytes: (tile_len * 4) as u32,
                        });
                        cyc += tile_len as f64 * costs::CYCLES_PER_MEM_ISSUE;
                    }
                    sim.compute(cyc);
                }

                // Per-vertex epilogue: DstV input loads + output stores
                // (accumulators live in registers during the edge loop).
                if !out_is_edge || !dst_inputs.is_empty() {
                    for vs in 0..grp {
                        let mut bases = Vec::new();
                        for item in item0..(item0 + 32).min(plan.num_items) {
                            let (tile, gidx) = self.decode_item(item);
                            let v = gidx * grp + vs;
                            if v < ((gidx + 1) * grp).min(nv) && v < nv {
                                bases.push(self.lay.row_addr(
                                    self.lay.c,
                                    v as u64,
                                    self.tile_off(tile),
                                ));
                            }
                        }
                        if bases.is_empty() {
                            break;
                        }
                        for input in &dst_inputs {
                            let mut in_rows = Vec::with_capacity(bases.len());
                            for item in item0..(item0 + 32).min(plan.num_items) {
                                let (tile, gidx) = self.decode_item(item);
                                let v = gidx * grp + vs;
                                if v < ((gidx + 1) * grp).min(nv) && v < nv {
                                    in_rows.push(input.addr(
                                        &self.lay,
                                        v as u64,
                                        self.tile_off(tile),
                                    ));
                                }
                            }
                            sim.load(Access::PerLaneRows {
                                bases: in_rows,
                                bytes: input.bytes(tile_len),
                            });
                            sim.compute(input.issue_cycles(tile_len));
                        }
                        if !out_is_edge {
                            sim.store(Access::PerLaneRows {
                                bases,
                                bytes: (tile_len * 4) as u32,
                            });
                            sim.compute(tile_len as f64 * costs::CYCLES_PER_MEM_ISSUE);
                        }
                    }
                }
            }
            sim.end_block();
            block += self.stride;
        }
    }

    // ------------------------------------------------------------ thread-edge

    /// Edge-parallel kernels iterate reductions in *dst-sorted (CSR) slot
    /// order*, which lets a thread accumulate consecutive same-destination
    /// edges in registers and issue one atomic per destination run — the
    /// mechanism that makes large V/E grouping effective on skewed graphs
    /// (paper Table 9's `TE_G32/G64` optima). Edge-output operators
    /// (message creation) iterate raw COO order instead, where the output
    /// write is naturally coalesced.
    fn thread_edge(&self, sim: &mut KernelSim) {
        let plan = self.plan;
        let g = self.graph;
        let ne = g.num_edges();
        let grp = plan.parallel.grouping;
        let tpb = plan.threads_per_block;
        let wpb = tpb / 32;
        let view = self.edge_view();
        let inputs = self.inputs();
        let out_is_edge = plan.op.c == TensorType::Edge;
        let needs_dst = !out_is_edge || inputs.iter().any(|i| i.ttype == TensorType::DstV);
        let needs_eid_load = view.csr && self.needs_eid();

        let mut block = 0;
        while block < plan.grid_blocks {
            sim.begin_block_scaled(block as u32, self.warp_scale(wpb));
            for w in self.traced_warps(wpb) {
                let item0 = block * tpb + w * 32;
                if item0 >= plan.num_items {
                    break;
                }
                let lane_items: Vec<(usize, usize, usize)> = (item0
                    ..(item0 + 32).min(plan.num_items))
                    .map(|item| {
                        let (tile, gidx) = self.decode_item(item);
                        (tile, (gidx * grp).min(ne), ((gidx + 1) * grp).min(ne))
                    })
                    .filter(|&(_, s, e)| s < e)
                    .collect();
                if lane_items.is_empty() {
                    continue;
                }
                let tile_len = self.tile_len(lane_items[0].0);
                sim.compute(self.item_overhead());

                for s in 0..grp {
                    let mut src_addrs = Vec::new();
                    let mut dst_addrs = Vec::new();
                    let mut eid_addrs = Vec::new();
                    let mut in_bases: Vec<Vec<u64>> = inputs.iter().map(|_| Vec::new()).collect();
                    let mut store_bases = Vec::new();
                    let mut conflict_groups = Vec::new();
                    let mut flushes = 0usize;
                    let mut active = 0usize;
                    for &(tile, estart, eend) in &lane_items {
                        let e = estart + s;
                        if e >= eend {
                            continue;
                        }
                        active += 1;
                        let src = view.src[e] as u64;
                        let dst = view.dst[e] as u64;
                        let eid = view.eid(e);
                        let tile_off = self.tile_off(tile);
                        src_addrs.push(view.src_base(&self.lay) + e as u64 * 4);
                        if needs_dst {
                            dst_addrs.push(view.dst_base(&self.lay) + e as u64 * 4);
                        }
                        if needs_eid_load {
                            eid_addrs.push(self.lay.in_eid + e as u64 * 4);
                        }
                        for (k, input) in inputs.iter().enumerate() {
                            let row = match input.ttype {
                                TensorType::SrcV => src,
                                TensorType::DstV => dst,
                                TensorType::Edge => eid,
                                TensorType::Null => unreachable!(),
                            };
                            in_bases[k].push(input.addr(&self.lay, row, tile_off));
                        }
                        if out_is_edge {
                            store_bases.push(self.lay.row_addr(self.lay.c, eid, tile_off));
                        } else {
                            // Register accumulation: flush only at the end
                            // of a same-destination run (or of the group).
                            let flush = e + 1 >= eend || view.dst[e + 1] as u64 != dst;
                            if flush {
                                flushes += 1;
                                store_bases.push(self.lay.row_addr(self.lay.c, dst, tile_off));
                                if plan.needs_atomic && tile == 0 {
                                    conflict_groups.push(dst);
                                }
                            }
                        }
                    }
                    if active == 0 {
                        break;
                    }
                    sim.load(Access::Scatter { addrs: src_addrs });
                    let mut cyc = costs::CYCLES_LOOP
                        + costs::CYCLES_PER_MEM_ISSUE
                        + tile_len as f64 * plan.arith_per_element() * costs::CYCLES_PER_ARITH;
                    if !dst_addrs.is_empty() {
                        sim.load(Access::Scatter { addrs: dst_addrs });
                        cyc += costs::CYCLES_PER_MEM_ISSUE;
                    }
                    if !eid_addrs.is_empty() {
                        sim.load(Access::Scatter { addrs: eid_addrs });
                        cyc += costs::CYCLES_PER_MEM_ISSUE;
                    }
                    for (k, bases) in in_bases.into_iter().enumerate() {
                        if !bases.is_empty() {
                            sim.load(Access::PerLaneRows {
                                bases,
                                bytes: inputs[k].bytes(tile_len),
                            });
                            cyc += inputs[k].issue_cycles(tile_len);
                        }
                    }
                    if !store_bases.is_empty() {
                        if plan.needs_atomic {
                            sim.atomic(
                                Access::PerLaneRows {
                                    bases: store_bases,
                                    bytes: (tile_len * 4) as u32,
                                },
                                conflict_groups,
                            );
                            // One warp-level atomic sequence per step in
                            // which any lane flushes (SIMT: the instruction
                            // issues once for all flushing lanes).
                            let _ = flushes;
                            cyc += tile_len as f64
                                * (costs::CYCLES_PER_MEM_ISSUE + costs::CYCLES_ATOMIC_ISSUE);
                        } else {
                            sim.store(Access::PerLaneRows {
                                bases: store_bases,
                                bytes: (tile_len * 4) as u32,
                            });
                            cyc += tile_len as f64 * costs::CYCLES_PER_MEM_ISSUE;
                        }
                    }
                    sim.compute(cyc);
                }
            }
            sim.end_block();
            block += self.stride;
        }
    }

    // ------------------------------------------------------------ warp-vertex

    fn warp_vertex(&self, sim: &mut KernelSim) {
        let plan = self.plan;
        let g = self.graph;
        let nv = g.num_vertices();
        let grp = plan.parallel.grouping;
        let wpb = plan.threads_per_block / 32;
        let inputs = self.inputs();
        let reads_src = plan.op.reads_src();
        let needs_eid = self.needs_eid();
        let out_is_edge = plan.op.c == TensorType::Edge;

        let mut block = 0;
        while block < plan.grid_blocks {
            sim.begin_block_scaled(block as u32, self.warp_scale(wpb));
            for w in self.traced_warps(wpb) {
                let item = block * wpb + w;
                if item >= plan.num_items {
                    break;
                }
                let (tile, gidx) = self.decode_item(item);
                let tile_off = self.tile_off(tile);
                let tile_len = self.tile_len(tile);
                let vstart = (gidx * grp).min(nv);
                let vend = ((gidx + 1) * grp).min(nv);
                sim.compute(self.item_overhead());

                for v in vstart..vend {
                    sim.load(Access::Coalesced {
                        base: self.lay.in_ptr + v as u64 * 8,
                        lanes: 4, // two 8-byte offsets
                    });
                    sim.compute(costs::CYCLES_PER_MEM_ISSUE);
                    for input in &inputs {
                        if input.ttype == TensorType::DstV {
                            self.warp_input(sim, input, v as u64, tile_off, tile_len);
                        }
                    }
                    for slot in g.in_ptr()[v]..g.in_ptr()[v + 1] {
                        let src = g.in_src()[slot];
                        let eid = g.in_eid()[slot];
                        let mut cyc = costs::CYCLES_LOOP;
                        if reads_src {
                            sim.load(Access::Broadcast {
                                addr: self.lay.in_src + slot as u64 * 4,
                            });
                            cyc += costs::CYCLES_PER_MEM_ISSUE;
                        }
                        if needs_eid {
                            sim.load(Access::Broadcast {
                                addr: self.lay.in_eid + slot as u64 * 4,
                            });
                            cyc += costs::CYCLES_PER_MEM_ISSUE;
                        }
                        let chunks = tile_len.div_ceil(32) as f64;
                        cyc += chunks * plan.arith_per_element() * costs::CYCLES_PER_ARITH;
                        sim.compute(cyc);
                        for input in &inputs {
                            let row = match input.ttype {
                                TensorType::SrcV => src as u64,
                                TensorType::Edge => eid as u64,
                                TensorType::DstV => continue, // loaded per vertex
                                TensorType::Null => unreachable!(),
                            };
                            self.warp_input(sim, input, row, tile_off, tile_len);
                        }
                        if out_is_edge {
                            self.warp_row(
                                sim, self.lay.c, eid as u64, tile_off, tile_len, true, None,
                            );
                        }
                    }
                    if !out_is_edge {
                        self.warp_row(sim, self.lay.c, v as u64, tile_off, tile_len, true, None);
                    }
                }
            }
            sim.end_block();
            block += self.stride;
        }
    }

    // -------------------------------------------------------------- warp-edge

    /// Warp-edge iterates the same order as thread-edge (CSR slots for
    /// reductions, COO for edge outputs) with lanes across the feature
    /// tile; same-destination runs accumulate in registers and flush one
    /// atomic per run.
    fn warp_edge(&self, sim: &mut KernelSim) {
        let plan = self.plan;
        let g = self.graph;
        let ne = g.num_edges();
        let grp = plan.parallel.grouping;
        let wpb = plan.threads_per_block / 32;
        let view = self.edge_view();
        let inputs = self.inputs();
        let out_is_edge = plan.op.c == TensorType::Edge;
        let needs_eid_load = view.csr && self.needs_eid();

        let mut block = 0;
        while block < plan.grid_blocks {
            sim.begin_block_scaled(block as u32, self.warp_scale(wpb));
            for w in self.traced_warps(wpb) {
                let item = block * wpb + w;
                if item >= plan.num_items {
                    break;
                }
                let (tile, gidx) = self.decode_item(item);
                let tile_off = self.tile_off(tile);
                let tile_len = self.tile_len(tile);
                let estart = (gidx * grp).min(ne);
                let eend = ((gidx + 1) * grp).min(ne);
                sim.compute(self.item_overhead());

                for e in estart..eend {
                    let src = view.src[e] as u64;
                    let dst = view.dst[e] as u64;
                    let eid = view.eid(e);
                    sim.load(Access::Broadcast {
                        addr: view.src_base(&self.lay) + e as u64 * 4,
                    });
                    sim.load(Access::Broadcast {
                        addr: view.dst_base(&self.lay) + e as u64 * 4,
                    });
                    if needs_eid_load {
                        sim.load(Access::Broadcast {
                            addr: self.lay.in_eid + e as u64 * 4,
                        });
                        sim.compute(costs::CYCLES_PER_MEM_ISSUE);
                    }
                    let chunks = tile_len.div_ceil(32) as f64;
                    sim.compute(
                        costs::CYCLES_LOOP
                            + 2.0 * costs::CYCLES_PER_MEM_ISSUE
                            + chunks * plan.arith_per_element() * costs::CYCLES_PER_ARITH,
                    );
                    for input in &inputs {
                        let row = match input.ttype {
                            TensorType::SrcV => src,
                            TensorType::DstV => dst,
                            TensorType::Edge => eid,
                            TensorType::Null => unreachable!(),
                        };
                        self.warp_input(sim, input, row, tile_off, tile_len);
                    }
                    if out_is_edge {
                        self.warp_row(sim, self.lay.c, eid, tile_off, tile_len, true, None);
                    } else {
                        // Flush the register accumulator at the end of a
                        // same-destination run.
                        let flush = e + 1 >= eend || view.dst[e + 1] as u64 != dst;
                        if flush {
                            let group = if plan.needs_atomic && tile == 0 {
                                Some(dst)
                            } else {
                                None
                            };
                            self.warp_row(
                                sim,
                                self.lay.c,
                                dst,
                                tile_off,
                                tile_len,
                                true,
                                Some(group),
                            );
                        }
                    }
                }
            }
            sim.end_block();
            block += self.stride;
        }
    }

    /// Emits the load of one input operand by a warp: a single broadcast
    /// for scalar operands, a coalesced tile sweep otherwise.
    fn warp_input(
        &self,
        sim: &mut KernelSim,
        input: &InputSpec,
        row: u64,
        tile_off: usize,
        tile_len: usize,
    ) {
        if input.scalar {
            sim.load(Access::Broadcast {
                addr: input.addr(&self.lay, row, tile_off),
            });
            sim.compute(costs::CYCLES_PER_MEM_ISSUE);
        } else {
            self.warp_row(sim, input.base, row, tile_off, tile_len, false, None);
        }
    }

    /// Emits a coalesced warp sweep over one feature-row tile. `atomic` is
    /// `Some(group)` for atomic updates (with an optional conflict group on
    /// the first chunk).
    #[allow(clippy::too_many_arguments)]
    fn warp_row(
        &self,
        sim: &mut KernelSim,
        base: u64,
        row: u64,
        tile_off: usize,
        tile_len: usize,
        is_store: bool,
        atomic: Option<Option<u64>>,
    ) {
        let mut off = 0usize;
        let mut first = true;
        while off < tile_len {
            let lanes = (tile_len - off).min(32) as u32;
            let access = Access::Coalesced {
                base: self.lay.row_addr(base, row, tile_off + off),
                lanes,
            };
            match atomic {
                Some(group) => {
                    let groups: Vec<u64> = if first {
                        group.into_iter().collect()
                    } else {
                        vec![]
                    };
                    sim.atomic(access, groups);
                    sim.compute(costs::CYCLES_PER_MEM_ISSUE + costs::CYCLES_ATOMIC_ISSUE);
                }
                None => {
                    if is_store {
                        sim.store(access);
                    } else {
                        sim.load(access);
                    }
                    sim.compute(costs::CYCLES_PER_MEM_ISSUE);
                }
            }
            off += 32;
            first = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OpInfo;
    use crate::schedule::ParallelInfo;
    use ugrapher_graph::generate::{uniform_random, GraphSpec};

    fn v100() -> MeasureOptions {
        MeasureOptions::new(DeviceConfig::v100())
    }

    fn plan_for(g: &Graph, op: OpInfo, p: ParallelInfo, feat: usize) -> KernelPlan {
        KernelPlan::generate(op, p, g.num_vertices(), g.num_edges(), feat).unwrap()
    }

    #[test]
    fn all_strategies_produce_time() {
        let g = uniform_random(500, 2500, 1);
        for p in ParallelInfo::basics() {
            let plan = plan_for(&g, OpInfo::aggregation_sum(), p, 16);
            let r = measure(&g, &plan, &v100());
            assert!(r.time_ms > 0.0, "{p}: zero time");
            assert!(r.dram_bytes > 0.0, "{p}: no traffic");
        }
    }

    #[test]
    fn atomics_only_for_edge_parallel_reductions() {
        let g = uniform_random(300, 1500, 2);
        let agg = OpInfo::aggregation_sum();
        for (p, expect_atomics) in [
            (ParallelInfo::basic(Strategy::ThreadVertex), false),
            (ParallelInfo::basic(Strategy::WarpVertex), false),
            (ParallelInfo::basic(Strategy::ThreadEdge), true),
            (ParallelInfo::basic(Strategy::WarpEdge), true),
        ] {
            let plan = plan_for(&g, agg, p, 16);
            let r = measure(&g, &plan, &v100());
            assert_eq!(r.atomic_ops > 0.0, expect_atomics, "{p}");
        }
    }

    #[test]
    fn message_creation_never_atomic() {
        let g = uniform_random(300, 1500, 3);
        for p in ParallelInfo::basics() {
            let plan = plan_for(&g, OpInfo::message_creation_add(), p, 16);
            let r = measure(&g, &plan, &v100());
            assert_eq!(r.atomic_ops, 0.0, "{p}");
        }
    }

    #[test]
    fn conflict_chain_tracks_max_degree() {
        // Star graph: all edges point at vertex 0 -> the conflict chain on
        // vertex 0 equals the edge count under thread-edge.
        let n = 200usize;
        let src: Vec<u32> = (1..n as u32).collect();
        let dst = vec![0u32; n - 1];
        let g = Graph::from_edges(n, src, dst).unwrap();
        let plan = plan_for(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
            8,
        );
        let r = measure(&g, &plan, &v100());
        assert!((r.max_atomic_conflict - (n as f64 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn warp_strategies_add_parallelism_on_small_graphs() {
        // Paper Table 6: warp-vertex raises parallelism over thread-vertex.
        // On a small graph, thread-vertex launches only a handful of blocks
        // and leaves most SMs idle; warp-vertex launches 32x more warps.
        let g = uniform_random(1000, 5000, 4);
        let agg = OpInfo::aggregation_sum();
        let r_tv = measure(
            &g,
            &plan_for(&g, agg, ParallelInfo::basic(Strategy::ThreadVertex), 64),
            &v100(),
        );
        let r_wv = measure(
            &g,
            &plan_for(&g, agg, ParallelInfo::basic(Strategy::WarpVertex), 64),
            &v100(),
        );
        assert!(
            r_wv.sm_efficiency > r_tv.sm_efficiency,
            "warp-vertex sm_eff {} !> thread-vertex sm_eff {}",
            r_wv.sm_efficiency,
            r_tv.sm_efficiency
        );
    }

    #[test]
    fn csr_order_grouping_accumulates_same_destination_runs() {
        // Edge-parallel reductions iterate dst-sorted slots, so a grouped
        // thread accumulates same-destination edges in registers and
        // issues far fewer atomics than ungrouped execution.
        let g = uniform_random(500, 10_000, 8); // mean degree 20
        let agg = OpInfo::aggregation_sum();
        let base = measure(
            &g,
            &plan_for(&g, agg, ParallelInfo::new(Strategy::ThreadEdge, 1, 1), 16),
            &v100(),
        );
        let grouped = measure(
            &g,
            &plan_for(&g, agg, ParallelInfo::new(Strategy::ThreadEdge, 16, 1), 16),
            &v100(),
        );
        assert_eq!(base.atomic_ops, 10_000.0, "one atomic per edge ungrouped");
        assert!(
            grouped.atomic_ops < base.atomic_ops * 0.5,
            "grouping must merge same-dst runs: {} vs {}",
            grouped.atomic_ops,
            base.atomic_ops
        );
        // And the hottest conflict chain shrinks accordingly.
        assert!(grouped.max_atomic_conflict < base.max_atomic_conflict);
    }

    #[test]
    fn message_creation_edge_writes_are_coalesced() {
        // Edge-output operators iterate COO order: consecutive lanes write
        // consecutive edge rows, which the coalescer merges. With feature
        // dim 1 the whole warp's 32 stores fit in 4 sectors.
        let g = uniform_random(2000, 20_000, 9);
        let op = OpInfo::message_creation_copy_src();
        let r = measure(
            &g,
            &plan_for(&g, op, ParallelInfo::basic(Strategy::ThreadEdge), 1),
            &v100(),
        );
        // Total transactions stay well below one per edge per tensor
        // (reads of src ids + scattered src rows + coalesced writes).
        assert!(
            r.l1_transactions < 3.0 * g.num_edges() as f64,
            "transactions {} too high for coalesced edge writes",
            r.l1_transactions
        );
    }

    #[test]
    fn edge_parallel_has_more_parallelism_on_skewed_graphs() {
        let g = GraphSpec {
            num_vertices: 3000,
            num_edges: 30_000,
            degree_model: ugrapher_graph::generate::DegreeModel::PowerLaw { alpha: 1.8 },
            locality: 0.0,
            seed: 5,
        }
        .build();
        let agg = OpInfo::aggregation_sum();
        let we = measure(
            &g,
            &plan_for(&g, agg, ParallelInfo::basic(Strategy::WarpEdge), 32),
            &v100(),
        );
        let wv = measure(
            &g,
            &plan_for(&g, agg, ParallelInfo::basic(Strategy::WarpVertex), 32),
            &v100(),
        );
        assert!(
            we.achieved_occupancy > wv.achieved_occupancy,
            "warp-edge occ {} !> warp-vertex occ {} on skewed graph",
            we.achieved_occupancy,
            wv.achieved_occupancy
        );
    }

    #[test]
    fn sampled_fidelity_approximates_full() {
        let g = uniform_random(4000, 40_000, 6);
        let plan = plan_for(
            &g,
            OpInfo::aggregation_sum(),
            ParallelInfo::basic(Strategy::ThreadEdge),
            16,
        );
        let full = measure(&g, &plan, &v100());
        let sampled = measure(
            &g,
            &plan,
            &MeasureOptions::new(DeviceConfig::v100()).with_fidelity(Fidelity::Sampled(7)),
        );
        let ratio = sampled.time_ms / full.time_ms;
        assert!(
            (0.5..2.0).contains(&ratio),
            "sampled/full time ratio {ratio}"
        );
        let traffic_ratio = sampled.l1_transactions / full.l1_transactions;
        assert!(
            (0.7..1.4).contains(&traffic_ratio),
            "traffic ratio {traffic_ratio}"
        );
    }

    #[test]
    fn grouping_reduces_grid_and_changes_time() {
        let g = uniform_random(2000, 20_000, 7);
        let agg = OpInfo::aggregation_sum();
        let base = plan_for(&g, agg, ParallelInfo::new(Strategy::ThreadEdge, 1, 1), 16);
        let grouped = plan_for(&g, agg, ParallelInfo::new(Strategy::ThreadEdge, 8, 1), 16);
        assert!(grouped.grid_blocks < base.grid_blocks);
        let r1 = measure(&g, &base, &v100());
        let r2 = measure(&g, &grouped, &v100());
        assert!(r1.time_ms > 0.0 && r2.time_ms > 0.0);
    }

    #[test]
    fn sampling_resolution_is_coprime_with_sms() {
        assert_eq!(
            resolve_sampling(Fidelity::Full, 10_000, 8, 32.0, 80),
            (1, 1)
        );
        let (s, w) = resolve_sampling(Fidelity::Sampled(8), 10_000, 8, 32.0, 80);
        assert_eq!(gcd(s, 80), 1);
        assert_eq!(w, 1);
        let (s, _) = resolve_sampling(Fidelity::Auto, 1_000_000, 8, 32.0, 80);
        assert!(s > 1);
        assert_eq!(gcd(s, 80), 1);
    }

    #[test]
    fn heavy_blocks_thin_warps_even_on_small_grids() {
        // 100 light blocks: nothing to thin.
        let (bs, ws) = resolve_sampling(Fidelity::Auto, 100, 8, 32.0, 80);
        assert_eq!((bs, ws), (1, 1));
        // 200 blocks whose warps each visit ~2048 edges (G=64 thread
        // strategy): warp sampling kicks in first, then block thinning.
        let (bs, ws) = resolve_sampling(Fidelity::Auto, 200, 8, 2048.0, 80);
        assert_eq!(ws, 8, "warp stride must max out for heavy warps");
        assert!(bs > 1, "block thinning follows once warps are exhausted");
        assert!(200usize.div_ceil(bs) >= 32);
    }

    #[test]
    fn auto_sampling_keeps_minimum_signal() {
        // Even absurdly heavy plans keep >= 32 traced blocks.
        let (bs, _) = resolve_sampling(Fidelity::Auto, 64, 8, 1e9, 80);
        assert!(64usize.div_ceil(bs) >= 32);
    }

    #[test]
    fn write_log_matches_atomic_analysis() {
        let g = uniform_random(300, 2400, 11); // mean degree 8
        let d = DeviceConfig::v100();
        let agg = OpInfo::aggregation_sum();
        // Vertex-parallel: every output word has exactly one writer.
        let tv = collect_writes(
            &g,
            &plan_for(&g, agg, ParallelInfo::basic(Strategy::ThreadVertex), 8),
            &d,
        )
        .unwrap();
        assert!(!tv.has_conflicts(), "thread-vertex must not contend");
        // Edge-parallel reduction: destinations shared across items
        // contend, but every write is atomic (protected).
        let te = collect_writes(
            &g,
            &plan_for(&g, agg, ParallelInfo::basic(Strategy::ThreadEdge), 8),
            &d,
        )
        .unwrap();
        assert!(te.has_conflicts(), "thread-edge reduction must contend");
        assert!(
            te.unprotected_addresses().is_empty(),
            "contended words must be atomic-only"
        );
    }

    #[test]
    fn write_log_edge_outputs_have_single_writers() {
        let g = uniform_random(200, 1600, 12);
        let d = DeviceConfig::v100();
        for p in ParallelInfo::basics() {
            let log = collect_writes(&g, &plan_for(&g, OpInfo::message_creation_add(), p, 8), &d)
                .unwrap();
            assert!(!log.has_conflicts(), "{p}: per-edge rows are exclusive");
            assert_eq!(
                log.num_addresses(),
                g.num_edges() * 8,
                "{p}: every output word written"
            );
        }
    }

    use ugrapher_graph::Graph;
}
