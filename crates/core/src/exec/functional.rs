//! Schedule-independent functional evaluation of graph operators.

use ugrapher_graph::Graph;
use ugrapher_tensor::Tensor2;

use crate::abstraction::{GatherOp, OpInfo, TensorType};
use crate::CoreError;

/// The tensor operands of one operator invocation (matching the `Tensor_A`
/// / `Tensor_B` arguments of the paper's API, Fig. 9).
#[derive(Debug, Clone, Copy)]
pub struct OpOperands<'a> {
    /// Operand A (present iff `op.a != Null`).
    pub a: Option<&'a Tensor2>,
    /// Operand B (present iff `op.b != Null`).
    pub b: Option<&'a Tensor2>,
}

impl<'a> OpOperands<'a> {
    /// Operands for a unary operator (B is `Null`).
    pub fn single(a: &'a Tensor2) -> Self {
        Self {
            a: Some(a),
            b: None,
        }
    }

    /// Operands for a binary operator.
    pub fn pair(a: &'a Tensor2, b: &'a Tensor2) -> Self {
        Self {
            a: Some(a),
            b: Some(b),
        }
    }
}

/// Validates one operand against its declared type and the graph shape;
/// returns its feature dimension if present.
fn check_operand(
    operand: char,
    tensor_type: TensorType,
    tensor: Option<&Tensor2>,
    graph: &Graph,
) -> Result<Option<usize>, CoreError> {
    let expected_rows = match tensor_type {
        TensorType::SrcV | TensorType::DstV => graph.num_vertices(),
        TensorType::Edge => graph.num_edges(),
        TensorType::Null => {
            return if tensor.is_some() {
                Err(CoreError::BadOperand {
                    operand,
                    tensor_type,
                    reason: "tensor supplied for a Null operand".to_owned(),
                })
            } else {
                Ok(None)
            }
        }
    };
    let Some(t) = tensor else {
        return Err(CoreError::BadOperand {
            operand,
            tensor_type,
            reason: "operand tensor missing".to_owned(),
        });
    };
    if t.rows() != expected_rows {
        return Err(CoreError::BadOperand {
            operand,
            tensor_type,
            reason: format!("expected {expected_rows} rows, found {}", t.rows()),
        });
    }
    Ok(Some(t.cols()))
}

/// Validates operands and returns the common feature dimension.
///
/// An operand with a single column against a wider partner is a *scalar
/// broadcast* (DGL's `u_mul_e`-style semantics, e.g. one weight per edge
/// multiplying a full feature row).
pub(crate) fn check_shapes(
    graph: &Graph,
    op: &OpInfo,
    operands: &OpOperands<'_>,
) -> Result<usize, CoreError> {
    op.validate()?;
    let fa = check_operand('A', op.a, operands.a, graph)?;
    let fb = check_operand('B', op.b, operands.b, graph)?;
    let feat = match (fa, fb) {
        (Some(x), Some(y)) if x != y && x != 1 && y != 1 => {
            return Err(CoreError::FeatureMismatch {
                expected: x,
                found: y,
            })
        }
        (Some(x), Some(y)) => x.max(y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => unreachable!("validate() requires at least one operand"),
    };
    if feat == 0 {
        return Err(CoreError::FeatureMismatch {
            expected: 1,
            found: 0,
        });
    }
    Ok(feat)
}

/// Evaluates `op` over the graph, producing the output tensor.
///
/// The result is independent of any schedule: this is the reference
/// semantics against which every scheduled execution is defined.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid or the operands'
/// shapes do not match their declared [`TensorType`]s.
///
/// # Example
///
/// ```
/// use ugrapher_core::abstraction::OpInfo;
/// use ugrapher_core::exec::{execute, OpOperands};
/// use ugrapher_graph::Graph;
/// use ugrapher_tensor::Tensor2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(3, vec![0, 1], vec![2, 2])?;
/// let x = Tensor2::from_fn(3, 2, |r, _| r as f32);
/// let out = execute(&g, &OpInfo::aggregation_sum(), &OpOperands::single(&x))?;
/// assert_eq!(out.row(2), &[1.0, 1.0]); // 0 + 1 from both in-neighbors
/// # Ok(())
/// # }
/// ```
pub fn execute(
    graph: &Graph,
    op: &OpInfo,
    operands: &OpOperands<'_>,
) -> Result<Tensor2, CoreError> {
    execute_traced(graph, op, operands, ugrapher_obs::global(), 0)
}

/// [`execute`] with tracing: emits one `"exec.functional"` span on
/// `recorder`, carrying the operator label and output shape.
///
/// # Errors
///
/// Returns [`CoreError`] if the operator is invalid or the operands'
/// shapes do not match their declared [`TensorType`]s.
pub fn execute_traced(
    graph: &Graph,
    op: &OpInfo,
    operands: &OpOperands<'_>,
    recorder: &ugrapher_obs::Recorder,
    trace_id: u64,
) -> Result<Tensor2, CoreError> {
    let mut span = recorder.span_traced("exec.functional", ugrapher_obs::SpanKind::Exec, trace_id);
    let result = execute_inner(graph, op, operands);
    if span.is_enabled() {
        span.attr("op", op.label()).attr("ok", result.is_ok());
        if let Ok(out) = &result {
            span.attr("rows", out.rows()).attr("feat", out.cols());
        }
    }
    result
}

fn execute_inner(
    graph: &Graph,
    op: &OpInfo,
    operands: &OpOperands<'_>,
) -> Result<Tensor2, CoreError> {
    let feat = check_shapes(graph, op, operands)?;
    let nv = graph.num_vertices();
    let ne = graph.num_edges();
    let out_rows = match op.c {
        TensorType::Edge => ne,
        TensorType::DstV => nv,
        _ => unreachable!("validate() restricts C"),
    };

    let init = if op.gather_op.is_reduction() {
        op.gather_op.identity()
    } else {
        0.0
    };
    let mut out = Tensor2::full(out_rows, feat, init);

    fn fetch_row(
        t: TensorType,
        tensor: Option<&Tensor2>,
        src: u32,
        dst: usize,
        eid: u32,
    ) -> Option<&[f32]> {
        tensor.map(|ten| match t {
            TensorType::SrcV => ten.row(src as usize),
            TensorType::DstV => ten.row(dst),
            TensorType::Edge => ten.row(eid as usize),
            TensorType::Null => unreachable!(),
        })
    }

    for dst in 0..nv {
        for (src, eid) in graph.in_neighbors(dst) {
            let a_row = fetch_row(op.a, operands.a, src, dst, eid);
            let b_row = fetch_row(op.b, operands.b, src, dst, eid);
            let c_row_idx = match op.c {
                TensorType::Edge => eid as usize,
                _ => dst,
            };
            let c_row = out.row_mut(c_row_idx);
            for f in 0..feat {
                // A one-column operand broadcasts its single value; any
                // other width was already checked to equal `feat` by
                // `check_shapes`, so the indexing is strict — no silent
                // clamping of mismatched rows.
                let at = |r: &[f32]| if r.len() == 1 { r[0] } else { r[f] };
                let av = a_row.map_or(0.0, at);
                let bv = b_row.map_or(0.0, at);
                let tmp = op.edge_op.apply(av, bv);
                c_row[f] = op.gather_op.apply(c_row[f], tmp);
            }
        }
    }

    // Post-passes over vertex outputs: mean normalization and the
    // zero-default for reduction identities on isolated vertices.
    if op.c == TensorType::DstV {
        for dst in 0..nv {
            let deg = graph.in_degree(dst);
            let row = out.row_mut(dst);
            if deg == 0 {
                row.fill(0.0);
            } else if op.gather_op == GatherOp::Mean {
                let inv = 1.0 / deg as f32;
                for v in row.iter_mut() {
                    *v *= inv;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{EdgeOp, GatherOp};

    /// 0 -> 2, 1 -> 2, 2 -> 0 triangle-ish graph used across tests.
    fn graph() -> Graph {
        Graph::from_edges(3, vec![0, 1, 2], vec![2, 2, 0]).unwrap()
    }

    fn feats() -> Tensor2 {
        Tensor2::from_fn(3, 2, |r, c| (r * 10 + c) as f32)
    }

    #[test]
    fn aggregation_sum_matches_hand_computation() {
        let out = execute(
            &graph(),
            &OpInfo::aggregation_sum(),
            &OpOperands::single(&feats()),
        )
        .unwrap();
        // dst 2 <- src 0 (0,1) + src 1 (10,11) = (10, 12)
        assert_eq!(out.row(2), &[10.0, 12.0]);
        // dst 0 <- src 2 (20, 21)
        assert_eq!(out.row(0), &[20.0, 21.0]);
        // dst 1 has no in-edges -> zeros
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn aggregation_max_and_isolated_vertices() {
        let out = execute(
            &graph(),
            &OpInfo::aggregation_max(),
            &OpOperands::single(&feats()),
        )
        .unwrap();
        assert_eq!(out.row(2), &[10.0, 11.0]);
        assert_eq!(out.row(1), &[0.0, 0.0], "isolated vertex defaults to 0");
    }

    #[test]
    fn aggregation_mean_divides_by_degree() {
        let out = execute(
            &graph(),
            &OpInfo::aggregation_mean(),
            &OpOperands::single(&feats()),
        )
        .unwrap();
        assert_eq!(out.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn weighted_sum_uses_edge_tensor() {
        let g = graph();
        let w = Tensor2::from_fn(3, 2, |r, _| (r + 1) as f32); // per-edge weights
        let out = execute(
            &g,
            &OpInfo::weighted_aggregation_sum(),
            &OpOperands::pair(&feats(), &w),
        )
        .unwrap();
        // dst 2: edge0 (src0 * 1) + edge1 (src1 * 2) = (0,1) + (20,22)
        assert_eq!(out.row(2), &[20.0, 23.0]);
    }

    #[test]
    fn message_creation_writes_per_edge() {
        let g = graph();
        let out = execute(
            &g,
            &OpInfo::message_creation_add(),
            &OpOperands::pair(&feats(), &feats()),
        )
        .unwrap();
        assert_eq!(out.rows(), g.num_edges());
        // edge 0: src 0 + dst 2 = (0+20, 1+21)
        assert_eq!(out.row(0), &[20.0, 22.0]);
    }

    #[test]
    fn min_gather() {
        let op = OpInfo::new(
            EdgeOp::CopyLhs,
            GatherOp::Min,
            TensorType::SrcV,
            TensorType::Null,
            TensorType::DstV,
        )
        .unwrap();
        let out = execute(&graph(), &op, &OpOperands::single(&feats())).unwrap();
        assert_eq!(out.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn shape_validation_rejects_wrong_rows() {
        let bad = Tensor2::zeros(5, 2);
        let err = execute(
            &graph(),
            &OpInfo::aggregation_sum(),
            &OpOperands::single(&bad),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadOperand { operand: 'A', .. }));
    }

    #[test]
    fn shape_validation_rejects_feature_mismatch() {
        let a = Tensor2::zeros(3, 2);
        let b = Tensor2::zeros(3, 3);
        let err = execute(
            &graph(),
            &OpInfo::message_creation_add(),
            &OpOperands::pair(&a, &b),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::FeatureMismatch { .. }));
    }

    #[test]
    fn missing_operand_rejected() {
        let err = execute(
            &graph(),
            &OpInfo::weighted_aggregation_sum(),
            &OpOperands::single(&feats()),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadOperand { operand: 'B', .. }));
    }

    #[test]
    fn superfluous_operand_rejected() {
        let err = execute(
            &graph(),
            &OpInfo::aggregation_sum(),
            &OpOperands::pair(&feats(), &feats()),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadOperand { operand: 'B', .. }));
    }

    #[test]
    fn zero_feature_dim_is_rejected_up_front() {
        // A 0-column operand must be a typed error, not an indexing panic
        // (the old clamp `f.min(r.len() - 1)` underflowed on empty rows).
        let empty = Tensor2::zeros(3, 0);
        let err = execute(
            &graph(),
            &OpInfo::aggregation_sum(),
            &OpOperands::single(&empty),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::FeatureMismatch { found: 0, .. }));
        // Mixed with a wide partner it is a mismatch, not a broadcast.
        let wide = Tensor2::zeros(3, 4);
        let err = execute(
            &graph(),
            &OpInfo::message_creation_add(),
            &OpOperands::pair(&wide, &empty),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::FeatureMismatch { .. }));
    }

    #[test]
    fn empty_graph_yields_empty_output() {
        let g = Graph::from_edges(0, vec![], vec![]).unwrap();
        let x = Tensor2::zeros(0, 4);
        let out = execute(&g, &OpInfo::aggregation_sum(), &OpOperands::single(&x)).unwrap();
        assert_eq!(out.rows(), 0);
        assert_eq!(out.cols(), 4);
    }

    #[test]
    fn division_edge_op() {
        let op = OpInfo::new(
            EdgeOp::Div,
            GatherOp::Sum,
            TensorType::SrcV,
            TensorType::Edge,
            TensorType::DstV,
        )
        .unwrap();
        let g = graph();
        let w = Tensor2::full(3, 2, 2.0);
        let out = execute(&g, &op, &OpOperands::pair(&feats(), &w)).unwrap();
        assert_eq!(out.row(0), &[10.0, 10.5]); // (20,21)/2
    }
}
