//! Operator execution.
//!
//! Execution is split exactly along the paper's computation/schedule
//! decoupling:
//!
//! * [`functional`] evaluates an operator's *semantics* — the result is
//!   schedule-independent by construction (the property the paper's
//!   correctness argument rests on);
//! * [`trace`] walks a [`crate::plan::KernelPlan`]'s schedule over the
//!   graph, emitting warp-level memory accesses and compute cycles into the
//!   `ugrapher-sim` GPU model to obtain a [`ugrapher_sim::SimReport`].

pub mod functional;
pub mod trace;

pub use functional::{execute, OpOperands};
pub use trace::{collect_writes, measure, Fidelity, MeasureOptions};
