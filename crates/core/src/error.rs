use std::error::Error;
use std::fmt;

use crate::abstraction::{OpInfo, TensorType};

/// Errors produced by operator validation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The `(edge_op, gather_op, A, B, C)` combination is not a legal graph
    /// operator under the Table 4 rules.
    InvalidOperator {
        /// The rejected operator.
        op: OpInfo,
        /// Why it was rejected.
        reason: String,
    },
    /// A tensor operand required by the operator was not supplied, or has
    /// the wrong number of rows for its [`TensorType`].
    BadOperand {
        /// Which operand (`'A'`, `'B'` or `'C'`).
        operand: char,
        /// Its declared type.
        tensor_type: TensorType,
        /// What went wrong.
        reason: String,
    },
    /// Operand feature dimensions disagree.
    FeatureMismatch {
        /// Feature dimension of the first non-null operand.
        expected: usize,
        /// The mismatching dimension found.
        found: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidOperator { op, reason } => {
                write!(f, "invalid graph operator {op:?}: {reason}")
            }
            CoreError::BadOperand {
                operand,
                tensor_type,
                reason,
            } => write!(f, "bad operand {operand} ({tensor_type:?}): {reason}"),
            CoreError::FeatureMismatch { expected, found } => {
                write!(f, "feature dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OpInfo;

    #[test]
    fn display_is_nonempty() {
        let e = CoreError::InvalidOperator {
            op: OpInfo::aggregation_sum(),
            reason: "test".into(),
        };
        assert!(!e.to_string().is_empty());
    }
}
