use std::error::Error;
use std::fmt;

use crate::abstraction::{OpInfo, TensorType};

/// Errors produced by operator validation, tuning and execution.
///
/// This is the single error type every public `ugrapher-core` entry point
/// returns. The variants form a small taxonomy (documented in DESIGN.md):
///
/// * **caller input** — [`InvalidOperator`](CoreError::InvalidOperator),
///   [`BadOperand`](CoreError::BadOperand),
///   [`FeatureMismatch`](CoreError::FeatureMismatch),
///   [`GraphInvalid`](CoreError::GraphInvalid),
///   [`TensorInvalid`](CoreError::TensorInvalid),
///   [`InvalidSchedule`](CoreError::InvalidSchedule),
///   [`DeviceInvalid`](CoreError::DeviceInvalid) — the request itself is
///   malformed; fix the inputs and retry.
/// * **tuning** — [`TuningFailed`](CoreError::TuningFailed),
///   [`BudgetExceeded`](CoreError::BudgetExceeded) — schedule selection
///   could not complete; execution with an explicit schedule still works.
/// * **shield** — [`Internal`](CoreError::Internal) — a bug inside the
///   library was caught by the panic shield instead of aborting the
///   process; report it, and retry with different inputs if possible.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The `(edge_op, gather_op, A, B, C)` combination is not a legal graph
    /// operator under the Table 4 rules.
    InvalidOperator {
        /// The rejected operator.
        op: OpInfo,
        /// Why it was rejected.
        reason: String,
    },
    /// A tensor operand required by the operator was not supplied, or has
    /// the wrong number of rows for its [`TensorType`].
    BadOperand {
        /// Which operand (`'A'`, `'B'` or `'C'`).
        operand: char,
        /// Its declared type.
        tensor_type: TensorType,
        /// What went wrong.
        reason: String,
    },
    /// Operand feature dimensions disagree.
    FeatureMismatch {
        /// Feature dimension of the first non-null operand.
        expected: usize,
        /// The mismatching dimension found.
        found: usize,
    },
    /// The input graph fails structural validation (non-monotone CSR
    /// pointers, out-of-bounds endpoints, broken edge-id bijection, ...).
    GraphInvalid {
        /// What the validator found.
        reason: String,
    },
    /// An operand tensor is malformed (e.g. contains NaN or infinity).
    TensorInvalid {
        /// What the validator found.
        reason: String,
    },
    /// A [`ParallelInfo`](crate::schedule::ParallelInfo) is not a legal
    /// schedule (zero knobs, or out of the supported space).
    InvalidSchedule {
        /// What the validator found.
        reason: String,
    },
    /// The simulated device configuration is unusable (zero SMs, zero
    /// clock, ...).
    DeviceInvalid {
        /// What the validator found.
        reason: String,
    },
    /// Schedule selection failed outright (no candidates, every candidate
    /// illegal, predictor unusable with no viable fallback).
    TuningFailed {
        /// Why tuning could not produce a schedule.
        reason: String,
    },
    /// A [`TuneBudget`](crate::tune::TuneBudget) expired before even one
    /// candidate could be measured, so there is no best-so-far to return.
    BudgetExceeded {
        /// Which budget expired and where.
        reason: String,
    },
    /// A bug inside the library reached the panic shield. The process
    /// survives; the payload is preserved for diagnosis.
    Internal {
        /// The captured panic message or invariant violation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidOperator { op, reason } => {
                write!(f, "invalid graph operator {op:?}: {reason}")
            }
            CoreError::BadOperand {
                operand,
                tensor_type,
                reason,
            } => write!(f, "bad operand {operand} ({tensor_type:?}): {reason}"),
            CoreError::FeatureMismatch { expected, found } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, found {found}"
                )
            }
            CoreError::GraphInvalid { reason } => write!(f, "invalid graph: {reason}"),
            CoreError::TensorInvalid { reason } => write!(f, "invalid tensor: {reason}"),
            CoreError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            CoreError::DeviceInvalid { reason } => write!(f, "invalid device config: {reason}"),
            CoreError::TuningFailed { reason } => write!(f, "tuning failed: {reason}"),
            CoreError::BudgetExceeded { reason } => write!(f, "tuning budget exceeded: {reason}"),
            CoreError::Internal { reason } => {
                write!(f, "internal error (caught by panic shield): {reason}")
            }
        }
    }
}

impl Error for CoreError {}

impl From<ugrapher_graph::GraphError> for CoreError {
    fn from(e: ugrapher_graph::GraphError) -> Self {
        CoreError::GraphInvalid {
            reason: e.to_string(),
        }
    }
}

impl From<ugrapher_tensor::TensorError> for CoreError {
    fn from(e: ugrapher_tensor::TensorError) -> Self {
        CoreError::TensorInvalid {
            reason: e.to_string(),
        }
    }
}

impl From<ugrapher_sim::SimError> for CoreError {
    fn from(e: ugrapher_sim::SimError) -> Self {
        CoreError::DeviceInvalid {
            reason: e.to_string(),
        }
    }
}

impl CoreError {
    /// Build an [`Internal`](CoreError::Internal) error from a caught panic
    /// payload, preserving string messages.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        CoreError::Internal { reason }
    }

    /// `true` for variants caused by the caller's inputs (as opposed to
    /// tuning degradation or internal bugs).
    pub fn is_input_error(&self) -> bool {
        matches!(
            self,
            CoreError::InvalidOperator { .. }
                | CoreError::BadOperand { .. }
                | CoreError::FeatureMismatch { .. }
                | CoreError::GraphInvalid { .. }
                | CoreError::TensorInvalid { .. }
                | CoreError::InvalidSchedule { .. }
                | CoreError::DeviceInvalid { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::OpInfo;

    #[test]
    fn display_is_nonempty() {
        let cases = [
            CoreError::InvalidOperator {
                op: OpInfo::aggregation_sum(),
                reason: "test".into(),
            },
            CoreError::GraphInvalid {
                reason: "test".into(),
            },
            CoreError::TensorInvalid {
                reason: "test".into(),
            },
            CoreError::InvalidSchedule {
                reason: "test".into(),
            },
            CoreError::DeviceInvalid {
                reason: "test".into(),
            },
            CoreError::TuningFailed {
                reason: "test".into(),
            },
            CoreError::BudgetExceeded {
                reason: "test".into(),
            },
            CoreError::Internal {
                reason: "test".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_panic_preserves_message() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom".to_string());
        let e = CoreError::from_panic(payload);
        assert_eq!(
            e,
            CoreError::Internal {
                reason: "boom".into()
            }
        );
        assert!(!e.is_input_error());
    }

    #[test]
    fn graph_error_converts() {
        let ge = ugrapher_graph::GraphError::VertexOutOfBounds {
            vertex: 9,
            num_vertices: 3,
        };
        let ce: CoreError = ge.into();
        assert!(matches!(ce, CoreError::GraphInvalid { .. }));
        assert!(ce.is_input_error());
    }
}
