//! The unified `uGrapher` API (paper §5.1, Fig. 9).
//!
//! ```text
//! op_info       = [edge_op, gather_op, Tensor_A, A_Type, Tensor_B, B_Type,
//!                  Tensor_C, C_Type]
//! parallel_info = [parallel_strategy, Grouping_Param, Tiling_Param]
//! uGrapher(Graph_Tensor, op_info, parallel_info)
//! ```
//!
//! In this reproduction, `op_info` is an [`OpArgs`] (an [`OpInfo`] plus the
//! operand tensors), `parallel_info` is an optional
//! [`ParallelInfo`], and omitting it triggers automatic schedule selection
//! exactly as the paper describes ("when users do not specify any
//! parallelization strategy, our interface performs an automatic tuning to
//! find the optimal strategy").

use ugrapher_graph::{DegreeStats, Graph};
use ugrapher_sim::{DeviceConfig, SimReport};
use ugrapher_tensor::Tensor2;

use crate::abstraction::OpInfo;
use crate::exec::{execute, functional, measure, Fidelity, MeasureOptions, OpOperands};
use crate::plan::KernelPlan;
use crate::schedule::ParallelInfo;
use crate::tune::Predictor;
use crate::CoreError;

/// The graph operand of the uGrapher API, with cached degree statistics
/// (the predictor's graph features).
#[derive(Debug, Clone)]
pub struct GraphTensor<'a> {
    graph: &'a Graph,
    stats: DegreeStats,
}

impl<'a> GraphTensor<'a> {
    /// Wraps a graph, computing its degree statistics once.
    pub fn new(graph: &'a Graph) -> Self {
        Self {
            graph,
            stats: graph.degree_stats(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Cached degree statistics.
    pub fn stats(&self) -> &DegreeStats {
        &self.stats
    }
}

/// The paper's `op_info` argument: operator semantics plus operand tensors.
#[derive(Debug, Clone, Copy)]
pub struct OpArgs<'a> {
    /// Operator semantics (edge op, gather op, operand types).
    pub op: OpInfo,
    /// Operand tensors matching the operator's A/B types.
    pub operands: OpOperands<'a>,
}

impl<'a> OpArgs<'a> {
    /// A unary operator (B is Null), e.g. fused aggregation over vertex
    /// features.
    pub fn fused(op: OpInfo, a: &'a Tensor2) -> Self {
        Self {
            op,
            operands: OpOperands::single(a),
        }
    }

    /// A binary operator with both operands.
    pub fn binary(op: OpInfo, a: &'a Tensor2, b: &'a Tensor2) -> Self {
        Self {
            op,
            operands: OpOperands::pair(a, b),
        }
    }
}

/// The result of one uGrapher invocation.
#[derive(Debug, Clone)]
pub struct UGrapherResult {
    /// The output tensor (edge or destination-vertex embedding).
    pub output: Tensor2,
    /// Simulated performance of the chosen kernel.
    pub report: SimReport,
    /// The schedule that was executed (chosen automatically if the caller
    /// passed `None`).
    pub schedule: ParallelInfo,
}

/// An execution context: target device plus optional trained predictor.
#[derive(Debug, Clone)]
pub struct Runtime {
    device: DeviceConfig,
    fidelity: Fidelity,
    predictor: Option<Predictor>,
    search_space: Option<Vec<ParallelInfo>>,
}

impl Runtime {
    /// A runtime for the given device, using grid search for auto-tuning.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            fidelity: Fidelity::Auto,
            predictor: None,
            search_space: None,
        }
    }

    /// Restricts grid-search auto-tuning to the given candidate schedules
    /// (e.g. the four basic strategies for a quick pass).
    pub fn with_search_space(mut self, candidates: Vec<ParallelInfo>) -> Self {
        self.search_space = Some(candidates);
        self
    }

    /// Installs a trained predictor; auto-tuning then uses it instead of
    /// grid search.
    pub fn with_predictor(mut self, predictor: Predictor) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Sets the trace fidelity used for measurement.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The device this runtime simulates.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Picks a schedule for `(op, graph, feat)`: the predictor if one is
    /// installed, otherwise sampled grid search.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid.
    pub fn choose_schedule(
        &self,
        graph: &GraphTensor<'_>,
        op: &OpInfo,
        feat: usize,
    ) -> Result<ParallelInfo, CoreError> {
        self.choose_schedule_shaped(graph, op, feat, (false, false))
    }

    /// [`Runtime::choose_schedule`] with explicit operand shapes, so grid
    /// search costs scalar-broadcast operands as they will actually run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid.
    pub fn choose_schedule_shaped(
        &self,
        graph: &GraphTensor<'_>,
        op: &OpInfo,
        feat: usize,
        scalars: (bool, bool),
    ) -> Result<ParallelInfo, CoreError> {
        if let Some(p) = &self.predictor {
            p.choose(graph.stats(), op, feat)
        } else {
            let options = MeasureOptions {
                device: self.device.clone(),
                fidelity: Fidelity::Auto,
            };
            let space;
            let candidates: &[ParallelInfo] = match &self.search_space {
                Some(c) => c,
                None => {
                    space = ParallelInfo::space();
                    &space
                }
            };
            Ok(crate::tune::grid_search_shaped(
                graph.graph(),
                op,
                feat,
                scalars,
                &options,
                candidates,
            )?
            .best)
        }
    }

    /// Executes one graph operator: functional evaluation plus simulated
    /// performance measurement under the chosen schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on invalid operators or mismatched operands.
    pub fn run(
        &self,
        graph: &GraphTensor<'_>,
        args: &OpArgs<'_>,
        parallel: Option<ParallelInfo>,
    ) -> Result<UGrapherResult, CoreError> {
        let feat = functional::check_shapes(graph.graph(), &args.op, &args.operands)?;
        let scalar = |t: Option<&Tensor2>| t.is_some_and(|t| t.cols() == 1) && feat > 1;
        let scalars = (scalar(args.operands.a), scalar(args.operands.b));
        let schedule = match parallel {
            Some(p) => p,
            None => self.choose_schedule_shaped(graph, &args.op, feat, scalars)?,
        };
        let plan = KernelPlan::generate(
            args.op,
            schedule,
            graph.graph().num_vertices(),
            graph.graph().num_edges(),
            feat,
        )?
        .with_scalar_operands(scalars.0, scalars.1);
        let output = execute(graph.graph(), &args.op, &args.operands)?;
        let report = measure(
            graph.graph(),
            &plan,
            &MeasureOptions {
                device: self.device.clone(),
                fidelity: self.fidelity,
            },
        );
        Ok(UGrapherResult {
            output,
            report,
            schedule,
        })
    }

    /// Measures a schedule without producing outputs (used by tuners and
    /// benchmarks).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid or `feat == 0`.
    pub fn measure_only(
        &self,
        graph: &Graph,
        op: &OpInfo,
        feat: usize,
        parallel: ParallelInfo,
    ) -> Result<SimReport, CoreError> {
        let plan =
            KernelPlan::generate(*op, parallel, graph.num_vertices(), graph.num_edges(), feat)?;
        Ok(measure(
            graph,
            &plan,
            &MeasureOptions {
                device: self.device.clone(),
                fidelity: self.fidelity,
            },
        ))
    }
}

/// The paper's three-argument entry point (Fig. 9), on a default V100
/// runtime. Passing `None` for `parallel_info` triggers auto-tuning.
///
/// # Errors
///
/// Returns [`CoreError`] on invalid operators or mismatched operands.
///
/// # Example
///
/// ```
/// use ugrapher_core::abstraction::OpInfo;
/// use ugrapher_core::api::{uGrapher, GraphTensor, OpArgs};
/// use ugrapher_core::schedule::{ParallelInfo, Strategy};
/// use ugrapher_graph::generate::ring;
/// use ugrapher_tensor::Tensor2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = ring(64);
/// let x = Tensor2::full(64, 4, 2.0);
/// let result = uGrapher(
///     &GraphTensor::new(&graph),
///     &OpArgs::fused(OpInfo::aggregation_sum(), &x),
///     Some(ParallelInfo::basic(Strategy::WarpEdge)),
/// )?;
/// assert_eq!(result.output[(5, 0)], 2.0);
/// # Ok(())
/// # }
/// ```
#[allow(non_snake_case)]
pub fn uGrapher(
    graph_tensor: &GraphTensor<'_>,
    op_info: &OpArgs<'_>,
    parallel_info: Option<ParallelInfo>,
) -> Result<UGrapherResult, CoreError> {
    Runtime::new(DeviceConfig::v100()).run(graph_tensor, op_info, parallel_info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Strategy;
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn run_with_explicit_schedule() {
        let g = uniform_random(100, 500, 1);
        let x = Tensor2::full(100, 8, 1.0);
        let gt = GraphTensor::new(&g);
        let rt = Runtime::new(DeviceConfig::v100());
        let res = rt
            .run(
                &gt,
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(ParallelInfo::basic(Strategy::ThreadEdge)),
            )
            .unwrap();
        assert_eq!(res.schedule, ParallelInfo::basic(Strategy::ThreadEdge));
        assert!(res.report.time_ms > 0.0);
        // Every vertex's output is its in-degree (features are all 1).
        for v in 0..100 {
            assert_eq!(res.output[(v, 0)], g.in_degree(v) as f32);
        }
    }

    #[test]
    fn output_is_schedule_independent() {
        let g = uniform_random(150, 900, 2);
        let x = Tensor2::from_fn(150, 4, |r, c| ((r * 7 + c) % 13) as f32);
        let gt = GraphTensor::new(&g);
        let rt = Runtime::new(DeviceConfig::v100());
        let args = OpArgs::fused(OpInfo::aggregation_max(), &x);
        let mut outputs = Vec::new();
        for p in ParallelInfo::basics() {
            outputs.push(rt.run(&gt, &args, Some(p)).unwrap().output);
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }

    #[test]
    fn auto_tuning_picks_a_valid_schedule() {
        let g = uniform_random(200, 1000, 3);
        let x = Tensor2::full(200, 8, 1.0);
        let res = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &x),
            None,
        )
        .unwrap();
        assert!(ParallelInfo::space().contains(&res.schedule));
    }

    #[test]
    fn binary_op_through_api() {
        let g = uniform_random(80, 400, 4);
        let x = Tensor2::full(80, 8, 3.0);
        let w = Tensor2::full(400, 8, 0.5);
        let res = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::binary(OpInfo::weighted_aggregation_sum(), &x, &w),
            Some(ParallelInfo::basic(Strategy::WarpVertex)),
        )
        .unwrap();
        for v in 0..80 {
            assert_eq!(res.output[(v, 0)], 1.5 * g.in_degree(v) as f32);
        }
    }

    #[test]
    fn scalar_edge_weights_broadcast() {
        // GCN-style: per-edge scalar weight multiplying a full feature row.
        let g = uniform_random(60, 300, 9);
        let x = Tensor2::full(60, 8, 2.0);
        let w = Tensor2::full(300, 1, 0.25);
        let res = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::binary(OpInfo::weighted_aggregation_sum(), &x, &w),
            Some(ParallelInfo::basic(Strategy::ThreadEdge)),
        )
        .unwrap();
        assert_eq!(res.output.cols(), 8);
        for v in 0..60 {
            assert_eq!(res.output[(v, 3)], 0.5 * g.in_degree(v) as f32);
        }
        // Scalar operand moves less data than a full-width one.
        let wide = Tensor2::full(300, 8, 0.25);
        let res_wide = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::binary(OpInfo::weighted_aggregation_sum(), &x, &wide),
            Some(ParallelInfo::basic(Strategy::ThreadEdge)),
        )
        .unwrap();
        assert!(res.report.l1_transactions < res_wide.report.l1_transactions);
        assert_eq!(res.output, res_wide.output);
    }

    #[test]
    fn mismatched_operands_error() {
        let g = uniform_random(50, 250, 5);
        let wrong = Tensor2::full(49, 8, 1.0);
        let err = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &wrong),
            Some(ParallelInfo::basic(Strategy::ThreadVertex)),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadOperand { .. }));
    }

    #[test]
    fn measure_only_matches_run_report_shape() {
        let g = uniform_random(120, 600, 6);
        let rt = Runtime::new(DeviceConfig::a100());
        let r = rt
            .measure_only(
                &g,
                &OpInfo::aggregation_sum(),
                16,
                ParallelInfo::basic(Strategy::WarpEdge),
            )
            .unwrap();
        assert!(r.time_ms > 0.0);
        assert!(r.atomic_ops > 0.0);
    }
}
