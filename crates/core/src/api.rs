//! The unified `uGrapher` API (paper §5.1, Fig. 9).
//!
//! ```text
//! op_info       = [edge_op, gather_op, Tensor_A, A_Type, Tensor_B, B_Type,
//!                  Tensor_C, C_Type]
//! parallel_info = [parallel_strategy, Grouping_Param, Tiling_Param]
//! uGrapher(Graph_Tensor, op_info, parallel_info)
//! ```
//!
//! In this reproduction, `op_info` is an [`OpArgs`] (an [`OpInfo`] plus the
//! operand tensors), `parallel_info` is an optional
//! [`ParallelInfo`], and omitting it triggers automatic schedule selection
//! exactly as the paper describes ("when users do not specify any
//! parallelization strategy, our interface performs an automatic tuning to
//! find the optimal strategy").
//!
//! # Hardening
//!
//! Every public entry point is defensive:
//!
//! * inputs are validated up front — graph structure
//!   ([`ugrapher_graph::Graph::validate`], cached per [`GraphTensor`]),
//!   operand finiteness ([`Tensor2::validate_finite`]), operator legality
//!   and explicit schedules — and rejected with a typed [`CoreError`];
//! * automatic schedule selection degrades gracefully (predictor →
//!   budgeted grid search → a safe default), recording every fallback in
//!   the returned [`RobustnessReport`];
//! * a panic shield converts any library bug that would otherwise abort
//!   the caller into [`CoreError::Internal`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ugrapher_graph::{DegreeStats, Graph};
use ugrapher_obs::{metrics, MetricsRegistry, Recorder, SpanKind};
use ugrapher_sim::{DeviceConfig, SimReport};
use ugrapher_tensor::Tensor2;

use crate::abstraction::OpInfo;
use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::exec::{functional, measure, Fidelity, MeasureOptions, OpOperands};
use crate::plan::KernelPlan;
use crate::robustness::RobustnessReport;
use crate::schedule::{ParallelInfo, Strategy};
use crate::tune::{grid_search_budgeted, Predictor, TuneBudget};
use crate::CoreError;

/// The graph operand of the uGrapher API, with cached degree statistics
/// (the predictor's graph features).
///
/// Construction also runs [`Graph::validate`] once and caches the result;
/// [`Runtime::run`] refuses structurally broken graphs instead of indexing
/// out of bounds deep inside a kernel.
#[derive(Debug, Clone)]
pub struct GraphTensor<'a> {
    graph: &'a Graph,
    stats: DegreeStats,
    validation: Option<String>,
    fingerprint: u64,
}

impl<'a> GraphTensor<'a> {
    /// Wraps a graph, computing its degree statistics, structural
    /// validation verdict, and structural fingerprint once.
    pub fn new(graph: &'a Graph) -> Self {
        Self {
            graph,
            stats: graph.degree_stats(),
            validation: graph.validate().err().map(|e| e.to_string()),
            fingerprint: graph.structural_fingerprint(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Cached degree statistics.
    pub fn stats(&self) -> &DegreeStats {
        &self.stats
    }

    /// The cached [`Graph::validate`] failure, if the graph is broken.
    pub fn validation_error(&self) -> Option<&str> {
        self.validation.as_deref()
    }

    /// The cached [`Graph::structural_fingerprint`] — the graph-version
    /// component of [`crate::cache::PlanKey`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The paper's `op_info` argument: operator semantics plus operand tensors.
#[derive(Debug, Clone, Copy)]
pub struct OpArgs<'a> {
    /// Operator semantics (edge op, gather op, operand types).
    pub op: OpInfo,
    /// Operand tensors matching the operator's A/B types.
    pub operands: OpOperands<'a>,
}

impl<'a> OpArgs<'a> {
    /// A unary operator (B is Null), e.g. fused aggregation over vertex
    /// features.
    pub fn fused(op: OpInfo, a: &'a Tensor2) -> Self {
        Self {
            op,
            operands: OpOperands::single(a),
        }
    }

    /// A binary operator with both operands.
    pub fn binary(op: OpInfo, a: &'a Tensor2, b: &'a Tensor2) -> Self {
        Self {
            op,
            operands: OpOperands::pair(a, b),
        }
    }
}

/// The result of one uGrapher invocation.
#[derive(Debug, Clone)]
pub struct UGrapherResult {
    /// The output tensor (edge or destination-vertex embedding).
    pub output: Tensor2,
    /// Simulated performance of the chosen kernel.
    pub report: SimReport,
    /// The schedule that was executed (chosen automatically if the caller
    /// passed `None`).
    pub schedule: ParallelInfo,
    /// Fallbacks taken during schedule selection. Empty when the first
    /// choice (explicit schedule, predictor, or complete grid search)
    /// succeeded.
    pub robustness: RobustnessReport,
    /// Request id stamped on every span this invocation emitted (see
    /// [`ugrapher_obs`]). Non-zero even when tracing is disabled, so log
    /// lines and traces can be joined after the fact.
    pub trace_id: u64,
    /// `true` when this invocation was served from the runtime's
    /// [`PlanCache`] (schedule selection, plan generation and IR lowering
    /// were all skipped). Always `false` on a runtime without a cache.
    pub plan_cache_hit: bool,
}

/// An execution context: target device plus optional trained predictor.
#[derive(Debug, Clone)]
pub struct Runtime {
    device: DeviceConfig,
    fidelity: Fidelity,
    predictor: Option<Predictor>,
    search_space: Option<Vec<ParallelInfo>>,
    tune_budget: TuneBudget,
    recorder: Recorder,
    plan_cache: Option<Arc<PlanCache>>,
}

impl Runtime {
    /// A runtime for the given device, using grid search for auto-tuning.
    /// Spans go to the process-global recorder (disabled unless installed
    /// via [`ugrapher_obs::install`] / [`ugrapher_obs::init_from_env`]).
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            fidelity: Fidelity::Auto,
            predictor: None,
            search_space: None,
            tune_budget: TuneBudget::unlimited(),
            recorder: Recorder::global(),
            plan_cache: None,
        }
    }

    /// Installs a compiled-plan cache: repeat requests with the same
    /// operator, graph version and operand shape skip schedule selection,
    /// plan generation and IR lowering entirely (see [`PlanCache`]).
    /// Share one cache across runtime clones (e.g. serving workers) by
    /// cloning the [`Arc`].
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The installed compiled-plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Restricts grid-search auto-tuning to the given candidate schedules
    /// (e.g. the four basic strategies for a quick pass).
    pub fn with_search_space(mut self, candidates: Vec<ParallelInfo>) -> Self {
        self.search_space = Some(candidates);
        self
    }

    /// Installs a trained predictor; auto-tuning then uses it instead of
    /// grid search (falling back to grid search if it misbehaves).
    pub fn with_predictor(mut self, predictor: Predictor) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Sets the trace fidelity used for measurement.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Caps the cost of grid-search auto-tuning. A search cut short by the
    /// budget still returns its best-so-far schedule and records a
    /// downgrade in the [`RobustnessReport`].
    pub fn with_tune_budget(mut self, budget: TuneBudget) -> Self {
        self.tune_budget = budget;
        self
    }

    /// Routes this runtime's spans (`"ugrapher.run"`, `"tune.candidate"`,
    /// `"sim.kernel"`, …) to an explicit recorder instead of the
    /// process-global one. Useful for capturing an isolated trace in tests.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The device this runtime simulates.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Picks a schedule for `(op, graph, feat)`: the predictor if one is
    /// installed, otherwise sampled grid search, with graceful fallback
    /// between stages (fallbacks taken are not reported here; use
    /// [`Runtime::run`] to observe them).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid, the device config
    /// is unusable, or every fallback stage failed.
    pub fn choose_schedule(
        &self,
        graph: &GraphTensor<'_>,
        op: &OpInfo,
        feat: usize,
    ) -> Result<ParallelInfo, CoreError> {
        self.choose_schedule_shaped(graph, op, feat, (false, false))
    }

    /// [`Runtime::choose_schedule`] with explicit operand shapes, so grid
    /// search costs scalar-broadcast operands as they will actually run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid, the device config
    /// is unusable, or every fallback stage failed.
    pub fn choose_schedule_shaped(
        &self,
        graph: &GraphTensor<'_>,
        op: &OpInfo,
        feat: usize,
        scalars: (bool, bool),
    ) -> Result<ParallelInfo, CoreError> {
        let mut report = RobustnessReport::new();
        let trace_id = ugrapher_obs::next_trace_id();
        self.choose_with_fallback(graph, op, feat, scalars, &mut report, trace_id)
    }

    /// The schedule-selection fallback chain: predictor → budgeted grid
    /// search → thread-vertex default. Each downgrade is recorded in
    /// `report`.
    ///
    /// Caller-input errors (invalid operator, unusable device) propagate;
    /// tuning-stage failures degrade to the next stage instead.
    fn choose_with_fallback(
        &self,
        graph: &GraphTensor<'_>,
        op: &OpInfo,
        feat: usize,
        scalars: (bool, bool),
        report: &mut RobustnessReport,
        trace_id: u64,
    ) -> Result<ParallelInfo, CoreError> {
        let mut span = self
            .recorder
            .span_traced("tune.choose", SpanKind::Tune, trace_id);
        let result = self.choose_with_fallback_inner(graph, op, feat, scalars, report, trace_id);
        if span.is_enabled() {
            span.attr("op", op.label()).attr("feat", feat);
            if let Ok(s) = &result {
                span.attr("schedule", s.label());
            }
            span.attr("downgrades", report.downgrades.len());
        }
        result
    }

    fn choose_with_fallback_inner(
        &self,
        graph: &GraphTensor<'_>,
        op: &OpInfo,
        feat: usize,
        scalars: (bool, bool),
        report: &mut RobustnessReport,
        trace_id: u64,
    ) -> Result<ParallelInfo, CoreError> {
        op.validate()?;
        if let Some(p) = &self.predictor {
            match p.choose_traced(graph.stats(), op, feat, &self.recorder, trace_id) {
                Ok(s) => return Ok(s),
                Err(e @ CoreError::InvalidOperator { .. }) => return Err(e),
                // A predictor that scores non-finitely or emits an illegal
                // schedule is a degraded model, not a caller error.
                Err(e) => report.record("predictor", "grid-search", e.to_string()),
            }
        }
        let options = MeasureOptions::auto(self.device.clone())
            .with_recorder(self.recorder.clone())
            .with_trace_id(trace_id);
        let space;
        let candidates: &[ParallelInfo] = match &self.search_space {
            Some(c) => c,
            None => {
                space = ParallelInfo::space();
                &space
            }
        };
        match grid_search_budgeted(
            graph.graph(),
            op,
            feat,
            scalars,
            &options,
            candidates,
            self.tune_budget,
        ) {
            Ok(res) => {
                if res.illegal > 0 {
                    report.record(
                        "tune-illegal",
                        "best legal schedule",
                        format!(
                            "{} of {} candidate plans failed generation",
                            res.illegal,
                            candidates.len()
                        ),
                    );
                }
                if res.budget_exhausted {
                    report.record(
                        "tune-budget",
                        "best-so-far schedule",
                        format!(
                            "budget stopped the search after {} of {} candidates",
                            res.evaluated(),
                            candidates.len()
                        ),
                    );
                }
                Ok(res.best)
            }
            Err(e @ (CoreError::InvalidOperator { .. } | CoreError::DeviceInvalid { .. })) => {
                Err(e)
            }
            Err(e) => {
                report.record("grid-search", "thread-vertex default", e.to_string());
                ParallelInfo::basic(Strategy::ThreadVertex).validated()
            }
        }
    }

    /// Executes one graph operator: functional evaluation plus simulated
    /// performance measurement under the chosen schedule.
    ///
    /// Inputs are fully validated first (graph structure, operand shapes
    /// and finiteness, operator legality, explicit schedule), and a panic
    /// shield converts any internal bug into [`CoreError::Internal`]
    /// instead of aborting the caller.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on invalid operators, mismatched or
    /// non-finite operands, broken graphs, illegal explicit schedules, or
    /// an internal panic.
    pub fn run(
        &self,
        graph: &GraphTensor<'_>,
        args: &OpArgs<'_>,
        parallel: Option<ParallelInfo>,
    ) -> Result<UGrapherResult, CoreError> {
        self.run_with_trace_id(graph, args, parallel, ugrapher_obs::next_trace_id())
    }

    /// [`Runtime::run`] under a caller-supplied trace id, so an outer
    /// request context (e.g. the `ugrapher-serve` engine) can join its own
    /// spans with everything this invocation emits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Runtime::run`].
    pub fn run_with_trace_id(
        &self,
        graph: &GraphTensor<'_>,
        args: &OpArgs<'_>,
        parallel: Option<ParallelInfo>,
        trace_id: u64,
    ) -> Result<UGrapherResult, CoreError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.run_inner(graph, args, parallel, trace_id)
        }))
        .unwrap_or_else(|payload| Err(CoreError::from_panic(payload)))
    }

    fn run_inner(
        &self,
        graph: &GraphTensor<'_>,
        args: &OpArgs<'_>,
        parallel: Option<ParallelInfo>,
        trace_id: u64,
    ) -> Result<UGrapherResult, CoreError> {
        let mut span = self
            .recorder
            .span_traced("ugrapher.run", SpanKind::Runtime, trace_id);
        let result = self.run_traced(graph, args, parallel, trace_id);
        if span.is_enabled() {
            span.attr("op", args.op.label())
                .attr("explicit_schedule", parallel.is_some())
                .attr("ok", result.is_ok());
            if let Ok(res) = &result {
                span.attr("schedule", res.schedule.label())
                    .attr("time_ms", res.report.time_ms)
                    .attr("downgrades", res.robustness.downgrades.len())
                    .attr("plan_cache_hit", res.plan_cache_hit);
            }
        }
        let reg = MetricsRegistry::global();
        reg.inc(metrics::RUNS);
        if let Ok(res) = &result {
            reg.observe(metrics::RUN_TIME_MS, res.report.time_ms);
        }
        result
    }

    fn run_traced(
        &self,
        graph: &GraphTensor<'_>,
        args: &OpArgs<'_>,
        parallel: Option<ParallelInfo>,
        trace_id: u64,
    ) -> Result<UGrapherResult, CoreError> {
        if let Some(reason) = graph.validation_error() {
            return Err(CoreError::GraphInvalid {
                reason: reason.to_owned(),
            });
        }
        for (name, t) in [('A', args.operands.a), ('B', args.operands.b)] {
            if let Some(t) = t {
                t.validate_finite().map_err(|e| CoreError::TensorInvalid {
                    reason: format!("operand {name}: {e}"),
                })?;
            }
        }
        let feat = functional::check_shapes(graph.graph(), &args.op, &args.operands)?;
        let scalar = |t: Option<&Tensor2>| t.is_some_and(|t| t.cols() == 1) && feat > 1;
        let scalars = (scalar(args.operands.a), scalar(args.operands.b));
        let mut robustness = RobustnessReport::new();
        robustness.trace_id = trace_id;

        // Compiled-plan cache fast path: a hit replays the stored schedule,
        // plan, determinism class and downgrades, skipping schedule
        // selection, plan generation and IR lowering. Downgrades are pushed
        // directly (not via `record`) so hits do not re-bump the fallback
        // metrics for decisions made once at compile time.
        let key = PlanKey {
            op: args.op,
            explicit: parallel,
            graph_fingerprint: graph.fingerprint(),
            feat,
            scalars,
        };
        if let Some(cached) = self.plan_cache.as_ref().and_then(|c| c.get(&key)) {
            robustness
                .downgrades
                .extend(cached.downgrades.iter().cloned());
            robustness.determinism = Some(cached.determinism);
            return self.execute_plan(
                graph,
                args,
                cached.schedule,
                &cached.plan,
                robustness,
                trace_id,
                true,
            );
        }

        let schedule = match parallel {
            Some(p) => {
                let p = p.validated()?;
                // Explicit schedules are honoured as given, but degenerate
                // knobs (clamped tiling, single-item grouping) are surfaced
                // in the robustness report rather than silently absorbed.
                for lint in crate::analysis::lint_schedule(
                    &args.op,
                    &p,
                    feat,
                    graph.graph().num_vertices(),
                    graph.graph().num_edges(),
                ) {
                    robustness.record("schedule-lint", "executed as requested", lint.to_string());
                }
                p
            }
            None => self.choose_with_fallback(
                graph,
                &args.op,
                feat,
                scalars,
                &mut robustness,
                trace_id,
            )?,
        };
        let plan = KernelPlan::generate(
            args.op,
            schedule,
            graph.graph().num_vertices(),
            graph.graph().num_edges(),
            feat,
        )?
        .with_scalar_operands(scalars.0, scalars.1);
        let ir = crate::lower::lower(&plan)?;
        let determinism = crate::ir::classify_determinism(&ir);
        robustness.determinism = Some(determinism);
        if let Some(cache) = &self.plan_cache {
            cache.insert(
                key,
                CachedPlan {
                    schedule,
                    plan: plan.clone(),
                    ir: Arc::new(ir),
                    determinism,
                    downgrades: robustness.downgrades.clone(),
                },
            );
        }
        self.execute_plan(graph, args, schedule, &plan, robustness, trace_id, false)
    }

    /// Executes an already-compiled plan: functional evaluation plus
    /// simulated measurement (the part of a request the plan cache cannot
    /// skip).
    #[allow(clippy::too_many_arguments)]
    fn execute_plan(
        &self,
        graph: &GraphTensor<'_>,
        args: &OpArgs<'_>,
        schedule: ParallelInfo,
        plan: &KernelPlan,
        robustness: RobustnessReport,
        trace_id: u64,
        plan_cache_hit: bool,
    ) -> Result<UGrapherResult, CoreError> {
        let output = functional::execute_traced(
            graph.graph(),
            &args.op,
            &args.operands,
            &self.recorder,
            trace_id,
        )?;
        let report = measure(
            graph.graph(),
            plan,
            &MeasureOptions::new(self.device.clone())
                .with_fidelity(self.fidelity)
                .with_recorder(self.recorder.clone())
                .with_trace_id(trace_id),
        );
        Ok(UGrapherResult {
            output,
            report,
            schedule,
            robustness,
            trace_id,
            plan_cache_hit,
        })
    }

    /// Measures a schedule without producing outputs (used by tuners and
    /// benchmarks). Shielded against internal panics like [`Runtime::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the graph is structurally invalid, the
    /// operator or schedule is illegal, `feat == 0`, or an internal panic
    /// was caught.
    pub fn measure_only(
        &self,
        graph: &Graph,
        op: &OpInfo,
        feat: usize,
        parallel: ParallelInfo,
    ) -> Result<SimReport, CoreError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.measure_only_inner(graph, op, feat, parallel)
        }))
        .unwrap_or_else(|payload| Err(CoreError::from_panic(payload)))
    }

    fn measure_only_inner(
        &self,
        graph: &Graph,
        op: &OpInfo,
        feat: usize,
        parallel: ParallelInfo,
    ) -> Result<SimReport, CoreError> {
        let trace_id = ugrapher_obs::next_trace_id();
        let mut span =
            self.recorder
                .span_traced("ugrapher.measure_only", SpanKind::Runtime, trace_id);
        graph.validate()?;
        let plan =
            KernelPlan::generate(*op, parallel, graph.num_vertices(), graph.num_edges(), feat)?;
        let report = measure(
            graph,
            &plan,
            &MeasureOptions::new(self.device.clone())
                .with_fidelity(self.fidelity)
                .with_recorder(self.recorder.clone())
                .with_trace_id(trace_id),
        );
        if span.is_enabled() {
            span.attr("op", op.label())
                .attr("schedule", parallel.label())
                .attr("time_ms", report.time_ms);
        }
        Ok(report)
    }
}

/// The paper's three-argument entry point (Fig. 9), on a default V100
/// runtime. Passing `None` for `parallel_info` triggers auto-tuning.
///
/// # Errors
///
/// Returns [`CoreError`] on invalid operators or mismatched operands.
///
/// # Example
///
/// ```
/// use ugrapher_core::abstraction::OpInfo;
/// use ugrapher_core::api::{uGrapher, GraphTensor, OpArgs};
/// use ugrapher_core::schedule::{ParallelInfo, Strategy};
/// use ugrapher_graph::generate::ring;
/// use ugrapher_tensor::Tensor2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = ring(64);
/// let x = Tensor2::full(64, 4, 2.0);
/// let result = uGrapher(
///     &GraphTensor::new(&graph),
///     &OpArgs::fused(OpInfo::aggregation_sum(), &x),
///     Some(ParallelInfo::basic(Strategy::WarpEdge)),
/// )?;
/// assert_eq!(result.output[(5, 0)], 2.0);
/// # Ok(())
/// # }
/// ```
#[allow(non_snake_case)]
pub fn uGrapher(
    graph_tensor: &GraphTensor<'_>,
    op_info: &OpArgs<'_>,
    parallel_info: Option<ParallelInfo>,
) -> Result<UGrapherResult, CoreError> {
    Runtime::new(DeviceConfig::v100()).run(graph_tensor, op_info, parallel_info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Strategy;
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn run_with_explicit_schedule() {
        let g = uniform_random(100, 500, 1);
        let x = Tensor2::full(100, 8, 1.0);
        let gt = GraphTensor::new(&g);
        let rt = Runtime::new(DeviceConfig::v100());
        let res = rt
            .run(
                &gt,
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(ParallelInfo::basic(Strategy::ThreadEdge)),
            )
            .unwrap();
        assert_eq!(res.schedule, ParallelInfo::basic(Strategy::ThreadEdge));
        assert!(res.report.time_ms > 0.0);
        assert!(!res.robustness.degraded());
        // Edge-parallel float sum: stamped as reduction-order-dependent.
        assert_eq!(
            res.robustness.determinism,
            Some(crate::ir::DeterminismClass::AtomicOrderDependent)
        );
        assert!(!res.robustness.bitwise_deterministic());
        // Every vertex's output is its in-degree (features are all 1).
        for v in 0..100 {
            assert_eq!(res.output[(v, 0)], g.in_degree(v) as f32);
        }
    }

    #[test]
    fn vertex_parallel_runs_are_stamped_bitwise_deterministic() {
        let g = uniform_random(100, 500, 1);
        let x = Tensor2::full(100, 8, 1.0);
        let res = Runtime::new(DeviceConfig::v100())
            .run(
                &GraphTensor::new(&g),
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(ParallelInfo::basic(Strategy::ThreadVertex)),
            )
            .unwrap();
        assert_eq!(
            res.robustness.determinism,
            Some(crate::ir::DeterminismClass::Sequential)
        );
        assert!(res.robustness.bitwise_deterministic());
    }

    #[test]
    fn output_is_schedule_independent() {
        let g = uniform_random(150, 900, 2);
        let x = Tensor2::from_fn(150, 4, |r, c| ((r * 7 + c) % 13) as f32);
        let gt = GraphTensor::new(&g);
        let rt = Runtime::new(DeviceConfig::v100());
        let args = OpArgs::fused(OpInfo::aggregation_max(), &x);
        let mut outputs = Vec::new();
        for p in ParallelInfo::basics() {
            outputs.push(rt.run(&gt, &args, Some(p)).unwrap().output);
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }

    #[test]
    fn auto_tuning_picks_a_valid_schedule() {
        let g = uniform_random(200, 1000, 3);
        let x = Tensor2::full(200, 8, 1.0);
        let res = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &x),
            None,
        )
        .unwrap();
        assert!(ParallelInfo::space().contains(&res.schedule));
        assert!(!res.robustness.degraded());
    }

    #[test]
    fn binary_op_through_api() {
        let g = uniform_random(80, 400, 4);
        let x = Tensor2::full(80, 8, 3.0);
        let w = Tensor2::full(400, 8, 0.5);
        let res = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::binary(OpInfo::weighted_aggregation_sum(), &x, &w),
            Some(ParallelInfo::basic(Strategy::WarpVertex)),
        )
        .unwrap();
        for v in 0..80 {
            assert_eq!(res.output[(v, 0)], 1.5 * g.in_degree(v) as f32);
        }
    }

    #[test]
    fn scalar_edge_weights_broadcast() {
        // GCN-style: per-edge scalar weight multiplying a full feature row.
        let g = uniform_random(60, 300, 9);
        let x = Tensor2::full(60, 8, 2.0);
        let w = Tensor2::full(300, 1, 0.25);
        let res = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::binary(OpInfo::weighted_aggregation_sum(), &x, &w),
            Some(ParallelInfo::basic(Strategy::ThreadEdge)),
        )
        .unwrap();
        assert_eq!(res.output.cols(), 8);
        for v in 0..60 {
            assert_eq!(res.output[(v, 3)], 0.5 * g.in_degree(v) as f32);
        }
        // Scalar operand moves less data than a full-width one.
        let wide = Tensor2::full(300, 8, 0.25);
        let res_wide = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::binary(OpInfo::weighted_aggregation_sum(), &x, &wide),
            Some(ParallelInfo::basic(Strategy::ThreadEdge)),
        )
        .unwrap();
        assert!(res.report.l1_transactions < res_wide.report.l1_transactions);
        assert_eq!(res.output, res_wide.output);
    }

    #[test]
    fn mismatched_operands_error() {
        let g = uniform_random(50, 250, 5);
        let wrong = Tensor2::full(49, 8, 1.0);
        let err = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &wrong),
            Some(ParallelInfo::basic(Strategy::ThreadVertex)),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadOperand { .. }));
    }

    #[test]
    fn measure_only_matches_run_report_shape() {
        let g = uniform_random(120, 600, 6);
        let rt = Runtime::new(DeviceConfig::a100());
        let r = rt
            .measure_only(
                &g,
                &OpInfo::aggregation_sum(),
                16,
                ParallelInfo::basic(Strategy::WarpEdge),
            )
            .unwrap();
        assert!(r.time_ms > 0.0);
        assert!(r.atomic_ops > 0.0);
    }

    #[test]
    fn nan_operand_is_a_typed_error() {
        let g = uniform_random(40, 200, 7);
        let mut x = Tensor2::full(40, 4, 1.0);
        x[(17, 2)] = f32::NAN;
        let err = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &x),
            Some(ParallelInfo::basic(Strategy::ThreadVertex)),
        )
        .unwrap_err();
        match err {
            CoreError::TensorInvalid { reason } => {
                assert!(reason.contains("operand A"), "{reason}");
                assert!(reason.contains("(17, 2)"), "{reason}");
            }
            other => panic!("expected TensorInvalid, got {other:?}"),
        }
    }

    #[test]
    fn illegal_explicit_schedule_is_rejected() {
        let g = uniform_random(30, 90, 8);
        let x = Tensor2::full(30, 4, 1.0);
        let bad = ParallelInfo {
            strategy: Strategy::ThreadVertex,
            grouping: 0,
            tiling: 0,
        };
        let err = uGrapher(
            &GraphTensor::new(&g),
            &OpArgs::fused(OpInfo::aggregation_sum(), &x),
            Some(bad),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSchedule { .. }), "{err:?}");
    }

    #[test]
    fn tight_budget_degrades_but_still_runs() {
        let g = uniform_random(64, 256, 10);
        let x = Tensor2::full(64, 4, 1.0);
        let rt = Runtime::new(DeviceConfig::v100()).with_tune_budget(TuneBudget::max_candidates(2));
        let res = rt
            .run(
                &GraphTensor::new(&g),
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                None,
            )
            .unwrap();
        assert!(res.robustness.degraded());
        assert_eq!(res.robustness.downgrades[0].stage, "tune-budget");
        // The result is still correct despite the truncated search.
        for v in 0..64 {
            assert_eq!(res.output[(v, 0)], g.in_degree(v) as f32);
        }
    }

    #[test]
    fn empty_search_space_falls_back_to_default_schedule() {
        let g = uniform_random(64, 256, 11);
        let x = Tensor2::full(64, 4, 1.0);
        let rt = Runtime::new(DeviceConfig::v100()).with_search_space(Vec::new());
        let res = rt
            .run(
                &GraphTensor::new(&g),
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                None,
            )
            .unwrap();
        assert_eq!(res.schedule, ParallelInfo::basic(Strategy::ThreadVertex));
        assert!(res.robustness.degraded());
        assert_eq!(res.robustness.downgrades[0].stage, "grid-search");
    }

    #[test]
    fn explicit_degenerate_schedule_is_linted_in_robustness_report() {
        let g = uniform_random(40, 50, 12);
        let x = Tensor2::full(40, 4, 1.0);
        let rt = Runtime::new(DeviceConfig::v100());
        // Tiling 64 clamps against feat 4; grouping 64 >= 50 edges.
        let res = rt
            .run(
                &GraphTensor::new(&g),
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(ParallelInfo::new(Strategy::ThreadEdge, 64, 64)),
            )
            .unwrap();
        assert!(res.robustness.degraded());
        assert_eq!(res.robustness.downgrades.len(), 2);
        assert!(res
            .robustness
            .downgrades
            .iter()
            .all(|d| d.stage == "schedule-lint"));
        // The schedule is still executed as requested, correctly.
        for v in 0..40 {
            assert_eq!(res.output[(v, 0)], g.in_degree(v) as f32);
        }
        // A clean explicit schedule records nothing.
        let clean = rt
            .run(
                &GraphTensor::new(&g),
                &OpArgs::fused(OpInfo::aggregation_sum(), &x),
                Some(ParallelInfo::basic(Strategy::ThreadEdge)),
            )
            .unwrap();
        assert!(!clean.robustness.degraded());
    }
}
