//! The unified graph-operator abstraction (paper §3).
//!
//! Every graph operator in a GNN is the nested loop
//!
//! ```text
//! for dst in V:
//!   for edge in dst.get_inedges():
//!     src = edge.src_v
//!     for feat in F:
//!       edge_tmp        = edge_op(A[a_idx][feat], B[b_idx][feat])
//!       C[c_idx][feat]  = gather_op(C[c_idx][feat], edge_tmp)
//! ```
//!
//! parameterised by the element-wise [`EdgeOp`], the reduction
//! [`GatherOp`], and the [`TensorType`]s of the three operands, which
//! determine the addressing index (`src`, `dst` or `edge`). The legal
//! combinations are paper Table 4; [`registry::all_valid_ops`] enumerates
//! them and [`registry::census`] reproduces the Table 2-style counts.

use crate::CoreError;

/// Element-wise edge computation (`edge_op` in paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Pass operand A through unchanged (no arithmetic; fusable).
    CopyLhs,
    /// Pass operand B through unchanged (no arithmetic; fusable).
    CopyRhs,
    /// `A + B`.
    Add,
    /// `A - B`.
    Sub,
    /// `A * B`.
    Mul,
    /// `A / B`.
    Div,
}

impl EdgeOp {
    /// All edge ops, in the paper's listing order.
    pub const ALL: [EdgeOp; 6] = [
        EdgeOp::CopyLhs,
        EdgeOp::CopyRhs,
        EdgeOp::Add,
        EdgeOp::Sub,
        EdgeOp::Mul,
        EdgeOp::Div,
    ];

    /// Whether this op performs no arithmetic (candidate for the fusion
    /// pass of paper §5.2).
    pub fn is_copy(self) -> bool {
        matches!(self, EdgeOp::CopyLhs | EdgeOp::CopyRhs)
    }

    /// Whether this op reads operand A.
    pub fn uses_a(self) -> bool {
        !matches!(self, EdgeOp::CopyRhs)
    }

    /// Whether this op reads operand B.
    pub fn uses_b(self) -> bool {
        !matches!(self, EdgeOp::CopyLhs)
    }

    /// Applies the op to scalar operands.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            EdgeOp::CopyLhs => a,
            EdgeOp::CopyRhs => b,
            EdgeOp::Add => a + b,
            EdgeOp::Sub => a - b,
            EdgeOp::Mul => a * b,
            EdgeOp::Div => a / b,
        }
    }
}

/// Edge-to-vertex reduction (`gather_op` in paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatherOp {
    /// Keep the existing output element (degenerate; listed by the paper).
    CopyLhs,
    /// Overwrite the output with the edge value — used when the output is
    /// an edge tensor (message creation skips the reduction stage).
    CopyRhs,
    /// Running sum.
    Sum,
    /// Running maximum.
    Max,
    /// Running minimum.
    Min,
    /// Mean (sum followed by division by the in-degree).
    Mean,
}

impl GatherOp {
    /// All gather ops, in the paper's listing order.
    pub const ALL: [GatherOp; 6] = [
        GatherOp::CopyLhs,
        GatherOp::CopyRhs,
        GatherOp::Sum,
        GatherOp::Max,
        GatherOp::Min,
        GatherOp::Mean,
    ];

    /// Whether this op reduces many edge values into one vertex value.
    pub fn is_reduction(self) -> bool {
        matches!(
            self,
            GatherOp::Sum | GatherOp::Max | GatherOp::Min | GatherOp::Mean
        )
    }

    /// The identity element of the reduction, used to initialise
    /// accumulators.
    pub fn identity(self) -> f32 {
        match self {
            GatherOp::Max => f32::NEG_INFINITY,
            GatherOp::Min => f32::INFINITY,
            _ => 0.0,
        }
    }

    /// Combines the accumulator with one edge value.
    pub fn apply(self, acc: f32, edge: f32) -> f32 {
        match self {
            GatherOp::CopyLhs => acc,
            GatherOp::CopyRhs => edge,
            GatherOp::Sum | GatherOp::Mean => acc + edge,
            GatherOp::Max => acc.max(edge),
            GatherOp::Min => acc.min(edge),
        }
    }
}

/// The addressing type of an operand tensor (paper Fig. 5, line 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorType {
    /// Vertex embedding tensor addressed by the edge's source vertex.
    SrcV,
    /// Vertex embedding tensor addressed by the edge's destination vertex.
    DstV,
    /// Edge embedding tensor addressed by the edge id.
    Edge,
    /// Operand absent.
    Null,
}

impl TensorType {
    /// All operand types.
    pub const ALL: [TensorType; 4] = [
        TensorType::SrcV,
        TensorType::DstV,
        TensorType::Edge,
        TensorType::Null,
    ];

    /// Whether the operand is a vertex tensor.
    pub fn is_vertex(self) -> bool {
        matches!(self, TensorType::SrcV | TensorType::DstV)
    }
}

/// The three operator categories of paper Table 2 / Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Inputs involve vertices (and possibly edges); output is an edge
    /// tensor; no reduction.
    MessageCreation,
    /// Inputs are edge tensors only; output is a vertex tensor via a
    /// reduction.
    MessageAggregation,
    /// Inputs involve vertex tensors; output is a vertex tensor via a
    /// reduction (message creation fused into the reduction, §2.1).
    FusedAggregation,
}

/// The complete semantic description of one graph operator
/// (`op_info` in the paper's API, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpInfo {
    /// Element-wise edge computation.
    pub edge_op: EdgeOp,
    /// Edge-to-vertex reduction (or `CopyRhs` for edge outputs).
    pub gather_op: GatherOp,
    /// Type of operand A.
    pub a: TensorType,
    /// Type of operand B.
    pub b: TensorType,
    /// Type of the output C (must be `Edge` or `DstV`).
    pub c: TensorType,
}

impl OpInfo {
    /// Builds and validates an operator description.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOperator`] if the combination violates
    /// the Table 4 rules (see [`OpInfo::validate`]).
    pub fn new(
        edge_op: EdgeOp,
        gather_op: GatherOp,
        a: TensorType,
        b: TensorType,
        c: TensorType,
    ) -> Result<Self, CoreError> {
        let op = Self {
            edge_op,
            gather_op,
            a,
            b,
            c,
        };
        op.validate()?;
        Ok(op)
    }

    /// The *aggregation-sum* operator of paper Fig. 4 (SageSum): copy each
    /// source vertex's features and sum into the destination.
    pub fn aggregation_sum() -> Self {
        Self {
            edge_op: EdgeOp::CopyLhs,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::DstV,
        }
    }

    /// The *weighted-aggr-sum* operator of GCN/GAT (§2.2): multiply source
    /// features by edge weights, sum into the destination.
    pub fn weighted_aggregation_sum() -> Self {
        Self {
            edge_op: EdgeOp::Mul,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::Edge,
            c: TensorType::DstV,
        }
    }

    /// The *unweighted-aggr-max* operator of SageMax (§2.2).
    pub fn aggregation_max() -> Self {
        Self {
            edge_op: EdgeOp::CopyLhs,
            gather_op: GatherOp::Max,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::DstV,
        }
    }

    /// Mean aggregation (SageMean).
    pub fn aggregation_mean() -> Self {
        Self {
            edge_op: EdgeOp::CopyLhs,
            gather_op: GatherOp::Mean,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::DstV,
        }
    }

    /// GAT's first message-creation operator: sum source and destination
    /// features into an edge tensor (`u_add_v`).
    pub fn message_creation_add() -> Self {
        Self {
            edge_op: EdgeOp::Add,
            gather_op: GatherOp::CopyRhs,
            a: TensorType::SrcV,
            b: TensorType::DstV,
            c: TensorType::Edge,
        }
    }

    /// Copy source-vertex features onto edges (`copy_u`).
    pub fn message_creation_copy_src() -> Self {
        Self {
            edge_op: EdgeOp::CopyLhs,
            gather_op: GatherOp::CopyRhs,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::Edge,
        }
    }

    /// Sum a pure edge tensor into destination vertices (`copy_e` + sum).
    pub fn edge_aggregation_sum() -> Self {
        Self {
            edge_op: EdgeOp::CopyLhs,
            gather_op: GatherOp::Sum,
            a: TensorType::Edge,
            b: TensorType::Null,
            c: TensorType::DstV,
        }
    }

    /// Checks the Table 4 legality rules.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOperator`] when:
    /// * the output type is `Null` or `SrcV`;
    /// * an operand required by `edge_op` is `Null`, or an operand ignored
    ///   by it is non-`Null`;
    /// * the output is an edge tensor but `gather_op` is a reduction, or
    ///   the output is a vertex tensor but `gather_op` is not a reduction;
    /// * no input is supplied at all.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |reason: &str| {
            Err(CoreError::InvalidOperator {
                op: *self,
                reason: reason.to_owned(),
            })
        };
        match self.c {
            TensorType::Null => return fail("output C must not be Null"),
            TensorType::SrcV => {
                return fail("output C must be Edge or DstV (reductions run over in-edges)")
            }
            _ => {}
        }
        if self.edge_op.uses_a() && self.a == TensorType::Null {
            return fail("edge_op reads A but A is Null");
        }
        if self.edge_op.uses_b() && self.b == TensorType::Null {
            return fail("edge_op reads B but B is Null");
        }
        if !self.edge_op.uses_a() && self.a != TensorType::Null {
            return fail("A is supplied but edge_op ignores it");
        }
        if !self.edge_op.uses_b() && self.b != TensorType::Null {
            return fail("B is supplied but edge_op ignores it");
        }
        if self.a == TensorType::Null && self.b == TensorType::Null {
            return fail("at least one input operand is required");
        }
        match self.c {
            TensorType::Edge => {
                if self.gather_op != GatherOp::CopyRhs {
                    return fail("edge outputs skip the reduction stage (gather must be copy_rhs)");
                }
            }
            TensorType::DstV => {
                if !self.gather_op.is_reduction() {
                    return fail("vertex outputs require a reduction gather op");
                }
            }
            // Null/SrcV already rejected above; a typed error instead of
            // unreachable! keeps validation panic-free even if that
            // restriction ever changes.
            other => {
                return Err(CoreError::Internal {
                    reason: format!("operator validation fell through on output type {other:?}"),
                })
            }
        }
        Ok(())
    }

    /// Classifies the operator per paper Table 2 / Table 4.
    ///
    /// # Panics
    ///
    /// Panics if the operator is invalid; call [`OpInfo::validate`] first.
    pub fn category(&self) -> OpCategory {
        assert!(self.validate().is_ok(), "category() on invalid operator");
        if self.c == TensorType::Edge {
            OpCategory::MessageCreation
        } else if self.a.is_vertex() || self.b.is_vertex() {
            OpCategory::FusedAggregation
        } else {
            OpCategory::MessageAggregation
        }
    }

    /// Whether either input is addressed by the source vertex (drives the
    /// gather-style memory pattern).
    pub fn reads_src(&self) -> bool {
        self.a == TensorType::SrcV || self.b == TensorType::SrcV
    }

    /// Whether either input is an edge tensor.
    pub fn reads_edge(&self) -> bool {
        self.a == TensorType::Edge || self.b == TensorType::Edge
    }

    /// Compact operator label, e.g. `"CopyLhs.Sum(SrcV,Null)->DstV"` —
    /// used as a trace/span attribute and in diagnostics.
    pub fn label(&self) -> String {
        format!(
            "{:?}.{:?}({:?},{:?})->{:?}",
            self.edge_op, self.gather_op, self.a, self.b, self.c
        )
    }
}

/// Enumeration and census of the legal operator space.
pub mod registry {
    use super::*;

    /// Enumerates every valid `(edge_op, gather_op, A, B, C)` combination.
    pub fn all_valid_ops() -> Vec<OpInfo> {
        let mut ops = Vec::new();
        for &edge_op in &EdgeOp::ALL {
            for &gather_op in &GatherOp::ALL {
                for &a in &TensorType::ALL {
                    for &b in &TensorType::ALL {
                        for &c in &[TensorType::Edge, TensorType::DstV] {
                            let op = OpInfo {
                                edge_op,
                                gather_op,
                                a,
                                b,
                                c,
                            };
                            if op.validate().is_ok() {
                                ops.push(op);
                            }
                        }
                    }
                }
            }
        }
        ops
    }

    /// Operator counts per category (the Table 2-style census).
    pub fn census() -> Vec<(OpCategory, usize)> {
        let ops = all_valid_ops();
        [
            OpCategory::MessageCreation,
            OpCategory::MessageAggregation,
            OpCategory::FusedAggregation,
        ]
        .iter()
        .map(|&cat| (cat, ops.iter().filter(|o| o.category() == cat).count()))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_ops_are_valid() {
        for op in [
            OpInfo::aggregation_sum(),
            OpInfo::weighted_aggregation_sum(),
            OpInfo::aggregation_max(),
            OpInfo::aggregation_mean(),
            OpInfo::message_creation_add(),
            OpInfo::message_creation_copy_src(),
            OpInfo::edge_aggregation_sum(),
        ] {
            op.validate().unwrap();
        }
    }

    #[test]
    fn categories_match_table4() {
        assert_eq!(
            OpInfo::aggregation_sum().category(),
            OpCategory::FusedAggregation
        );
        assert_eq!(
            OpInfo::weighted_aggregation_sum().category(),
            OpCategory::FusedAggregation
        );
        assert_eq!(
            OpInfo::message_creation_add().category(),
            OpCategory::MessageCreation
        );
        assert_eq!(
            OpInfo::edge_aggregation_sum().category(),
            OpCategory::MessageAggregation
        );
    }

    #[test]
    fn rejects_null_output() {
        let op = OpInfo {
            edge_op: EdgeOp::Add,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::DstV,
            c: TensorType::Null,
        };
        assert!(op.validate().is_err());
    }

    #[test]
    fn rejects_missing_operand() {
        let op = OpInfo {
            edge_op: EdgeOp::Mul,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::Null,
            c: TensorType::DstV,
        };
        assert!(op.validate().is_err());
    }

    #[test]
    fn rejects_superfluous_operand() {
        let op = OpInfo {
            edge_op: EdgeOp::CopyLhs,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::Edge,
            c: TensorType::DstV,
        };
        assert!(op.validate().is_err());
    }

    #[test]
    fn rejects_reduction_into_edge_output() {
        let op = OpInfo {
            edge_op: EdgeOp::Add,
            gather_op: GatherOp::Sum,
            a: TensorType::SrcV,
            b: TensorType::DstV,
            c: TensorType::Edge,
        };
        assert!(op.validate().is_err());
    }

    #[test]
    fn rejects_copy_gather_into_vertex_output() {
        let op = OpInfo {
            edge_op: EdgeOp::Add,
            gather_op: GatherOp::CopyRhs,
            a: TensorType::SrcV,
            b: TensorType::DstV,
            c: TensorType::DstV,
        };
        assert!(op.validate().is_err());
    }

    #[test]
    fn edge_op_semantics() {
        assert_eq!(EdgeOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(EdgeOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(EdgeOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(EdgeOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(EdgeOp::CopyLhs.apply(2.0, 3.0), 2.0);
        assert_eq!(EdgeOp::CopyRhs.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn gather_op_semantics_and_identities() {
        assert_eq!(GatherOp::Sum.apply(1.0, 2.0), 3.0);
        assert_eq!(GatherOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(GatherOp::Min.apply(1.0, 2.0), 1.0);
        assert_eq!(GatherOp::Max.identity(), f32::NEG_INFINITY);
        assert_eq!(GatherOp::Min.identity(), f32::INFINITY);
        assert_eq!(GatherOp::Sum.identity(), 0.0);
    }

    #[test]
    fn registry_census_shape() {
        let census = registry::census();
        let get = |cat: OpCategory| census.iter().find(|(c, _)| *c == cat).unwrap().1;
        let creation = get(OpCategory::MessageCreation);
        let aggregation = get(OpCategory::MessageAggregation);
        let fused = get(OpCategory::FusedAggregation);
        // Same qualitative shape as Table 2: fused aggregation dominates,
        // and all three categories are populated.
        assert!(creation > 0 && aggregation > 0 && fused > 0);
        assert!(fused > aggregation);
        assert_eq!(
            registry::all_valid_ops().len(),
            creation + aggregation + fused
        );
    }

    #[test]
    fn registry_ops_all_validate() {
        for op in registry::all_valid_ops() {
            op.validate().unwrap();
        }
    }
}
