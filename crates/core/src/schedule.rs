//! The decoupled schedule space (paper §4).
//!
//! A schedule is a [`Strategy`] — which loop is mapped to which GPU
//! execution unit — plus two fine-grained knobs: *V/E grouping* (how many
//! vertices/edges one thread or warp processes) and *feature tiling* (how
//! many threads/warps share one vertex/edge along the feature dimension).
//! Together these trade off locality, parallelism and work-efficiency
//! (paper Table 6); [`ParallelInfo::space`] enumerates the search space the
//! tuner explores.

use ugrapher_util::json::{FromJson, JsonError, ToJson, Value};

/// The four basic parallelization strategies of paper Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One thread per vertex (group); best locality, least parallelism,
    /// no atomics.
    ThreadVertex,
    /// One thread per edge (group); most parallelism, needs atomics for
    /// vertex outputs.
    ThreadEdge,
    /// One warp per vertex (group), lanes across features.
    WarpVertex,
    /// One warp per edge (group), lanes across features; needs atomics for
    /// vertex outputs.
    WarpEdge,
}

impl Strategy {
    /// All four strategies, in the paper's order.
    pub const ALL: [Strategy; 4] = [
        Strategy::ThreadVertex,
        Strategy::ThreadEdge,
        Strategy::WarpVertex,
        Strategy::WarpEdge,
    ];

    /// Whether work items are edges (vs. destination vertices).
    pub fn is_edge_parallel(self) -> bool {
        matches!(self, Strategy::ThreadEdge | Strategy::WarpEdge)
    }

    /// Whether one work item occupies a whole warp (vs. one thread).
    pub fn is_warp_per_item(self) -> bool {
        matches!(self, Strategy::WarpVertex | Strategy::WarpEdge)
    }

    /// The paper's two-letter label (Table 9): TE, WE, TV, WV.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::ThreadVertex => "TV",
            Strategy::ThreadEdge => "TE",
            Strategy::WarpVertex => "WV",
            Strategy::WarpEdge => "WE",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete schedule: strategy plus fine-grained knobs
/// (`parallel_info` in the paper's API, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelInfo {
    /// The basic parallelization strategy.
    pub strategy: Strategy,
    /// V/E grouping: vertices/edges per thread or warp (paper `G`, ≥ 1).
    pub grouping: usize,
    /// Feature tiling: number of feature tiles, i.e. threads/warps sharing
    /// one vertex/edge along the feature dimension (paper `T`, ≥ 1).
    pub tiling: usize,
}

impl ParallelInfo {
    /// A basic schedule: the given strategy with `G = 1, T = 1`.
    pub fn basic(strategy: Strategy) -> Self {
        Self {
            strategy,
            grouping: 1,
            tiling: 1,
        }
    }

    /// Builds a schedule with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics if `grouping == 0` or `tiling == 0`.
    pub fn new(strategy: Strategy, grouping: usize, tiling: usize) -> Self {
        assert!(grouping > 0, "grouping must be >= 1");
        assert!(tiling > 0, "tiling must be >= 1");
        Self {
            strategy,
            grouping,
            tiling,
        }
    }

    /// Checks the schedule is legal: both knobs at least 1.
    ///
    /// The fields are public (and a learned predictor or a deserialized
    /// model may produce arbitrary values), so everything that consumes a
    /// schedule validates it instead of assuming construction went through
    /// [`ParallelInfo::new`]. A zero knob would otherwise surface as a
    /// division by zero inside plan generation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSchedule`](crate::CoreError::InvalidSchedule)
    /// naming the offending knob.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        if self.grouping == 0 {
            return Err(crate::CoreError::InvalidSchedule {
                reason: format!("{}: grouping must be >= 1", self.strategy.label()),
            });
        }
        if self.tiling == 0 {
            return Err(crate::CoreError::InvalidSchedule {
                reason: format!("{}: tiling must be >= 1", self.strategy.label()),
            });
        }
        Ok(())
    }

    /// [`ParallelInfo::validate`], returning the schedule by value for
    /// chaining.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParallelInfo::validate`].
    pub fn validated(self) -> Result<Self, crate::CoreError> {
        self.validate()?;
        Ok(self)
    }

    /// The knob values explored by the tuner (powers of two up to 64, as in
    /// paper Table 9 / Fig. 18).
    pub const KNOB_VALUES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

    /// The full search space: 4 strategies × 7 groupings × 7 tilings.
    pub fn space() -> Vec<ParallelInfo> {
        let mut out = Vec::with_capacity(4 * 7 * 7);
        for &strategy in &Strategy::ALL {
            for &grouping in &Self::KNOB_VALUES {
                for &tiling in &Self::KNOB_VALUES {
                    out.push(ParallelInfo {
                        strategy,
                        grouping,
                        tiling,
                    });
                }
            }
        }
        out
    }

    /// The four basic schedules (no grouping, no tiling) of paper Fig. 7.
    pub fn basics() -> Vec<ParallelInfo> {
        Strategy::ALL.iter().map(|&s| Self::basic(s)).collect()
    }

    /// The paper's Table 9 label, e.g. `"TE_G4_T32"`.
    pub fn label(&self) -> String {
        format!(
            "{}_G{}_T{}",
            self.strategy.label(),
            self.grouping,
            self.tiling
        )
    }
}

impl std::fmt::Display for ParallelInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl ToJson for Strategy {
    fn to_json(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl FromJson for Strategy {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("TV") => Ok(Strategy::ThreadVertex),
            Some("TE") => Ok(Strategy::ThreadEdge),
            Some("WV") => Ok(Strategy::WarpVertex),
            Some("WE") => Ok(Strategy::WarpEdge),
            other => Err(JsonError::new(format!("unknown strategy label {other:?}"))),
        }
    }
}

impl ToJson for ParallelInfo {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("strategy", self.strategy.to_json()),
            ("grouping", self.grouping.to_json()),
            ("tiling", self.tiling.to_json()),
        ])
    }
}

impl FromJson for ParallelInfo {
    /// Decodes and validates: a persisted schedule with a zero knob is
    /// rejected at load time rather than at plan time.
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let p = ParallelInfo {
            strategy: Strategy::from_json(v.field("strategy")?)?,
            grouping: usize::from_json(v.field("grouping")?)?,
            tiling: usize::from_json(v.field("tiling")?)?,
        };
        p.validate().map_err(|e| JsonError::new(e.to_string()))?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_expected_size() {
        let space = ParallelInfo::space();
        assert_eq!(space.len(), 4 * 7 * 7);
        // All entries distinct.
        let set: std::collections::HashSet<_> = space.iter().collect();
        assert_eq!(set.len(), space.len());
    }

    #[test]
    fn basics_are_in_space() {
        let space = ParallelInfo::space();
        for b in ParallelInfo::basics() {
            assert!(space.contains(&b));
        }
    }

    #[test]
    fn labels_match_table9_format() {
        let p = ParallelInfo::new(Strategy::ThreadEdge, 4, 32);
        assert_eq!(p.label(), "TE_G4_T32");
        assert_eq!(
            ParallelInfo::basic(Strategy::WarpVertex).label(),
            "WV_G1_T1"
        );
    }

    #[test]
    fn classification_helpers() {
        assert!(Strategy::ThreadEdge.is_edge_parallel());
        assert!(!Strategy::WarpVertex.is_edge_parallel());
        assert!(Strategy::WarpEdge.is_warp_per_item());
        assert!(!Strategy::ThreadVertex.is_warp_per_item());
    }

    #[test]
    #[should_panic(expected = "grouping must be >= 1")]
    fn zero_grouping_panics() {
        let _ = ParallelInfo::new(Strategy::ThreadEdge, 0, 1);
    }

    #[test]
    fn validate_rejects_zero_knobs() {
        // Public fields make illegal schedules constructible; validate
        // must catch them.
        let bad = ParallelInfo {
            strategy: Strategy::ThreadEdge,
            grouping: 0,
            tiling: 4,
        };
        assert!(bad.validate().is_err());
        let bad = ParallelInfo {
            strategy: Strategy::WarpVertex,
            grouping: 2,
            tiling: 0,
        };
        assert!(bad.validated().is_err());
        assert!(ParallelInfo::basic(Strategy::ThreadVertex)
            .validate()
            .is_ok());
    }
}
