//! Kernel simulation reports.

/// Metrics produced by simulating one kernel (or, after [`SimReport::merge`],
/// a sequence of kernels).
///
/// Field names follow the nvprof metrics the paper collects: achieved
/// occupancy, SM efficiency and L2 hit rate (paper Figs. 3 and 16).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated wall-clock time in milliseconds (including launch
    /// overhead).
    pub time_ms: f64,
    /// Number of kernel launches merged into this report.
    pub kernels: usize,
    /// Time-weighted achieved occupancy in `[0, 1]` (active warps per cycle
    /// over the maximum, on busy SMs).
    pub achieved_occupancy: f64,
    /// Theoretical occupancy from the launch configuration in `[0, 1]`.
    pub theoretical_occupancy: f64,
    /// Fraction of SM-time the SMs were busy, relative to the critical SM
    /// (load balance across SMs), in `[0, 1]`.
    pub sm_efficiency: f64,
    /// L1 hit rate in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// L2 hit rate among L1 misses, in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// Bytes transferred from DRAM.
    pub dram_bytes: f64,
    /// Total memory transactions that reached L2 (L1 misses + atomics).
    pub l2_transactions: f64,
    /// Total L1 transactions (all loads/stores).
    pub l1_transactions: f64,
    /// Total atomic update operations.
    pub atomic_ops: f64,
    /// Largest number of atomic updates serialized on a single address.
    pub max_atomic_conflict: f64,
    /// Total arithmetic warp-cycles.
    pub compute_cycles: f64,
}

impl SimReport {
    /// A zero report (identity element for [`SimReport::merge`]).
    pub fn empty() -> Self {
        Self {
            time_ms: 0.0,
            kernels: 0,
            achieved_occupancy: 0.0,
            theoretical_occupancy: 0.0,
            sm_efficiency: 0.0,
            l1_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            dram_bytes: 0.0,
            l2_transactions: 0.0,
            l1_transactions: 0.0,
            atomic_ops: 0.0,
            max_atomic_conflict: 0.0,
            compute_cycles: 0.0,
        }
    }

    /// Sequential composition: times add; rate metrics are time-weighted;
    /// counters add.
    ///
    /// Rates are averaged only over *non-empty* operands (`kernels > 0`):
    /// an [`SimReport::empty`] side contributes nothing, so the identity
    /// law holds even for rates the empty report stores as zero (e.g.
    /// `theoretical_occupancy`). When both sides ran kernels but report
    /// zero time (degenerate zero-work launches), the weighting falls back
    /// to kernel counts instead of collapsing every rate to zero.
    pub fn merge(&self, other: &Self) -> Self {
        let t = self.time_ms + other.time_ms;
        let (ws, wo) = if self.kernels == 0 && other.kernels == 0 {
            (0.0, 0.0)
        } else if self.kernels == 0 {
            (0.0, 1.0)
        } else if other.kernels == 0 {
            (1.0, 0.0)
        } else if t > 0.0 {
            (self.time_ms / t, other.time_ms / t)
        } else {
            let k = (self.kernels + other.kernels) as f64;
            (self.kernels as f64 / k, other.kernels as f64 / k)
        };
        let w = |a: f64, b: f64| a * ws + b * wo;
        Self {
            time_ms: t,
            kernels: self.kernels + other.kernels,
            achieved_occupancy: w(self.achieved_occupancy, other.achieved_occupancy),
            theoretical_occupancy: w(self.theoretical_occupancy, other.theoretical_occupancy),
            sm_efficiency: w(self.sm_efficiency, other.sm_efficiency),
            l1_hit_rate: w(self.l1_hit_rate, other.l1_hit_rate),
            l2_hit_rate: w(self.l2_hit_rate, other.l2_hit_rate),
            dram_bytes: self.dram_bytes + other.dram_bytes,
            l2_transactions: self.l2_transactions + other.l2_transactions,
            l1_transactions: self.l1_transactions + other.l1_transactions,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            max_atomic_conflict: self.max_atomic_conflict.max(other.max_atomic_conflict),
            compute_cycles: self.compute_cycles + other.compute_cycles,
        }
    }

    /// Merges an iterator of reports.
    pub fn merge_all<'a>(reports: impl IntoIterator<Item = &'a SimReport>) -> Self {
        reports
            .into_iter()
            .fold(Self::empty(), |acc, r| acc.merge(r))
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ms | occ {:.2} (theo {:.2}) | sm_eff {:.2} | L1 {:.2} L2 {:.2} | {:.1} KB DRAM | {} atomics (max chain {})",
            self.time_ms,
            self.achieved_occupancy,
            self.theoretical_occupancy,
            self.sm_efficiency,
            self.l1_hit_rate,
            self.l2_hit_rate,
            self.dram_bytes / 1024.0,
            self.atomic_ops as u64,
            self.max_atomic_conflict as u64,
        )
    }
}

impl Default for SimReport {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time: f64, occ: f64) -> SimReport {
        SimReport {
            time_ms: time,
            kernels: 1,
            achieved_occupancy: occ,
            dram_bytes: 100.0,
            ..SimReport::empty()
        }
    }

    #[test]
    fn merge_adds_time_and_counters() {
        let a = sample(1.0, 0.5);
        let b = sample(3.0, 0.9);
        let m = a.merge(&b);
        assert_eq!(m.time_ms, 4.0);
        assert_eq!(m.kernels, 2);
        assert_eq!(m.dram_bytes, 200.0);
    }

    #[test]
    fn merge_time_weights_rates() {
        let a = sample(1.0, 0.5);
        let b = sample(3.0, 0.9);
        let m = a.merge(&b);
        assert!((m.achieved_occupancy - (0.5 * 1.0 + 0.9 * 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_identity() {
        let a = sample(2.0, 0.7);
        assert_eq!(SimReport::empty().merge(&a), a);
        assert_eq!(a.merge(&SimReport::empty()), a);
    }

    #[test]
    fn empty_is_identity_for_nonzero_rates() {
        // Regression: the empty report stores every rate as 0.0, but it has
        // run no kernels, so it must not drag rates toward zero — even
        // rates that are non-zero in the other operand and even when the
        // other operand reports zero time.
        let mut a = sample(0.0, 0.8);
        a.theoretical_occupancy = 0.9;
        a.sm_efficiency = 0.75;
        assert_eq!(SimReport::empty().merge(&a), a);
        assert_eq!(a.merge(&SimReport::empty()), a);
        let folded = SimReport::merge_all([&SimReport::empty(), &a, &SimReport::empty()]);
        assert_eq!(folded, a);
    }

    #[test]
    fn zero_time_reports_fall_back_to_kernel_count_weights() {
        let mut a = sample(0.0, 0.4);
        a.kernels = 1;
        let mut b = sample(0.0, 0.7);
        b.kernels = 2;
        let m = a.merge(&b);
        // (0.4 * 1 + 0.7 * 2) / 3
        assert!((m.achieved_occupancy - 0.6).abs() < 1e-12);
        assert_eq!(m.kernels, 3);
    }

    #[test]
    fn display_is_nonempty_and_mentions_time() {
        let r = sample(1.5, 0.5);
        let text = r.to_string();
        assert!(text.contains("1.5"));
        assert!(text.contains("ms"));
    }

    #[test]
    fn merge_all_folds() {
        let rs = vec![sample(1.0, 0.4), sample(1.0, 0.6), sample(2.0, 0.5)];
        let m = SimReport::merge_all(&rs);
        assert_eq!(m.time_ms, 4.0);
        assert_eq!(m.kernels, 3);
    }
}
