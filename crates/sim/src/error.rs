//! Typed errors for the simulator.

use std::fmt;

/// Errors from device validation and fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A [`DeviceConfig`](crate::DeviceConfig) parameter is unusable
    /// (zero SMs, non-positive clock, zero warp size, ...).
    InvalidDevice {
        /// Which field failed and why.
        reason: String,
    },
    /// A fault-injection request is itself malformed (e.g. a non-finite
    /// perturbation factor).
    InvalidFault {
        /// What was wrong with the request.
        reason: String,
    },
    /// A simulation feature was requested under an incompatible
    /// configuration (e.g. write logging on a sampled trace).
    InvalidConfig {
        /// What was incompatible.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidDevice { reason } => write!(f, "invalid device config: {reason}"),
            SimError::InvalidFault { reason } => write!(f, "invalid fault spec: {reason}"),
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation config: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}
