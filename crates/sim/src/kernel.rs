//! Trace front-end: records per-block costs while streaming accesses
//! through the cache hierarchy.

use std::collections::HashMap;

use crate::access::Access;
use crate::cache::Cache;
use crate::device::DeviceConfig;
use crate::report::SimReport;
use crate::timing::{self, BlockCost};
use crate::writeset::WriteLog;

/// Grid configuration of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// Total thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block (multiple of the warp size in practice).
    pub threads_per_block: usize,
    /// Estimated registers per thread (occupancy limiter).
    pub regs_per_thread: usize,
    /// Each traced block stands for this many identical blocks (sampled
    /// tracing; `1.0` = full fidelity).
    pub replication: f64,
}

impl LaunchConfig {
    /// A full-fidelity launch with 32 registers per thread.
    pub fn new(grid_blocks: usize, threads_per_block: usize) -> Self {
        Self {
            grid_blocks,
            threads_per_block,
            regs_per_thread: 32,
            replication: 1.0,
        }
    }

    /// Sets the per-thread register estimate.
    pub fn with_regs(mut self, regs_per_thread: usize) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }

    /// Sets the sampling replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `replication < 1.0`.
    pub fn with_replication(mut self, replication: f64) -> Self {
        assert!(replication >= 1.0, "replication must be >= 1");
        self.replication = replication;
        self
    }
}

/// Which cache level a store participates in (kept public for extensions;
/// the convenience methods [`KernelSim::load`] / [`KernelSim::atomic`]
/// choose it automatically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemScope {
    /// Cached in L1 (ordinary loads and stores).
    L1,
    /// Bypasses L1 and operates at L2 (atomics on Volta/Ampere).
    L2,
}

/// Simulates one kernel launch.
///
/// Usage protocol: [`KernelSim::begin_block`], then any number of
/// [`KernelSim::load`] / [`KernelSim::store`] / [`KernelSim::atomic`] /
/// [`KernelSim::compute`] calls, then [`KernelSim::end_block`]; finally
/// [`KernelSim::finish`].
#[derive(Debug)]
pub struct KernelSim {
    device: DeviceConfig,
    launch: LaunchConfig,
    l1: Vec<Cache>,
    l2: Cache,
    pool: Vec<BlockCost>,
    current: Option<(usize, BlockCost)>,
    conflicts: HashMap<u64, f64>,
    line_buf: Vec<u64>,
    atomic_ops: f64,
    cold: ColdTracker,
    block_scale: f64,
    write_log: Option<WriteLog>,
}

/// Growable bitmap over line ids, marking lines seen at L2.
///
/// Sampled tracing thins the access stream by the replication factor `w`,
/// which would inflate *cold* misses w-fold: the first touch of a line in
/// the traced stream misses, but the `w - 1` untraced replicas of that
/// access would have hit. [`KernelSim`] therefore charges a cold L2 miss as
/// `1/w` DRAM + `(w-1)/w` L2-hit, restoring the full-stream expectation.
#[derive(Debug, Default)]
struct ColdTracker {
    bits: Vec<u64>,
}

impl ColdTracker {
    /// Marks `line` as seen; returns `true` if this was the first touch.
    fn first_touch(&mut self, line: u64) -> bool {
        let idx = (line / 64) as usize;
        let bit = line % 64;
        if idx >= self.bits.len() {
            self.bits.resize(idx + 1, 0);
        }
        let seen = (self.bits[idx] >> bit) & 1 == 1;
        self.bits[idx] |= 1 << bit;
        !seen
    }
}

impl KernelSim {
    /// Creates a simulator for one kernel on the given device.
    pub fn new(device: &DeviceConfig, launch: LaunchConfig) -> Self {
        let l1 = (0..device.num_sms)
            .map(|_| Cache::new(device.l1_bytes, device.line_bytes, device.l1_assoc))
            .collect();
        let l2 = Cache::new(device.l2_bytes, device.line_bytes, device.l2_assoc);
        Self {
            device: device.clone(),
            launch,
            l1,
            l2,
            pool: Vec::new(),
            current: None,
            conflicts: HashMap::new(),
            line_buf: Vec::with_capacity(64),
            atomic_ops: 0.0,
            cold: ColdTracker::default(),
            block_scale: 1.0,
            write_log: None,
        }
    }

    /// Turns on word-granular write logging (see [`WriteLog`]): every
    /// subsequent [`KernelSim::store`] / [`KernelSim::atomic`] is recorded,
    /// and [`KernelSim::finish_with_writes`] returns the log.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`](crate::SimError) if the launch
    /// uses sampled tracing (`replication > 1`): a thinned access stream
    /// under-counts writers, so the log would miss real conflicts.
    pub fn enable_write_log(&mut self) -> Result<(), crate::SimError> {
        if self.launch.replication > 1.0 {
            return Err(crate::SimError::InvalidConfig {
                reason: format!(
                    "write logging requires full-fidelity tracing \
                     (launch replication is {})",
                    self.launch.replication
                ),
            });
        }
        self.write_log = Some(WriteLog::new());
        Ok(())
    }

    /// Starts tracing block `block_id` (assigned round-robin to SMs, as the
    /// hardware work distributor does for uniform grids).
    ///
    /// # Panics
    ///
    /// Panics if a block is already open.
    pub fn begin_block(&mut self, block_id: u32) {
        self.begin_block_scaled(block_id, 1.0);
    }

    /// Starts tracing block `block_id` with intra-block sampling: only a
    /// `1/scale` fraction of the block's warps will be traced, and every
    /// recorded cost is multiplied by `scale` so the block's totals remain
    /// representative (used when single blocks are too large to trace in
    /// full).
    ///
    /// # Panics
    ///
    /// Panics if a block is already open or `scale < 1.0`.
    pub fn begin_block_scaled(&mut self, block_id: u32, scale: f64) {
        assert!(self.current.is_none(), "previous block not ended");
        assert!(scale >= 1.0, "block scale must be >= 1");
        let sm = block_id as usize % self.device.num_sms;
        self.block_scale = scale;
        self.current = Some((sm, BlockCost::default()));
    }

    /// Records a global-memory load by the current warp.
    pub fn load(&mut self, access: Access) {
        self.cached_access(access);
    }

    /// Records a non-atomic global-memory store (write-allocate, so it
    /// costs the same traffic as a load in this model).
    pub fn store(&mut self, access: Access) {
        if let Some(log) = self.write_log.as_mut() {
            log.record(&access, false);
        }
        self.cached_access(access);
    }

    /// Records an atomic read-modify-write. Atomics bypass L1 and execute
    /// at L2. `conflict_groups` identifies the logical locations being
    /// updated (e.g. one id per destination row); same-group updates across
    /// the whole kernel serialize on the hottest location.
    pub fn atomic(&mut self, access: Access, conflict_groups: impl IntoIterator<Item = u64>) {
        if let Some(log) = self.write_log.as_mut() {
            log.record(&access, true);
        }
        let scale = self.block_scale;
        let w = self.launch.replication * scale;
        let (sm, cost) = self.current.as_mut().expect("atomic outside a block");
        let _ = sm;
        let device = &self.device;
        self.line_buf.clear();
        access.lines(device, &mut self.line_buf);
        for &line in &self.line_buf {
            cost.atomics += scale;
            if self.l2.access_line(line, w) {
                cost.l2_hits += scale;
            } else if w > 1.0 && self.cold.first_touch(line) {
                cost.dram += scale / w;
                cost.l2_hits += scale * (w - 1.0) / w;
            } else {
                cost.dram += scale;
            }
        }
        for g in conflict_groups {
            self.atomic_ops += w;
            *self.conflicts.entry(g).or_insert(0.0) += w;
        }
    }

    /// Adds arithmetic warp-cycles to the current block.
    ///
    /// # Panics
    ///
    /// Panics if called outside a `begin_block`/`end_block` pair.
    pub fn compute(&mut self, warp_cycles: f64) {
        let scale = self.block_scale;
        self.current
            .as_mut()
            .expect("compute outside a block")
            .1
            .compute += warp_cycles * scale;
    }

    /// Finishes the current block.
    ///
    /// # Panics
    ///
    /// Panics if no block is open.
    pub fn end_block(&mut self) {
        let (_sm, cost) = self.current.take().expect("no block open");
        self.pool.push(cost);
    }

    /// Produces the final report plus the write log, if
    /// [`KernelSim::enable_write_log`] was called.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open.
    pub fn finish_with_writes(mut self) -> (SimReport, Option<WriteLog>) {
        let log = self.write_log.take();
        (self.finish(), log)
    }

    /// Produces the final report.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open.
    pub fn finish(self) -> SimReport {
        assert!(self.current.is_none(), "block still open at finish");
        let d = &self.device;
        let timing = timing::time_kernel(
            d,
            &self.pool,
            self.launch.grid_blocks,
            self.launch.threads_per_block,
            self.launch.regs_per_thread,
        );

        // Atomic serialization: the hottest location's updates form a
        // dependency chain at the L2 atomic unit.
        let max_conflict = self.conflicts.values().cloned().fold(0.0, f64::max);
        let atomic_chain = max_conflict * d.atomic_serial_cycles;
        let cycles = timing.cycles.max(atomic_chain);

        let w = self.launch.replication;
        let mut totals = BlockCost::default();
        let mut compute = 0.0;
        for b in &self.pool {
            totals = BlockCost {
                compute: totals.compute + b.compute,
                l1_hits: totals.l1_hits + b.l1_hits,
                l2_hits: totals.l2_hits + b.l2_hits,
                dram: totals.dram + b.dram,
                atomics: totals.atomics + b.atomics,
            };
            compute += b.compute;
        }

        let warps_per_block = self.launch.threads_per_block.div_ceil(d.warp_size).max(1);
        let res = timing::residency(
            d,
            self.launch.threads_per_block,
            self.launch.regs_per_thread,
        );
        let theoretical = ((res * warps_per_block) as f64 / d.max_warps_per_sm as f64).min(1.0);

        let l1_total = totals.l1_transactions() * w;
        let l2_total = totals.l2_transactions() * w;
        let l1_hit_rate = if l1_total > 0.0 {
            totals.l1_hits * w / l1_total
        } else {
            0.0
        };
        let l2_hit_rate = if l2_total > 0.0 {
            totals.l2_hits * w / l2_total
        } else {
            0.0
        };

        SimReport {
            time_ms: d.cycles_to_ms(cycles) + d.launch_overhead_us * 1e-3,
            kernels: 1,
            achieved_occupancy: timing.achieved_occupancy,
            theoretical_occupancy: theoretical,
            sm_efficiency: timing.sm_efficiency,
            l1_hit_rate,
            l2_hit_rate,
            dram_bytes: totals.dram * w * d.line_bytes as f64,
            l2_transactions: l2_total,
            l1_transactions: l1_total,
            atomic_ops: self.atomic_ops,
            max_atomic_conflict: max_conflict,
            compute_cycles: compute * w,
        }
    }

    fn cached_access(&mut self, access: Access) {
        let scale = self.block_scale;
        let w = self.launch.replication * scale;
        let (sm, cost) = self
            .current
            .as_mut()
            .expect("memory access outside a block");
        let device = &self.device;
        self.line_buf.clear();
        access.lines(device, &mut self.line_buf);
        let l1 = &mut self.l1[*sm];
        for &line in &self.line_buf {
            if l1.access_line(line, w) {
                cost.l1_hits += scale;
            } else if self.l2.access_line(line, w) {
                cost.l2_hits += scale;
            } else if w > 1.0 && self.cold.first_touch(line) {
                cost.dram += scale / w;
                cost.l2_hits += scale * (w - 1.0) / w;
            } else {
                cost.dram += scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_blocks(n: u32, f: impl Fn(&mut KernelSim, u32)) -> SimReport {
        let d = DeviceConfig::v100();
        let mut sim = KernelSim::new(&d, LaunchConfig::new(n as usize, 256));
        for b in 0..n {
            sim.begin_block(b);
            f(&mut sim, b);
            sim.end_block();
        }
        sim.finish()
    }

    #[test]
    fn repeated_loads_hit_l1() {
        let r = run_blocks(1, |sim, _| {
            for _ in 0..10 {
                sim.load(Access::Coalesced { base: 0, lanes: 32 });
            }
        });
        assert!(r.l1_hit_rate > 0.85, "l1 hit rate {}", r.l1_hit_rate);
    }

    #[test]
    fn distinct_streams_miss() {
        let r = run_blocks(1, |sim, _| {
            for i in 0..10_000u64 {
                sim.load(Access::Coalesced {
                    base: i * 128,
                    lanes: 32,
                });
            }
        });
        assert!(r.l1_hit_rate < 0.05);
        assert!(r.dram_bytes > 0.0);
    }

    #[test]
    fn shared_l2_caches_across_blocks() {
        // Two blocks on different SMs read the same data: the second one
        // should hit in L2 even though its L1 is cold.
        let r = run_blocks(2, |sim, _| {
            for i in 0..100u64 {
                sim.load(Access::Coalesced {
                    base: i * 128,
                    lanes: 32,
                });
            }
        });
        assert!(r.l2_hit_rate > 0.45, "l2 hit rate {}", r.l2_hit_rate);
    }

    #[test]
    fn atomics_bypass_l1_and_track_conflicts() {
        let r = run_blocks(4, |sim, _| {
            for _ in 0..25 {
                sim.atomic(Access::Broadcast { addr: 64 }, [7u64]);
            }
        });
        assert_eq!(r.atomic_ops, 100.0);
        assert_eq!(r.max_atomic_conflict, 100.0);
    }

    #[test]
    fn hot_atomic_serialization_dominates_time() {
        let light = run_blocks(4, |sim, _| {
            sim.atomic(Access::Broadcast { addr: 64 }, [7u64]);
            sim.compute(1.0);
        });
        let heavy = run_blocks(4, |sim, _| {
            for _ in 0..100_000 {
                sim.atomic(Access::Broadcast { addr: 64 }, [7u64]);
            }
        });
        assert!(heavy.time_ms > light.time_ms * 10.0);
    }

    #[test]
    fn replicated_cold_misses_are_amortized() {
        let d = DeviceConfig::v100();
        let mut sim = KernelSim::new(&d, LaunchConfig::new(8, 256).with_replication(8.0));
        sim.begin_block(0);
        sim.load(Access::Coalesced { base: 0, lanes: 32 });
        sim.end_block();
        let r = sim.finish();
        // The 8 replicas of this block together fetch each of the 4 sectors
        // from DRAM exactly once; the other 7 touches hit in L2.
        assert_eq!(r.dram_bytes, 4.0 * 32.0);
        assert!((r.l2_hit_rate - 7.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn replicated_capacity_misses_are_not_amortized() {
        let d = DeviceConfig::v100();
        // Stream far more than the 6 MB L2 twice: the second pass re-misses
        // (capacity), and those misses must scale with replication.
        let lines = 2 * d.l2_bytes as u64 / d.line_bytes as u64;
        let mut sim = KernelSim::new(&d, LaunchConfig::new(8, 256).with_replication(4.0));
        sim.begin_block(0);
        for pass in 0..2 {
            let _ = pass;
            for i in 0..lines {
                sim.load(Access::Broadcast {
                    addr: i * d.line_bytes as u64,
                });
            }
        }
        sim.end_block();
        let r = sim.finish();
        // First pass: cold, amortized to `lines` real fills. Second pass:
        // capacity misses, charged fully (x4 replication).
        let expected = (lines as f64) * d.line_bytes as f64 * (1.0 + 4.0);
        let tolerance = expected * 0.05;
        assert!(
            (r.dram_bytes - expected).abs() < tolerance,
            "dram {} vs expected {}",
            r.dram_bytes,
            expected
        );
    }

    #[test]
    fn theoretical_occupancy_reflects_block_size() {
        let d = DeviceConfig::v100();
        // 1024-thread blocks with 64 regs/thread: register-limited.
        let sim = KernelSim::new(&d, LaunchConfig::new(1, 1024).with_regs(64));
        let r = sim.finish();
        assert!(r.theoretical_occupancy <= 0.5);
    }

    #[test]
    #[should_panic(expected = "previous block not ended")]
    fn double_begin_panics() {
        let d = DeviceConfig::v100();
        let mut sim = KernelSim::new(&d, LaunchConfig::new(2, 256));
        sim.begin_block(0);
        sim.begin_block(1);
    }

    #[test]
    fn more_blocks_increase_sm_efficiency() {
        let few = run_blocks(4, |sim, _| {
            for i in 0..1000u64 {
                sim.load(Access::Coalesced {
                    base: i * 128,
                    lanes: 32,
                });
            }
            sim.compute(1000.0);
        });
        let many = run_blocks(800, |sim, b| {
            for i in 0..100u64 {
                sim.load(Access::Coalesced {
                    base: (b as u64 * 100 + i) * 128,
                    lanes: 32,
                });
            }
            sim.compute(100.0);
        });
        assert!(
            many.sm_efficiency > few.sm_efficiency * 2.0,
            "many {} vs few {}",
            many.sm_efficiency,
            few.sm_efficiency
        );
    }
}
