//! Wave-based analytical timing model.
//!
//! Blocks are dispatched round-robin to SMs; each SM executes its blocks in
//! *waves* of up to `residency` concurrent blocks (the occupancy limit).
//! Each wave's duration is the maximum of five bottleneck terms:
//!
//! * **issue** — total arithmetic warp-cycles over the SM's issue width,
//! * **L1 throughput** — four 32 B sectors per cycle,
//! * **L2 bandwidth** — the SM's fair share of device L2 bandwidth,
//! * **DRAM bandwidth** — the SM's fair share of DRAM bandwidth,
//! * **exposed latency** — total miss latency divided by how many warps are
//!   resident to hide it (this is where low occupancy hurts, paper §4.1).
//!
//! The timing front-end receives a *pool* of traced blocks (all of them at
//! full fidelity, a sample otherwise) plus the real grid size; virtual
//! block `j` of the grid reuses `pool[j % pool_len]` and runs on SM
//! `j % num_sms`, so sampled runs preserve the full grid's wave structure
//! and SM balance.
//!
//! The model is in the spirit of analytical GPU models (Hong & Kim,
//! ISCA'09) rather than cycle-accurate simulation: it reproduces the
//! *orderings and crossovers* between scheduling strategies that the
//! paper's evaluation is about, at a cost low enough to sit inside a
//! grid-search tuner.

use crate::DeviceConfig;

/// Per-block cost summary accumulated by the trace front-end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockCost {
    /// Arithmetic warp-cycles.
    pub compute: f64,
    /// Transactions that hit in L1.
    pub l1_hits: f64,
    /// Transactions that hit in L2.
    pub l2_hits: f64,
    /// Transactions served by DRAM.
    pub dram: f64,
    /// Atomic transactions (bypass L1; included in the L2/DRAM counts).
    pub atomics: f64,
}

impl BlockCost {
    /// All transactions that reached L1 (everything except atomics).
    pub fn l1_transactions(&self) -> f64 {
        self.l1_hits + self.l2_hits + self.dram - self.atomics
    }

    /// All transactions that reached L2.
    pub fn l2_transactions(&self) -> f64 {
        self.l2_hits + self.dram
    }

    fn accumulate(&mut self, other: &Self) {
        self.compute += other.compute;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.dram += other.dram;
        self.atomics += other.atomics;
    }
}

/// Result of timing one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingResult {
    /// Kernel duration in cycles (excluding launch overhead).
    pub cycles: f64,
    /// Time-weighted achieved occupancy on busy SMs, in `[0, 1]`.
    pub achieved_occupancy: f64,
    /// Fraction of `num_sms * critical_sm_time` that SMs were busy.
    pub sm_efficiency: f64,
}

/// Occupancy-limited number of concurrently resident blocks per SM.
pub fn residency(device: &DeviceConfig, threads_per_block: usize, regs_per_thread: usize) -> usize {
    let warps_per_block = threads_per_block.div_ceil(device.warp_size).max(1);
    let by_warps = device.max_warps_per_sm / warps_per_block;
    let by_regs = device.registers_per_sm / (regs_per_thread.max(1) * threads_per_block.max(1));
    by_warps.min(device.max_blocks_per_sm).min(by_regs).max(1)
}

/// Deals virtual block `j` onto a sampled pool of `len` traced blocks.
///
/// The multiplicative (Fibonacci) hash decorrelates the pool index from
/// the SM stride — plain `j % len` would pin each SM to a tiny subset of
/// the sample whenever `len` shares a factor with `num_sms`. The hash is
/// reduced to `0..len` with a 128-bit widening multiply that keeps the
/// *high* 64 bits: every bucket receives either `floor(2^64/len)` or
/// `ceil(2^64/len)` hash values, a relative imbalance below `len/2^64`.
/// The previous `(hash >> 23) % len` form first truncated the hash to 41
/// bits and then took a modulo, which over-represents the low residues by
/// up to `len/2^41` — a measurable skew toward the front of the pool for
/// the pool sizes the sampler actually uses.
fn spread(j: usize, len: usize) -> usize {
    let hash = (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (((hash as u128) * (len as u128)) >> 64) as usize
}

/// Computes kernel time and utilization metrics from the traced block pool.
///
/// `grid_blocks` is the real grid size; virtual block `j` runs on SM
/// `j % device.num_sms` and replays `pool[j]` directly when the pool
/// covers the grid, or a hash-dealt sample (`pool[spread(j, len)]`)
/// otherwise.
pub fn time_kernel(
    device: &DeviceConfig,
    pool: &[BlockCost],
    grid_blocks: usize,
    threads_per_block: usize,
    regs_per_thread: usize,
) -> TimingResult {
    if pool.is_empty() || grid_blocks == 0 {
        return TimingResult {
            cycles: 0.0,
            achieved_occupancy: 0.0,
            sm_efficiency: 0.0,
        };
    }
    let warps_per_block = threads_per_block.div_ceil(device.warp_size).max(1) as f64;
    let res = residency(device, threads_per_block, regs_per_thread);

    let l1_sectors_per_cycle = 4.0;
    let l2_bpc = device.l2_bytes_per_cycle_per_sm();
    let dram_bpc = device.dram_bytes_per_cycle_per_sm();
    let line = device.line_bytes as f64;

    let mut active_warp_cycles = 0.0;
    let mut busy_time_total = 0.0;
    let mut critical = 0.0f64;

    // Full-fidelity pools map virtual block j to traced block j directly.
    // Sampled pools are dealt through a multiplicative hash so the pool
    // index never aliases with the SM stride (e.g. 80 SMs over a pool whose
    // length shares a factor with 80 would otherwise pin each SM to a tiny
    // subset of the sample).
    let full = pool.len() >= grid_blocks;
    let pick = |j: usize| -> usize {
        if full {
            j
        } else {
            spread(j, pool.len())
        }
    };

    // In sampled mode the per-SM wave sequence is statistically
    // stationary (blocks are hash-dealt from the pool), so simulating a
    // bounded number of waves and extrapolating the rest is accurate and
    // keeps timing O(SMs x MAX_WAVES) even for million-block grids.
    const MAX_WAVES: usize = 48;
    let cap_waves = !full;

    let mut standalone: Vec<f64> = Vec::with_capacity(res);
    for sm in 0..device.num_sms.min(grid_blocks) {
        let mut sm_time = 0.0;
        let mut sm_active = 0.0;
        let mut waves_done = 0usize;
        let blocks_of_sm = if grid_blocks > sm {
            (grid_blocks - sm - 1) / device.num_sms + 1
        } else {
            0
        };
        let waves_total = blocks_of_sm.div_ceil(res.max(1));
        // Virtual block ids owned by this SM: sm, sm + num_sms, ...
        let mut j = sm;
        while j < grid_blocks {
            if cap_waves && waves_done >= MAX_WAVES {
                break;
            }
            // One wave: up to `res` consecutive blocks of this SM.
            let mut agg = BlockCost::default();
            standalone.clear();
            let mut max_standalone = 0.0f64;
            let mut in_wave = 0usize;
            while in_wave < res && j < grid_blocks {
                let b = &pool[pick(j)];
                agg.accumulate(b);
                let latency = (b.l1_hits * device.l1_latency
                    + b.l2_hits * device.l2_latency
                    + b.dram * device.dram_latency)
                    / (warps_per_block * device.mlp_per_warp);
                let t = (b.compute / device.issue_width).max(latency);
                standalone.push(t);
                max_standalone = max_standalone.max(t);
                in_wave += 1;
                j += device.num_sms;
            }

            let issue = agg.compute / device.issue_width;
            let l1_thru = agg.l1_transactions() / l1_sectors_per_cycle;
            let l2_bw = agg.l2_transactions() * line / l2_bpc;
            let dram_bw = agg.dram * line / dram_bpc;
            let wave_time = issue
                .max(l1_thru)
                .max(l2_bw)
                .max(dram_bw)
                .max(max_standalone);

            if wave_time > 0.0 {
                // When the wave is bandwidth-bound every block stretches
                // proportionally; the per-block active-time ratio is
                // preserved, exposing intra-wave imbalance as idle warps.
                if max_standalone > 0.0 {
                    let stretch = wave_time / max_standalone;
                    for t in &standalone {
                        sm_active += t * stretch * warps_per_block;
                    }
                } else {
                    sm_active += wave_time * warps_per_block * in_wave as f64;
                }
            }
            sm_time += wave_time;
            waves_done += 1;
        }
        if waves_done > 0 && waves_done < waves_total {
            // Extrapolate the remaining waves from the simulated average.
            let factor = waves_total as f64 / waves_done as f64;
            sm_time *= factor;
            sm_active *= factor;
        }
        active_warp_cycles += sm_active;
        busy_time_total += sm_time;
        critical = critical.max(sm_time);
    }

    let sm_efficiency = if critical > 0.0 {
        busy_time_total / (device.num_sms as f64 * critical)
    } else {
        0.0
    };
    let achieved_occupancy = if busy_time_total > 0.0 {
        (active_warp_cycles / (busy_time_total * device.max_warps_per_sm as f64)).min(1.0)
    } else {
        0.0
    };

    TimingResult {
        cycles: critical,
        achieved_occupancy,
        sm_efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::v100()
    }

    fn compute_block(c: f64) -> BlockCost {
        BlockCost {
            compute: c,
            ..Default::default()
        }
    }

    #[test]
    fn spread_is_unbiased_across_pool_sizes() {
        // Chi-square-style uniformity check of the sampled-pool block
        // picker, over pool sizes with and without common factors with
        // powers of two (the old `(hash >> 23) % len` reduction skewed
        // toward low indices). Inputs are random virtual block ids drawn
        // from the deterministic workspace RNG, plus the sequential ids
        // the simulator actually feeds.
        let mut rng = ugrapher_util::rng::StdRng::seed_from_u64(0xC0FFEE);
        for len in [7usize, 8, 9, 16, 17, 80, 96] {
            let mut counts = vec![0u64; len];
            const DRAWS: usize = 200_000;
            for i in 0..DRAWS {
                // Half random ids, half the sequential stream.
                let j = if i % 2 == 0 {
                    (rng.next_u64() >> 16) as usize
                } else {
                    i
                };
                counts[spread(j, len)] += 1;
            }
            let expected = DRAWS as f64 / len as f64;
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum();
            // Very generous acceptance: 3x the dof. A modulo-biased
            // reduction fails this by orders of magnitude at these draw
            // counts; a uniform one sits near `len - 1`.
            assert!(
                chi2 < 3.0 * len as f64,
                "pool len {len}: chi2 = {chi2:.1}, counts = {counts:?}"
            );
            assert!(
                counts.iter().all(|&c| c > 0),
                "pool len {len}: unused bucket"
            );
        }
    }

    #[test]
    fn spread_stays_in_bounds() {
        for len in 1..=32 {
            for j in 0..10_000 {
                assert!(spread(j, len) < len);
            }
        }
    }

    #[test]
    fn residency_limited_by_warps() {
        let d = dev();
        // 1024 threads = 32 warps -> at most 2 blocks of 32 warps in 64.
        assert_eq!(residency(&d, 1024, 32), 2);
        // 64 threads = 2 warps -> warp limit allows 32, block limit 32.
        assert_eq!(residency(&d, 64, 32), 32);
    }

    #[test]
    fn residency_limited_by_registers() {
        let d = dev();
        // 256 threads x 128 regs = 32768 regs -> 2 blocks fit in 65536.
        assert_eq!(residency(&d, 256, 128), 2);
    }

    #[test]
    fn single_block_grid_leaves_sms_idle() {
        let d = dev();
        let pool = vec![compute_block(1000.0)];
        let t = time_kernel(&d, &pool, 1, 256, 32);
        assert!(t.sm_efficiency < 0.05, "eff={}", t.sm_efficiency);

        // The same block on every SM: near-perfect efficiency.
        let t2 = time_kernel(&d, &pool, d.num_sms, 256, 32);
        assert!(t2.sm_efficiency > 0.99);
        assert!((t2.cycles - t.cycles).abs() < 1e-9);
    }

    #[test]
    fn more_parallelism_hides_latency() {
        let d = dev();
        // Same total DRAM latency, as 1 block vs 8 concurrent blocks per SM.
        let solo = vec![BlockCost {
            dram: 1000.0,
            ..Default::default()
        }];
        let t_solo = time_kernel(&d, &solo, d.num_sms, 64, 32);
        let split = vec![BlockCost {
            dram: 125.0,
            ..Default::default()
        }];
        let t_split = time_kernel(&d, &split, d.num_sms * 8, 64, 32);
        assert!(
            t_split.cycles < t_solo.cycles,
            "split {} !< solo {}",
            t_split.cycles,
            t_solo.cycles
        );
        assert!(t_split.achieved_occupancy > t_solo.achieved_occupancy);
    }

    #[test]
    fn bandwidth_bound_wave_scales_with_traffic() {
        let d = dev();
        let mk = |dram: f64| {
            let pool = vec![BlockCost {
                dram,
                ..Default::default()
            }];
            time_kernel(&d, &pool, d.num_sms * 8, 256, 32).cycles
        };
        let t1 = mk(10_000.0);
        let t2 = mk(20_000.0);
        assert!(t2 > t1 * 1.8, "t1={t1} t2={t2}");
    }

    #[test]
    fn sampled_pool_reproduces_full_grid_time() {
        let d = dev();
        // A homogeneous grid: timing a 1-block pool against the full pool
        // must agree exactly.
        let full: Vec<BlockCost> = (0..d.num_sms * 16).map(|_| compute_block(700.0)).collect();
        let sampled = vec![compute_block(700.0)];
        let t_full = time_kernel(&d, &full, full.len(), 256, 32);
        let t_sampled = time_kernel(&d, &sampled, full.len(), 256, 32);
        assert!((t_full.cycles - t_sampled.cycles).abs() < 1e-9);
        assert!((t_full.sm_efficiency - t_sampled.sm_efficiency).abs() < 1e-9);
    }

    #[test]
    fn replication_serializes_when_residency_is_one() {
        let d = dev();
        // 1024 threads x 64 regs -> residency 1: grid 4x => 4x the time.
        let pool = vec![compute_block(500.0)];
        let t1 = time_kernel(&d, &pool, d.num_sms, 1024, 64);
        let t4 = time_kernel(&d, &pool, 4 * d.num_sms, 1024, 64);
        assert!((t4.cycles - 4.0 * t1.cycles).abs() < 1e-9);
    }

    #[test]
    fn intra_wave_imbalance_lowers_occupancy() {
        let d = dev();
        // Waves of 8 blocks; one block does 10x the work of the others.
        let mut skew = vec![compute_block(10_000.0)];
        skew.extend((0..7).map(|_| compute_block(1_000.0)));
        let balanced: Vec<BlockCost> = (0..8).map(|_| compute_block(1_000.0)).collect();
        // 256-thread blocks -> residency 8, so each pool forms one wave
        // repeated across the grid.
        let grid = d.num_sms * 8;
        let t_skew = time_kernel(&d, &skew, grid, 256, 32);
        let t_bal = time_kernel(&d, &balanced, grid, 256, 32);
        assert!(
            t_skew.achieved_occupancy < t_bal.achieved_occupancy * 0.6,
            "skew occ {} vs bal occ {}",
            t_skew.achieved_occupancy,
            t_bal.achieved_occupancy
        );
    }

    #[test]
    fn empty_kernel_has_zero_time() {
        let d = dev();
        let t = time_kernel(&d, &[], 0, 256, 32);
        assert_eq!(t.cycles, 0.0);
        assert_eq!(t.sm_efficiency, 0.0);
    }
}
