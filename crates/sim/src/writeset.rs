//! Write-set instrumentation for the dynamic race cross-check.
//!
//! When enabled on a [`KernelSim`](crate::KernelSim), every `store` /
//! `atomic` event is additionally recorded at 4-byte word granularity into
//! a [`WriteLog`]. The intended client is `ugrapher-analyze`'s dynamic
//! cross-check: the uGrapher tracer emits exactly one store (or atomic)
//! per output element per owning work item, so an address recorded twice
//! was written by two *distinct* work items — a concurrency conflict —
//! and a conflict containing a non-atomic write is an unprotected race.
//!
//! The log must be driven at full fidelity (no block sampling, no
//! replication): a thinned trace under-counts writers and can miss real
//! conflicts, so [`KernelSim::enable_write_log`](crate::KernelSim::enable_write_log)
//! rejects replicated launches.

use std::collections::HashMap;

use crate::access::Access;

/// Write counts for one 4-byte word of global memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordWrites {
    /// Total write events (stores + atomics) touching this word.
    pub total: u32,
    /// How many of them were atomic read-modify-writes.
    pub atomic: u32,
}

impl WordWrites {
    /// `true` when at least two writers touched this word.
    pub fn contended(&self) -> bool {
        self.total >= 2
    }

    /// `true` when the word is contended and at least one write was a
    /// plain (non-atomic) store — i.e. an actual data race.
    pub fn unprotected(&self) -> bool {
        self.contended() && self.atomic < self.total
    }
}

/// Word-granular log of every output write a simulated kernel performed.
#[derive(Debug, Clone, Default)]
pub struct WriteLog {
    words: HashMap<u64, WordWrites>,
    scratch: Vec<u64>,
}

impl WriteLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one warp write instruction.
    pub fn record(&mut self, access: &Access, atomic: bool) {
        self.scratch.clear();
        access.word_addrs(&mut self.scratch);
        for &w in &self.scratch {
            let entry = self.words.entry(w).or_default();
            entry.total += 1;
            if atomic {
                entry.atomic += 1;
            }
        }
    }

    /// Number of distinct words written.
    pub fn num_addresses(&self) -> usize {
        self.words.len()
    }

    /// Total write events across all words.
    pub fn total_writes(&self) -> u64 {
        self.words.values().map(|w| w.total as u64).sum()
    }

    /// Words written by at least two writers, i.e. the observed
    /// concurrency conflicts (sorted by address for determinism).
    pub fn contended_addresses(&self) -> Vec<(u64, WordWrites)> {
        let mut v: Vec<(u64, WordWrites)> = self
            .words
            .iter()
            .filter(|(_, w)| w.contended())
            .map(|(&a, &w)| (a, w))
            .collect();
        v.sort_unstable_by_key(|(a, _)| *a);
        v
    }

    /// `true` when any word was written by two or more writers.
    pub fn has_conflicts(&self) -> bool {
        self.words.values().any(|w| w.contended())
    }

    /// Contended words where at least one write was non-atomic — actual
    /// data races the schedule failed to protect (sorted by address).
    pub fn unprotected_addresses(&self) -> Vec<(u64, WordWrites)> {
        let mut v: Vec<(u64, WordWrites)> = self
            .words
            .iter()
            .filter(|(_, w)| w.unprotected())
            .map(|(&a, &w)| (a, w))
            .collect();
        v.sort_unstable_by_key(|(a, _)| *a);
        v
    }

    /// Per-word counts for one address, if it was written.
    pub fn writes_at(&self, word_addr: u64) -> Option<WordWrites> {
        self.words.get(&word_addr).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writes_are_not_conflicts() {
        let mut log = WriteLog::new();
        log.record(&Access::Coalesced { base: 0, lanes: 8 }, false);
        assert_eq!(log.num_addresses(), 8);
        assert!(!log.has_conflicts());
        assert!(log.contended_addresses().is_empty());
    }

    #[test]
    fn double_write_is_a_conflict() {
        let mut log = WriteLog::new();
        log.record(&Access::Broadcast { addr: 64 }, false);
        log.record(&Access::Broadcast { addr: 64 }, false);
        assert!(log.has_conflicts());
        let contended = log.contended_addresses();
        assert_eq!(
            contended,
            vec![(
                16,
                WordWrites {
                    total: 2,
                    atomic: 0
                }
            )]
        );
        assert_eq!(log.unprotected_addresses().len(), 1);
    }

    #[test]
    fn atomic_conflicts_are_protected() {
        let mut log = WriteLog::new();
        log.record(&Access::Broadcast { addr: 128 }, true);
        log.record(&Access::Broadcast { addr: 128 }, true);
        assert!(log.has_conflicts(), "two writers still contend");
        assert!(
            log.unprotected_addresses().is_empty(),
            "all-atomic contention is not a race"
        );
    }

    #[test]
    fn mixed_atomicity_on_one_word_is_unprotected() {
        let mut log = WriteLog::new();
        log.record(&Access::Broadcast { addr: 0 }, true);
        log.record(&Access::Broadcast { addr: 0 }, false);
        assert_eq!(log.unprotected_addresses().len(), 1);
    }

    #[test]
    fn same_word_lanes_within_one_instruction_are_two_writers() {
        // Two lanes of one warp instruction hitting the same word are two
        // distinct work items racing on one element: the coalescer would
        // merge their transactions, but the write log must not.
        let mut log = WriteLog::new();
        log.record(
            &Access::Scatter {
                addrs: vec![100, 100],
            },
            false,
        );
        assert_eq!(
            log.writes_at(25),
            Some(WordWrites {
                total: 2,
                atomic: 0
            })
        );
        assert!(log.has_conflicts());
    }

    #[test]
    fn per_lane_rows_cover_whole_rows() {
        let mut log = WriteLog::new();
        log.record(
            &Access::PerLaneRows {
                bases: vec![0, 1024],
                bytes: 16,
            },
            false,
        );
        assert_eq!(log.num_addresses(), 8);
        assert_eq!(log.total_writes(), 8);
    }
}
