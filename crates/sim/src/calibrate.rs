//! Simulator self-calibration microbenchmarks.
//!
//! A trace-driven model is only credible if its primitive rates come out
//! where the datasheet says they should. This module runs synthetic
//! microkernels — a streaming copy, a cache-resident sweep, a latency
//! pointer-chase and an atomic hammer — through the full simulator stack
//! and reports the *achieved* bandwidth/latency/throughput next to the
//! device configuration's nominal values. The `check` tests assert the
//! relative error stays within tolerance, so cost-model regressions are
//! caught in CI.

use crate::{Access, DeviceConfig, KernelSim, LaunchConfig};

/// One microbenchmark's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationPoint {
    /// Microbenchmark name.
    pub name: &'static str,
    /// What the device model nominally provides.
    pub nominal: f64,
    /// What the simulator achieved.
    pub achieved: f64,
    /// Unit label for display.
    pub unit: &'static str,
}

impl CalibrationPoint {
    /// `achieved / nominal`.
    pub fn ratio(&self) -> f64 {
        if self.nominal == 0.0 {
            0.0
        } else {
            self.achieved / self.nominal
        }
    }
}

/// Runs all microbenchmarks against a device model.
pub fn calibrate(device: &DeviceConfig) -> Vec<CalibrationPoint> {
    vec![
        stream_bandwidth(device),
        l2_bandwidth(device),
        dram_latency(device),
        atomic_serialization(device),
    ]
}

/// Streaming read of a working set far larger than L2: must achieve the
/// configured DRAM bandwidth.
fn stream_bandwidth(device: &DeviceConfig) -> CalibrationPoint {
    // Enough blocks to fill every SM at full occupancy, each streaming
    // distinct lines.
    let blocks = device.num_sms * 8;
    let loads_per_warp = 512usize;
    let warps_per_block = 8;
    let mut sim = KernelSim::new(device, LaunchConfig::new(blocks, 256));
    let mut addr = 0u64;
    for b in 0..blocks {
        sim.begin_block(b as u32);
        for _ in 0..warps_per_block {
            for _ in 0..loads_per_warp {
                sim.load(Access::Coalesced {
                    base: addr,
                    lanes: 32,
                });
                addr += 128;
            }
        }
        sim.end_block();
    }
    let report = sim.finish();
    let seconds = (report.time_ms - device.launch_overhead_us * 1e-3) / 1e3;
    CalibrationPoint {
        name: "stream_dram_bandwidth",
        nominal: device.dram_bw_gbs,
        achieved: report.dram_bytes / seconds / 1e9,
        unit: "GB/s",
    }
}

/// Re-reading an L2-resident working set: must achieve the configured L2
/// bandwidth.
fn l2_bandwidth(device: &DeviceConfig) -> CalibrationPoint {
    let blocks = device.num_sms * 8;
    // Working set: half of L2, shared by all blocks; bigger than any L1.
    let ws_lines = (device.l2_bytes / 2 / device.line_bytes) as u64;
    let loads_per_warp = 256usize;
    let mut sim = KernelSim::new(device, LaunchConfig::new(blocks, 256));
    let mut cursor = 0u64;
    for b in 0..blocks {
        sim.begin_block(b as u32);
        for _ in 0..8 {
            for _ in 0..loads_per_warp {
                // Stride by L1-defeating jumps within the L2 working set.
                cursor = (cursor + 4099) % ws_lines;
                sim.load(Access::Coalesced {
                    base: cursor * device.line_bytes as u64,
                    lanes: 8, // one sector
                });
            }
        }
        sim.end_block();
    }
    let report = sim.finish();
    let seconds = (report.time_ms - device.launch_overhead_us * 1e-3) / 1e3;
    let bytes_served = report.l2_transactions * device.line_bytes as f64;
    CalibrationPoint {
        name: "l2_bandwidth",
        nominal: device.l2_bw_gbs,
        achieved: bytes_served / seconds / 1e9,
        unit: "GB/s",
    }
}

/// A single warp issuing cache-missing loads: the model credits each warp
/// `mlp_per_warp` outstanding transactions, so the effective per-load cost
/// must equal `dram_latency / mlp_per_warp` (there is no second warp to
/// hide anything else).
fn dram_latency(device: &DeviceConfig) -> CalibrationPoint {
    let chases = 4096usize;
    let mut sim = KernelSim::new(device, LaunchConfig::new(1, 32));
    sim.begin_block(0);
    for i in 0..chases {
        sim.load(Access::Broadcast {
            addr: (i as u64) * 4096, // distinct lines, no reuse
        });
    }
    sim.end_block();
    let report = sim.finish();
    let cycles = (report.time_ms - device.launch_overhead_us * 1e-3) / 1e3 * device.clock_ghz * 1e9;
    CalibrationPoint {
        name: "dram_latency_exposed",
        nominal: device.dram_latency / device.mlp_per_warp,
        achieved: cycles / chases as f64,
        unit: "cycles/load",
    }
}

/// Hammering one address with atomics: kernel time must equal
/// `updates x atomic_serial_cycles`.
fn atomic_serialization(device: &DeviceConfig) -> CalibrationPoint {
    let updates = 100_000usize;
    let blocks = device.num_sms;
    let per_block = updates / blocks;
    let mut sim = KernelSim::new(device, LaunchConfig::new(blocks, 256));
    for b in 0..blocks {
        sim.begin_block(b as u32);
        for _ in 0..per_block {
            sim.atomic(Access::Broadcast { addr: 0 }, [0u64]);
        }
        sim.end_block();
    }
    let report = sim.finish();
    let cycles = (report.time_ms - device.launch_overhead_us * 1e-3) / 1e3 * device.clock_ghz * 1e9;
    CalibrationPoint {
        name: "atomic_serialization",
        nominal: device.atomic_serial_cycles,
        achieved: cycles / (blocks * per_block) as f64,
        unit: "cycles/update",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_within(point: &CalibrationPoint, tolerance: f64) {
        let r = point.ratio();
        assert!(
            ((1.0 - tolerance)..=(1.0 + tolerance)).contains(&r),
            "{}: achieved {:.2} {} vs nominal {:.2} (ratio {r:.3})",
            point.name,
            point.achieved,
            point.unit,
            point.nominal,
        );
    }

    #[test]
    fn v100_calibration_within_tolerance() {
        for point in calibrate(&DeviceConfig::v100()) {
            // The stream test must saturate DRAM BW (±15%); the latency
            // chain and atomic hammer are exact by construction (±10%).
            let tol = match point.name {
                "l2_bandwidth" => 0.25, // partially DRAM-bound warmup
                _ => 0.15,
            };
            assert_within(&point, tol);
        }
    }

    #[test]
    fn a100_calibration_within_tolerance() {
        for point in calibrate(&DeviceConfig::a100()) {
            let tol = match point.name {
                "l2_bandwidth" => 0.25,
                _ => 0.15,
            };
            assert_within(&point, tol);
        }
    }

    #[test]
    fn a100_streams_faster_than_v100() {
        let v = stream_bandwidth(&DeviceConfig::v100());
        let a = stream_bandwidth(&DeviceConfig::a100());
        assert!(a.achieved > v.achieved);
    }
}
