//! GPU device parameters.

use crate::error::SimError;

/// Architectural parameters of a simulated GPU.
///
/// Presets are provided for the two GPUs of the paper's evaluation
/// (Table 8): [`DeviceConfig::v100`] and [`DeviceConfig::a100`]. The
/// parameters that drive the paper's cross-GPU observations are the SM
/// count (A100 has more SMs, so it "favors more parallelism", §7.3) and the
/// L2 capacity (A100's 40 MB vs V100's 6 MB shifts locality trade-offs).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp instructions issued per SM per cycle (scheduler count).
    pub issue_width: f64,
    /// L1 data cache size per SM, in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Device-wide L2 cache size, in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Memory transaction (sector) size in bytes.
    pub line_bytes: usize,
    /// Sustained DRAM bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// Sustained L2 bandwidth in GB/s.
    pub l2_bw_gbs: f64,
    /// L1 hit latency in cycles.
    pub l1_latency: f64,
    /// L2 hit latency in cycles.
    pub l2_latency: f64,
    /// DRAM access latency in cycles.
    pub dram_latency: f64,
    /// Cycles for one serialized same-address atomic update at L2.
    pub atomic_serial_cycles: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Register file size per SM (32-bit registers).
    pub registers_per_sm: usize,
    /// Memory-level parallelism per warp: outstanding transactions a warp
    /// can keep in flight, used by the latency-hiding model.
    pub mlp_per_warp: f64,
}

impl DeviceConfig {
    /// NVIDIA Tesla V100 (Volta, 80 SMs) — paper Table 8.
    pub fn v100() -> Self {
        Self {
            name: "V100".to_owned(),
            num_sms: 80,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.38,
            issue_width: 4.0,
            l1_bytes: 128 * 1024,
            l1_assoc: 4,
            l2_bytes: 6 * 1024 * 1024,
            l2_assoc: 16,
            line_bytes: 32,
            dram_bw_gbs: 900.0,
            l2_bw_gbs: 2_500.0,
            l1_latency: 28.0,
            l2_latency: 193.0,
            dram_latency: 400.0,
            atomic_serial_cycles: 12.0,
            launch_overhead_us: 3.0,
            registers_per_sm: 65_536,
            mlp_per_warp: 6.0,
        }
    }

    /// NVIDIA A100 (Ampere, 108 SMs) — paper Table 8.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_owned(),
            num_sms: 108,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.41,
            issue_width: 4.0,
            l1_bytes: 192 * 1024,
            l1_assoc: 4,
            l2_bytes: 40 * 1024 * 1024,
            l2_assoc: 16,
            line_bytes: 32,
            dram_bw_gbs: 1_555.0,
            l2_bw_gbs: 4_000.0,
            l1_latency: 28.0,
            l2_latency: 200.0,
            dram_latency: 390.0,
            atomic_serial_cycles: 10.0,
            launch_overhead_us: 3.0,
            registers_per_sm: 65_536,
            mlp_per_warp: 6.0,
        }
    }

    /// Checks the configuration is inside the legal envelope: every
    /// structural parameter positive, every rate finite and positive.
    /// Degenerate configs (zero SMs, zero clock) would otherwise surface as
    /// divisions by zero deep inside the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDevice`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let positive_usize: [(&str, usize); 8] = [
            ("num_sms", self.num_sms),
            ("max_warps_per_sm", self.max_warps_per_sm),
            ("max_blocks_per_sm", self.max_blocks_per_sm),
            ("warp_size", self.warp_size),
            ("l1_assoc", self.l1_assoc),
            ("l2_assoc", self.l2_assoc),
            ("line_bytes", self.line_bytes),
            ("registers_per_sm", self.registers_per_sm),
        ];
        for (field, v) in positive_usize {
            if v == 0 {
                return Err(SimError::InvalidDevice {
                    reason: format!("{field} must be positive"),
                });
            }
        }
        let positive_f64: [(&str, f64); 9] = [
            ("clock_ghz", self.clock_ghz),
            ("issue_width", self.issue_width),
            ("dram_bw_gbs", self.dram_bw_gbs),
            ("l2_bw_gbs", self.l2_bw_gbs),
            ("l1_latency", self.l1_latency),
            ("l2_latency", self.l2_latency),
            ("dram_latency", self.dram_latency),
            ("atomic_serial_cycles", self.atomic_serial_cycles),
            ("mlp_per_warp", self.mlp_per_warp),
        ];
        for (field, v) in positive_f64 {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidDevice {
                    reason: format!("{field} must be finite and positive, got {v}"),
                });
            }
        }
        if !self.launch_overhead_us.is_finite() || self.launch_overhead_us < 0.0 {
            return Err(SimError::InvalidDevice {
                reason: format!(
                    "launch_overhead_us must be finite and non-negative, got {}",
                    self.launch_overhead_us
                ),
            });
        }
        Ok(())
    }

    /// DRAM bandwidth available to one SM, in bytes per cycle.
    pub fn dram_bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bw_gbs * 1e9 / (self.clock_ghz * 1e9) / self.num_sms as f64
    }

    /// L2 bandwidth available to one SM, in bytes per cycle.
    pub fn l2_bytes_per_cycle_per_sm(&self) -> f64 {
        self.l2_bw_gbs * 1e9 / (self.clock_ghz * 1e9) / self.num_sms as f64
    }

    /// Converts a cycle count on the critical SM into milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let v = DeviceConfig::v100();
        let a = DeviceConfig::a100();
        assert!(a.num_sms > v.num_sms, "A100 has more SMs (§7.3)");
        assert!(a.l2_bytes > v.l2_bytes, "A100 has a larger L2");
        assert!(a.dram_bw_gbs > v.dram_bw_gbs);
    }

    #[test]
    fn bandwidth_per_sm_is_consistent() {
        let v = DeviceConfig::v100();
        let total = v.dram_bytes_per_cycle_per_sm() * v.num_sms as f64 * v.clock_ghz * 1e9;
        assert!((total - v.dram_bw_gbs * 1e9).abs() / (v.dram_bw_gbs * 1e9) < 1e-9);
    }

    #[test]
    fn presets_validate() {
        DeviceConfig::v100().validate().unwrap();
        DeviceConfig::a100().validate().unwrap();
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut d = DeviceConfig::v100();
        d.num_sms = 0;
        assert!(d.validate().is_err());

        let mut d = DeviceConfig::v100();
        d.clock_ghz = 0.0;
        assert!(d.validate().is_err());

        let mut d = DeviceConfig::v100();
        d.dram_bw_gbs = f64::NAN;
        assert!(d.validate().is_err());

        let mut d = DeviceConfig::v100();
        d.launch_overhead_us = -1.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn cycles_to_ms_round_trip() {
        let v = DeviceConfig::v100();
        let cycles = v.clock_ghz * 1e9; // one second worth
        assert!((v.cycles_to_ms(cycles) - 1000.0).abs() < 1e-6);
    }
}
