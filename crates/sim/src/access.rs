//! Warp memory-access patterns and the coalescer.
//!
//! A warp instruction on a real GPU issues one address per active lane; the
//! load/store unit *coalesces* those 32 addresses into the minimal set of
//! memory transactions (32-byte sectors on Volta/Ampere). The choice of
//! parallelization strategy changes exactly this pattern — e.g.
//! *warp-vertex* makes lanes read consecutive feature elements (1–4
//! transactions), while *thread-vertex* makes each lane read a different
//! vertex's row (up to 32 transactions) — which is the mechanism behind the
//! locality column of paper Table 6.

use crate::DeviceConfig;

/// The addresses touched by one warp memory instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// `lanes` active lanes read consecutive 4-byte words from `base`
    /// (perfectly coalesced, e.g. feature-dimension parallelism).
    Coalesced {
        /// Byte address of lane 0.
        base: u64,
        /// Number of active lanes (1..=32).
        lanes: u32,
    },
    /// Every active lane reads the same 4-byte word (e.g. an edge weight
    /// shared by the warp).
    Broadcast {
        /// Byte address.
        addr: u64,
    },
    /// Each lane streams `bytes` consecutive bytes from its own base
    /// address (e.g. thread-per-vertex iterating a feature row; the
    /// per-feature loop is collapsed into one pattern).
    PerLaneRows {
        /// Byte base address per active lane.
        bases: Vec<u64>,
        /// Row length in bytes streamed by each lane.
        bytes: u32,
    },
    /// Arbitrary 4-byte access per active lane (fully divergent gather).
    Scatter {
        /// Byte address per active lane.
        addrs: Vec<u64>,
    },
}

impl Access {
    /// Appends the distinct memory-transaction line ids of this access to
    /// `out`, given the device's line (sector) size. Duplicate lines within
    /// the warp are merged, as the hardware coalescer does.
    pub fn lines(&self, device: &DeviceConfig, out: &mut Vec<u64>) {
        let lb = device.line_bytes as u64;
        let start = out.len();
        match self {
            Access::Coalesced { base, lanes } => {
                let first = base / lb;
                let last = (base + (*lanes as u64) * 4 - 1) / lb;
                out.extend(first..=last);
            }
            Access::Broadcast { addr } => out.push(addr / lb),
            Access::PerLaneRows { bases, bytes } => {
                for &b in bases {
                    let first = b / lb;
                    let last = (b + *bytes as u64 - 1) / lb;
                    out.extend(first..=last);
                }
            }
            Access::Scatter { addrs } => {
                for &a in addrs {
                    out.push(a / lb);
                }
            }
        }
        // Hardware coalescing: dedup lines within this instruction.
        let slice = &mut out[start..];
        slice.sort_unstable();
        let mut w = start;
        let mut last: Option<u64> = None;
        for i in start..out.len() {
            if last != Some(out[i]) {
                last = Some(out[i]);
                out[w] = out[i];
                w += 1;
            }
        }
        out.truncate(w);
    }

    /// Appends the 4-byte **word addresses** this access touches to `out`
    /// (byte addresses rounded down to word granularity), one entry per
    /// active lane per word — duplicates are *preserved*, unlike the
    /// coalescer view of [`Access::lines`]. This is the write-set view used
    /// by the race cross-check: two lanes of one warp instruction hitting
    /// the same word are two distinct writers racing on one element, even
    /// though the hardware coalescer would merge their transactions.
    pub fn word_addrs(&self, out: &mut Vec<u64>) {
        match self {
            Access::Coalesced { base, lanes } => {
                out.extend((0..*lanes as u64).map(|i| (base + i * 4) / 4));
            }
            Access::Broadcast { addr } => out.push(addr / 4),
            Access::PerLaneRows { bases, bytes } => {
                let words = (*bytes as u64).div_ceil(4);
                for &b in bases {
                    out.extend((0..words).map(|i| (b + i * 4) / 4));
                }
            }
            Access::Scatter { addrs } => out.extend(addrs.iter().map(|a| a / 4)),
        }
    }

    /// Number of 4-byte words this access moves (for bandwidth accounting
    /// of useful data, independent of transaction granularity).
    pub fn words(&self) -> u64 {
        match self {
            Access::Coalesced { lanes, .. } => *lanes as u64,
            Access::Broadcast { .. } => 1,
            Access::PerLaneRows { bases, bytes } => {
                bases.len() as u64 * (*bytes as u64).div_ceil(4)
            }
            Access::Scatter { addrs } => addrs.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(a: &Access) -> Vec<u64> {
        let d = DeviceConfig::v100(); // 32-byte lines
        let mut v = Vec::new();
        a.lines(&d, &mut v);
        v
    }

    #[test]
    fn full_warp_coalesced_needs_four_sectors() {
        // 32 lanes x 4 bytes = 128 bytes = 4 x 32-byte sectors.
        let a = Access::Coalesced { base: 0, lanes: 32 };
        assert_eq!(lines_of(&a), vec![0, 1, 2, 3]);
    }

    #[test]
    fn misaligned_coalesced_spills_one_extra_sector() {
        let a = Access::Coalesced {
            base: 16,
            lanes: 32,
        };
        assert_eq!(lines_of(&a).len(), 5);
    }

    #[test]
    fn broadcast_is_one_transaction() {
        let a = Access::Broadcast { addr: 1000 };
        assert_eq!(lines_of(&a).len(), 1);
    }

    #[test]
    fn scatter_deduplicates_same_line() {
        let a = Access::Scatter {
            addrs: vec![0, 4, 8, 64, 68, 128],
        };
        // Lines: 0 (x3), 2 (x2), 4 (x1) -> 3 transactions.
        assert_eq!(lines_of(&a), vec![0, 2, 4]);
    }

    #[test]
    fn per_lane_rows_counts_rows_times_sectors() {
        let a = Access::PerLaneRows {
            bases: vec![0, 1024, 2048],
            bytes: 64,
        };
        // Each row: 64 bytes = 2 sectors; rows do not overlap -> 6 lines.
        assert_eq!(lines_of(&a).len(), 6);
    }

    #[test]
    fn per_lane_rows_with_shared_base_coalesces() {
        let a = Access::PerLaneRows {
            bases: vec![0, 0, 0, 0],
            bytes: 32,
        };
        assert_eq!(lines_of(&a), vec![0]);
    }

    #[test]
    fn words_counts_useful_data() {
        assert_eq!(Access::Coalesced { base: 0, lanes: 7 }.words(), 7);
        assert_eq!(Access::Broadcast { addr: 0 }.words(), 1);
        assert_eq!(
            Access::PerLaneRows {
                bases: vec![0, 64],
                bytes: 10
            }
            .words(),
            6
        );
        assert_eq!(Access::Scatter { addrs: vec![0, 4] }.words(), 2);
    }
}
