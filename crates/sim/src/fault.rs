//! Fault injection for the simulator.
//!
//! Robustness work needs a way to exercise the degraded paths on purpose:
//! a trace that stops mid-kernel, a device description whose parameters
//! have drifted out of the sane range, a cache model that stops caching,
//! an atomic unit that sees pathological contention. [`FaultInjector`]
//! packages those as declarative [`Fault`]s and applies them either to a
//! [`DeviceConfig`] (producing a perturbed-but-validated config, or a
//! typed [`SimError`]) or to a live kernel trace via [`FaultySim`], which
//! mirrors the [`KernelSim`] protocol while corrupting the stream.
//!
//! The injector never panics: impossible requests come back as
//! [`SimError::InvalidFault`], and a perturbation that drives the device
//! out of its legal envelope is caught by [`DeviceConfig::validate`]
//! before any simulation starts.

use crate::access::Access;
use crate::device::DeviceConfig;
use crate::error::SimError;
use crate::kernel::{KernelSim, LaunchConfig};
use crate::report::SimReport;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Drop every trace event after the first `keep_events` (a producer
    /// that died mid-kernel). Block begin/end markers are preserved so the
    /// simulator protocol stays balanced; only loads/stores/atomics/compute
    /// are dropped.
    TruncateTrace {
        /// Number of leading trace events to keep.
        keep_events: usize,
    },
    /// Multiply the device's throughput and capacity parameters
    /// (bandwidths, cache sizes, SM count) by `factor`. Factors that drive
    /// a parameter to zero produce a config that fails
    /// [`DeviceConfig::validate`].
    PerturbDevice {
        /// Scale factor applied to capacities and bandwidths.
        factor: f64,
    },
    /// Shrink both caches to a single line: every access becomes a DRAM
    /// access (a broken cache model).
    ZeroCaches,
    /// Multiply every atomic conflict-group population by `multiplier`,
    /// modelling an atomic unit that serializes far more than it should.
    AtomicStorm {
        /// Conflict multiplier (>= 1).
        multiplier: f64,
    },
}

impl Fault {
    /// Stable short name, used as the `fault` label on the
    /// `ugrapher_fault_injections_total` metric.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::TruncateTrace { .. } => "truncate-trace",
            Fault::PerturbDevice { .. } => "perturb-device",
            Fault::ZeroCaches => "zero-caches",
            Fault::AtomicStorm { .. } => "atomic-storm",
        }
    }
}

/// Applies a set of [`Fault`]s to device configs and kernel traces.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    faults: Vec<Fault>,
}

impl FaultInjector {
    /// An injector with no faults (the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The configured faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies the device-level faults to `base` and validates the result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] for malformed fault specs (e.g. a
    /// non-finite perturbation factor) and [`SimError::InvalidDevice`] when
    /// the perturbed config leaves the legal envelope.
    pub fn device(&self, base: &DeviceConfig) -> Result<DeviceConfig, SimError> {
        let mut d = base.clone();
        for fault in &self.faults {
            match fault {
                Fault::PerturbDevice { factor } => {
                    if !factor.is_finite() || *factor < 0.0 {
                        return Err(SimError::InvalidFault {
                            reason: format!("perturbation factor {factor} must be finite and >= 0"),
                        });
                    }
                    d.num_sms = (d.num_sms as f64 * factor) as usize;
                    d.l1_bytes = (d.l1_bytes as f64 * factor) as usize;
                    d.l2_bytes = (d.l2_bytes as f64 * factor) as usize;
                    d.dram_bw_gbs *= factor;
                    d.l2_bw_gbs *= factor;
                    d.clock_ghz *= factor;
                }
                Fault::ZeroCaches => {
                    d.l1_bytes = 0;
                    d.l2_bytes = 0;
                }
                Fault::TruncateTrace { .. } | Fault::AtomicStorm { .. } => {}
            }
        }
        d.validate()?;
        Ok(d)
    }

    /// Builds a [`FaultySim`] for one kernel launch: the device-level
    /// faults are applied first, then the trace-level faults are armed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultInjector::device`], plus
    /// [`SimError::InvalidFault`] for a non-finite or sub-1 atomic-storm
    /// multiplier.
    pub fn instrument(
        &self,
        base: &DeviceConfig,
        launch: LaunchConfig,
    ) -> Result<FaultySim, SimError> {
        let device = self.device(base)?;
        let mut events_left = None;
        let mut atomic_mult = 1.0;
        for fault in &self.faults {
            match fault {
                Fault::TruncateTrace { keep_events } => {
                    events_left = Some(match events_left {
                        Some(prev) => (*keep_events).min(prev),
                        None => *keep_events,
                    });
                }
                Fault::AtomicStorm { multiplier } => {
                    if !multiplier.is_finite() || *multiplier < 1.0 {
                        return Err(SimError::InvalidFault {
                            reason: format!("atomic storm multiplier {multiplier} must be >= 1"),
                        });
                    }
                    atomic_mult *= multiplier;
                }
                Fault::PerturbDevice { .. } | Fault::ZeroCaches => {}
            }
        }
        let reg = ugrapher_obs::MetricsRegistry::global();
        for fault in &self.faults {
            reg.inc_labeled(
                ugrapher_obs::metrics::FAULT_INJECTIONS,
                "fault",
                fault.label(),
            );
        }
        Ok(FaultySim {
            inner: KernelSim::new(&device, launch),
            events_left,
            atomic_mult,
        })
    }
}

/// A [`KernelSim`] whose event stream is corrupted by armed faults.
///
/// Mirrors the `begin_block`/events/`end_block`/`finish` protocol of
/// [`KernelSim`]; block markers always pass through (so the protocol stays
/// balanced), while data events are subject to truncation and atomic
/// amplification.
#[derive(Debug)]
pub struct FaultySim {
    inner: KernelSim,
    /// `Some(n)`: forward at most `n` more data events, then drop.
    events_left: Option<usize>,
    atomic_mult: f64,
}

impl FaultySim {
    fn admit(&mut self) -> bool {
        match &mut self.events_left {
            None => true,
            Some(0) => false,
            Some(n) => {
                *n -= 1;
                true
            }
        }
    }

    /// See [`KernelSim::begin_block`].
    pub fn begin_block(&mut self, block_id: u32) {
        self.inner.begin_block(block_id);
    }

    /// See [`KernelSim::load`]; may be dropped by a truncation fault.
    pub fn load(&mut self, access: Access) {
        if self.admit() {
            self.inner.load(access);
        }
    }

    /// See [`KernelSim::store`]; may be dropped by a truncation fault.
    pub fn store(&mut self, access: Access) {
        if self.admit() {
            self.inner.store(access);
        }
    }

    /// See [`KernelSim::atomic`]; conflict groups are replicated by an
    /// atomic-storm fault, and the whole event may be dropped by a
    /// truncation fault.
    pub fn atomic(&mut self, access: Access, conflict_groups: impl IntoIterator<Item = u64>) {
        if !self.admit() {
            return;
        }
        if self.atomic_mult > 1.0 {
            let mult = self.atomic_mult.round() as usize;
            let groups: Vec<u64> = conflict_groups.into_iter().collect();
            let amplified: Vec<u64> = std::iter::repeat_n(groups, mult).flatten().collect();
            self.inner.atomic(access, amplified);
        } else {
            self.inner.atomic(access, conflict_groups);
        }
    }

    /// See [`KernelSim::compute`]; may be dropped by a truncation fault.
    pub fn compute(&mut self, warp_cycles: f64) {
        if self.admit() {
            self.inner.compute(warp_cycles);
        }
    }

    /// See [`KernelSim::end_block`].
    pub fn end_block(&mut self) {
        self.inner.end_block();
    }

    /// See [`KernelSim::finish`].
    pub fn finish(self) -> SimReport {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(inj: FaultInjector) -> SimReport {
        let d = DeviceConfig::v100();
        let mut sim = inj.instrument(&d, LaunchConfig::new(4, 256)).unwrap();
        for b in 0..4 {
            sim.begin_block(b);
            standard_events(&mut sim);
            sim.end_block();
        }
        sim.finish()
    }

    fn standard_events(sim: &mut FaultySim) {
        for i in 0..100u64 {
            sim.load(Access::Coalesced {
                base: i * 128,
                lanes: 32,
            });
        }
        sim.atomic(Access::Broadcast { addr: 64 }, [9u64]);
        sim.compute(50.0);
    }

    #[test]
    fn no_faults_is_identity() {
        let clean = run(FaultInjector::new());
        let d = DeviceConfig::v100();
        let mut sim = KernelSim::new(&d, LaunchConfig::new(4, 256));
        for b in 0..4 {
            sim.begin_block(b);
            for i in 0..100u64 {
                sim.load(Access::Coalesced {
                    base: i * 128,
                    lanes: 32,
                });
            }
            sim.atomic(Access::Broadcast { addr: 64 }, [9u64]);
            sim.compute(50.0);
            sim.end_block();
        }
        assert_eq!(clean, sim.finish());
    }

    #[test]
    fn truncation_reduces_traffic() {
        let clean = run(FaultInjector::new());
        let cut = run(FaultInjector::new().with(Fault::TruncateTrace { keep_events: 10 }));
        assert!(cut.l1_transactions < clean.l1_transactions);
        assert!(cut.time_ms <= clean.time_ms);
    }

    #[test]
    fn zero_caches_forces_dram() {
        let broken = run(FaultInjector::new().with(Fault::ZeroCaches));
        assert!(broken.l1_hit_rate < 0.05, "hit rate {}", broken.l1_hit_rate);
        assert!(broken.dram_bytes > 0.0);
    }

    #[test]
    fn atomic_storm_amplifies_conflicts() {
        let clean = run(FaultInjector::new());
        let storm = run(FaultInjector::new().with(Fault::AtomicStorm { multiplier: 50.0 }));
        assert!(storm.max_atomic_conflict >= clean.max_atomic_conflict * 49.0);
    }

    #[test]
    fn zeroing_perturbation_is_rejected_not_panicking() {
        let inj = FaultInjector::new().with(Fault::PerturbDevice { factor: 0.0 });
        let err = inj.device(&DeviceConfig::v100()).unwrap_err();
        assert!(matches!(err, SimError::InvalidDevice { .. }));
    }

    #[test]
    fn nan_perturbation_is_an_invalid_fault() {
        let inj = FaultInjector::new().with(Fault::PerturbDevice { factor: f64::NAN });
        let err = inj.device(&DeviceConfig::v100()).unwrap_err();
        assert!(matches!(err, SimError::InvalidFault { .. }));
    }

    #[test]
    fn mild_perturbation_still_simulates() {
        let slow = run(FaultInjector::new().with(Fault::PerturbDevice { factor: 0.5 }));
        assert!(slow.time_ms.is_finite() && slow.time_ms > 0.0);
    }
}
