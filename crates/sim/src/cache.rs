//! Set-associative LRU cache model.

/// A set-associative cache with LRU replacement, tracking weighted hit and
/// miss counts. Addresses are pre-divided into line ids by the caller.
///
/// # Example
///
/// ```
/// use ugrapher_sim::Cache;
///
/// let mut c = Cache::new(4 * 64, 64, 4); // 4 sets x 4 ways, 64-byte lines
/// assert!(!c.access_line(0, 1.0)); // cold miss
/// assert!(c.access_line(0, 1.0));  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets[s]` holds up to `assoc` line ids, most recently used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    num_sets: usize,
    hits: f64,
    misses: f64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given line size and
    /// associativity. The set count is rounded down to a power of two (at
    /// least 1) so indexing is a mask.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes == 0` or `assoc == 0`.
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(line_bytes > 0, "line_bytes must be positive");
        assert!(assoc > 0, "assoc must be positive");
        let lines = (capacity_bytes / line_bytes).max(assoc);
        let target = (lines / assoc).max(1);
        // Round down to a power of two so set indexing is a mask.
        let num_sets = if target.is_power_of_two() {
            target
        } else {
            target.next_power_of_two() / 2
        };
        Self {
            sets: vec![Vec::with_capacity(assoc); num_sets],
            assoc,
            num_sets,
            hits: 0.0,
            misses: 0.0,
        }
    }

    /// Accesses a line id; returns `true` on hit. `weight` scales the
    /// hit/miss counters (used by sampled tracing).
    pub fn access_line(&mut self, line: u64, weight: f64) -> bool {
        let set = &mut self.sets[(line as usize) & (self.num_sets - 1)];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // Move to MRU position.
            let l = set.remove(pos);
            set.insert(0, l);
            self.hits += weight;
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, line);
            self.misses += weight;
            false
        }
    }

    /// Weighted hit count so far.
    pub fn hits(&self) -> f64 {
        self.hits
    }

    /// Weighted miss count so far.
    pub fn misses(&self) -> f64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 if no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0.0 {
            0.0
        } else {
            self.hits / total
        }
    }

    /// Number of sets (for diagnostics).
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0.0;
        self.misses = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = Cache::new(1024, 32, 4);
        for line in 0..4 {
            assert!(!c.access_line(line, 1.0));
        }
        for line in 0..4 {
            assert!(c.access_line(line, 1.0));
        }
        assert_eq!(c.hits(), 4.0);
        assert_eq!(c.misses(), 4.0);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single set: capacity 4 lines, assoc 4, line 32 -> 1 set.
        let mut c = Cache::new(4 * 32, 32, 4);
        assert_eq!(c.num_sets(), 1);
        for line in 0..4 {
            c.access_line(line, 1.0);
        }
        c.access_line(0, 1.0); // make 0 MRU; LRU is now 1
        c.access_line(100, 1.0); // evicts 1
        assert!(c.access_line(0, 1.0), "0 must still be resident");
        assert!(!c.access_line(1, 1.0), "1 must have been evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(1024, 32, 4); // 32 lines
                                             // Stream 1000 distinct lines twice: second pass still misses
                                             // (LRU with a cyclic working set larger than capacity).
        for _ in 0..2 {
            for line in 0..1000u64 {
                c.access_line(line, 1.0);
            }
        }
        assert!(c.hit_rate() < 0.05, "hit rate was {}", c.hit_rate());
    }

    #[test]
    fn weights_scale_counters() {
        let mut c = Cache::new(1024, 32, 4);
        c.access_line(5, 8.0);
        c.access_line(5, 8.0);
        assert_eq!(c.misses(), 8.0);
        assert_eq!(c.hits(), 8.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(1024, 32, 4);
        c.access_line(1, 1.0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0.0);
        assert!(!c.access_line(1, 1.0), "reset must drop contents");
    }

    #[test]
    fn small_graph_working_set_fits() {
        // 64 KB cache, 32 B lines -> 2048 lines; a 1000-line working set
        // should be fully resident on the second pass.
        let mut c = Cache::new(64 * 1024, 32, 8);
        for line in 0..1000u64 {
            c.access_line(line, 1.0);
        }
        let misses_before = c.misses();
        for line in 0..1000u64 {
            assert!(c.access_line(line, 1.0));
        }
        assert_eq!(c.misses(), misses_before);
    }
}
