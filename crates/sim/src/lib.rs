//! # ugrapher-sim
//!
//! A GPU execution simulator standing in for the CUDA/V100/A100 substrate of
//! the uGrapher paper (see DESIGN.md §2 for the substitution argument).
//!
//! The paper's evaluation reasons about graph-operator kernels through five
//! mechanisms, all of which this simulator models explicitly:
//!
//! 1. **Parallelism** — work is issued as a grid of thread blocks; each SM
//!    hosts a bounded number of resident warps (occupancy), and too few
//!    blocks leave SMs idle (low *SM efficiency*, paper Fig. 3).
//! 2. **Locality** — per-SM L1 and device-wide L2 set-associative caches with
//!    sector-granularity (32 B) transactions; reuse shows up as L1/L2 hit
//!    rate (paper Figs. 3, 16).
//! 3. **Coalescing** — each warp access is converted into the set of memory
//!    transactions the 32 lanes actually require ([`Access`]).
//! 4. **Work-efficiency** — atomically updated outputs serialize on hot
//!    addresses ([`KernelSim::store`] with [`MemScope`]); extra address
//!    arithmetic shows up as compute cycles.
//! 5. **Latency hiding** — a wave-based analytical timing model
//!    ([`timing`]) where memory latency is hidden proportionally to resident
//!    warps, so low occupancy hurts exactly when the paper says it does.
//!
//! The simulator is *trace-driven*: the functional executor in
//! `ugrapher-core` streams one [`Access`]/compute event per warp
//! instruction, and [`KernelSim::finish`] turns the accumulated per-block
//! costs into a [`SimReport`] with time and nvprof-style metrics.
//!
//! # Example
//!
//! ```
//! use ugrapher_sim::{Access, DeviceConfig, KernelSim, LaunchConfig};
//!
//! let device = DeviceConfig::v100();
//! let launch = LaunchConfig::new(128, 256);
//! let mut sim = KernelSim::new(&device, launch);
//! for block in 0..128u32 {
//!     sim.begin_block(block);
//!     sim.load(Access::Coalesced { base: (block as u64) * 1024, lanes: 32 });
//!     sim.compute(8.0);
//!     sim.end_block();
//! }
//! let report = sim.finish();
//! assert!(report.time_ms > 0.0);
//! assert!(report.achieved_occupancy > 0.0);
//! ```

mod access;
mod alloc;
mod cache;
pub mod calibrate;
mod device;
mod error;
mod fault;
mod kernel;
mod report;
pub mod timing;
mod writeset;

pub use access::Access;
pub use alloc::AddressSpace;
pub use cache::Cache;
pub use device::DeviceConfig;
pub use error::SimError;
pub use fault::{Fault, FaultInjector, FaultySim};
pub use kernel::{KernelSim, LaunchConfig, MemScope};
pub use report::SimReport;
pub use writeset::{WordWrites, WriteLog};
