//! Virtual device-address allocation.
//!
//! The functional executor needs distinct, stable byte addresses for each
//! tensor so cache behaviour is realistic (two tensors must not alias).
//! [`AddressSpace`] is a trivial bump allocator over a virtual 64-bit
//! device address space.

/// A bump allocator handing out non-overlapping device address ranges.
///
/// # Example
///
/// ```
/// use ugrapher_sim::AddressSpace;
///
/// let mut mem = AddressSpace::new();
/// let a = mem.alloc(100);
/// let b = mem.alloc(100);
/// assert!(b >= a + 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Alignment of every allocation, matching a GPU cache line.
    pub const ALIGN: u64 = 256;

    /// Creates an empty address space starting at a non-zero base.
    pub fn new() -> Self {
        Self { next: Self::ALIGN }
    }

    /// Allocates `bytes` and returns the base address (256-byte aligned).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let padded = bytes.div_ceil(Self::ALIGN) * Self::ALIGN;
        self.next = base + padded.max(Self::ALIGN);
        base
    }

    /// Total bytes reserved so far.
    pub fn used(&self) -> u64 {
        self.next - Self::ALIGN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut m = AddressSpace::new();
        let a = m.alloc(1000);
        let b = m.alloc(1);
        let c = m.alloc(5000);
        assert!(a + 1000 <= b);
        assert!(b < c);
    }

    #[test]
    fn allocations_are_aligned() {
        let mut m = AddressSpace::new();
        for bytes in [1u64, 100, 256, 257, 4096] {
            assert_eq!(m.alloc(bytes) % AddressSpace::ALIGN, 0);
        }
    }

    #[test]
    fn zero_alloc_still_advances() {
        let mut m = AddressSpace::new();
        let a = m.alloc(0);
        let b = m.alloc(0);
        assert_ne!(a, b);
    }
}
