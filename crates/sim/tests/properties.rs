//! Property-based tests for the GPU simulator.

use proptest::prelude::*;

use ugrapher_sim::{Access, Cache, DeviceConfig, KernelSim, LaunchConfig};

proptest! {
    #[test]
    fn cache_hits_plus_misses_equals_accesses(
        lines in prop::collection::vec(0u64..500, 1..300),
    ) {
        let mut c = Cache::new(4096, 32, 4);
        for &l in &lines {
            c.access_line(l, 1.0);
        }
        prop_assert!((c.hits() + c.misses() - lines.len() as f64).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&c.hit_rate()));
    }

    #[test]
    fn repeating_a_trace_only_improves_hit_rate(
        lines in prop::collection::vec(0u64..64, 1..100),
    ) {
        // Working set of <= 64 lines fits in a 128-line cache: the second
        // pass must hit everywhere.
        let mut c = Cache::new(128 * 32, 32, 8);
        for &l in &lines {
            c.access_line(l, 1.0);
        }
        let misses_after_first = c.misses();
        for &l in &lines {
            prop_assert!(c.access_line(l, 1.0), "second pass must hit");
        }
        prop_assert_eq!(c.misses(), misses_after_first);
    }

    #[test]
    fn coalescer_never_exceeds_one_line_per_lane(
        addrs in prop::collection::vec(0u64..100_000, 1..32),
    ) {
        let d = DeviceConfig::v100();
        let access = Access::Scatter { addrs: addrs.clone() };
        let mut lines = Vec::new();
        access.lines(&d, &mut lines);
        prop_assert!(lines.len() <= addrs.len());
        prop_assert!(!lines.is_empty());
        // Lines are deduplicated.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), lines.len());
    }

    #[test]
    fn coalesced_access_uses_minimal_lines(lanes in 1u32..=32, base in 0u64..10_000) {
        let d = DeviceConfig::v100();
        let access = Access::Coalesced { base: base * 4, lanes };
        let mut lines = Vec::new();
        access.lines(&d, &mut lines);
        let bytes = lanes as u64 * 4;
        let max_lines = bytes.div_ceil(32) + 1; // +1 for misalignment
        prop_assert!(lines.len() as u64 <= max_lines);
    }

    #[test]
    fn report_metrics_stay_in_range(
        blocks in 1u32..60,
        loads_per_block in 1usize..50,
        compute in 0.0f64..1000.0,
    ) {
        let d = DeviceConfig::v100();
        let mut sim = KernelSim::new(&d, LaunchConfig::new(blocks as usize, 256));
        for b in 0..blocks {
            sim.begin_block(b);
            for i in 0..loads_per_block {
                sim.load(Access::Coalesced {
                    base: (b as u64 * 1000 + i as u64) * 64,
                    lanes: 32,
                });
            }
            sim.compute(compute);
            sim.end_block();
        }
        let r = sim.finish();
        prop_assert!(r.time_ms > 0.0);
        prop_assert!((0.0..=1.0).contains(&r.achieved_occupancy));
        prop_assert!((0.0..=1.0).contains(&r.theoretical_occupancy));
        prop_assert!((0.0..=1.0).contains(&r.sm_efficiency));
        prop_assert!((0.0..=1.0).contains(&r.l1_hit_rate));
        prop_assert!((0.0..=1.0).contains(&r.l2_hit_rate));
        prop_assert!(r.dram_bytes >= 0.0);
    }

    #[test]
    fn more_work_never_reduces_time(extra in 1usize..20) {
        let d = DeviceConfig::v100();
        let run = |n_loads: usize| {
            let mut sim = KernelSim::new(&d, LaunchConfig::new(d.num_sms, 256));
            for b in 0..d.num_sms as u32 {
                sim.begin_block(b);
                for i in 0..n_loads {
                    sim.load(Access::Coalesced {
                        base: (b as u64 * 100_000 + i as u64) * 128,
                        lanes: 32,
                    });
                }
                sim.end_block();
            }
            sim.finish().time_ms
        };
        prop_assert!(run(50 + extra) >= run(50) - 1e-12);
    }

    #[test]
    fn merge_is_associative_on_time(
        t1 in 0.1f64..10.0,
        t2 in 0.1f64..10.0,
        t3 in 0.1f64..10.0,
    ) {
        use ugrapher_sim::SimReport;
        let mk = |t: f64| SimReport { time_ms: t, kernels: 1, ..SimReport::empty() };
        let (a, b, c) = (mk(t1), mk(t2), mk(t3));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert!((left.time_ms - right.time_ms).abs() < 1e-9);
        prop_assert_eq!(left.kernels, right.kernels);
    }
}
