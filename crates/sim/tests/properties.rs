//! Property-based tests for the GPU simulator.

use ugrapher_sim::{Access, Cache, DeviceConfig, KernelSim, LaunchConfig};
use ugrapher_util::check::forall;

#[test]
fn cache_hits_plus_misses_equals_accesses() {
    forall("cache_hits_plus_misses", 64, |rng| {
        let n = rng.random_range(1usize..300);
        let lines: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..500)).collect();
        let mut c = Cache::new(4096, 32, 4);
        for &l in &lines {
            c.access_line(l, 1.0);
        }
        if (c.hits() + c.misses() - lines.len() as f64).abs() >= 1e-9 {
            return Err(format!(
                "hits {} + misses {} != accesses {}",
                c.hits(),
                c.misses(),
                lines.len()
            ));
        }
        if !(0.0..=1.0).contains(&c.hit_rate()) {
            return Err(format!("hit rate {} out of range", c.hit_rate()));
        }
        Ok(())
    });
}

#[test]
fn repeating_a_trace_only_improves_hit_rate() {
    // Working set of <= 64 lines fits in a 128-line cache: the second
    // pass must hit everywhere.
    forall("repeat_trace_improves_hit_rate", 64, |rng| {
        let n = rng.random_range(1usize..100);
        let lines: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..64)).collect();
        let mut c = Cache::new(128 * 32, 32, 8);
        for &l in &lines {
            c.access_line(l, 1.0);
        }
        let misses_after_first = c.misses();
        for &l in &lines {
            if !c.access_line(l, 1.0) {
                return Err(format!("second pass missed on line {l}"));
            }
        }
        if c.misses() != misses_after_first {
            return Err("second pass added misses".to_string());
        }
        Ok(())
    });
}

#[test]
fn coalescer_never_exceeds_one_line_per_lane() {
    forall("coalescer_line_bound", 64, |rng| {
        let n = rng.random_range(1usize..32);
        let addrs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..100_000)).collect();
        let d = DeviceConfig::v100();
        let access = Access::Scatter {
            addrs: addrs.clone(),
        };
        let mut lines = Vec::new();
        access.lines(&d, &mut lines);
        if lines.len() > addrs.len() {
            return Err(format!("{} lines for {} lanes", lines.len(), addrs.len()));
        }
        if lines.is_empty() {
            return Err("no lines for non-empty access".to_string());
        }
        // Lines are deduplicated.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != lines.len() {
            return Err("duplicate lines emitted".to_string());
        }
        Ok(())
    });
}

#[test]
fn coalesced_access_uses_minimal_lines() {
    forall("coalesced_minimal_lines", 64, |rng| {
        let lanes = rng.random_range(1u32..=32);
        let base = rng.random_range(0u64..10_000);
        let d = DeviceConfig::v100();
        let access = Access::Coalesced {
            base: base * 4,
            lanes,
        };
        let mut lines = Vec::new();
        access.lines(&d, &mut lines);
        let bytes = lanes as u64 * 4;
        let max_lines = bytes.div_ceil(32) + 1; // +1 for misalignment
        if lines.len() as u64 > max_lines {
            return Err(format!("{} lines exceeds bound {max_lines}", lines.len()));
        }
        Ok(())
    });
}

#[test]
fn report_metrics_stay_in_range() {
    forall("report_metrics_in_range", 32, |rng| {
        let blocks = rng.random_range(1u32..60);
        let loads_per_block = rng.random_range(1usize..50);
        let compute = rng.random_range(0.0f64..1000.0);
        let d = DeviceConfig::v100();
        let mut sim = KernelSim::new(&d, LaunchConfig::new(blocks as usize, 256));
        for b in 0..blocks {
            sim.begin_block(b);
            for i in 0..loads_per_block {
                sim.load(Access::Coalesced {
                    base: (b as u64 * 1000 + i as u64) * 64,
                    lanes: 32,
                });
            }
            sim.compute(compute);
            sim.end_block();
        }
        let r = sim.finish();
        let in_unit = |v: f64, what: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{what} = {v} out of [0, 1]"))
            }
        };
        if r.time_ms <= 0.0 {
            return Err(format!("time_ms = {} not positive", r.time_ms));
        }
        in_unit(r.achieved_occupancy, "achieved_occupancy")?;
        in_unit(r.theoretical_occupancy, "theoretical_occupancy")?;
        in_unit(r.sm_efficiency, "sm_efficiency")?;
        in_unit(r.l1_hit_rate, "l1_hit_rate")?;
        in_unit(r.l2_hit_rate, "l2_hit_rate")?;
        if r.dram_bytes < 0.0 {
            return Err(format!("dram_bytes = {} negative", r.dram_bytes));
        }
        Ok(())
    });
}

#[test]
fn more_work_never_reduces_time() {
    forall("more_work_never_reduces_time", 16, |rng| {
        let extra = rng.random_range(1usize..20);
        let d = DeviceConfig::v100();
        let run = |n_loads: usize| {
            let mut sim = KernelSim::new(&d, LaunchConfig::new(d.num_sms, 256));
            for b in 0..d.num_sms as u32 {
                sim.begin_block(b);
                for i in 0..n_loads {
                    sim.load(Access::Coalesced {
                        base: (b as u64 * 100_000 + i as u64) * 128,
                        lanes: 32,
                    });
                }
                sim.end_block();
            }
            sim.finish().time_ms
        };
        if run(50 + extra) >= run(50) - 1e-12 {
            Ok(())
        } else {
            Err(format!("adding {extra} loads reduced simulated time"))
        }
    });
}

#[test]
fn merge_is_associative_on_time() {
    forall("merge_is_associative_on_time", 64, |rng| {
        use ugrapher_sim::SimReport;
        let t1 = rng.random_range(0.1f64..10.0);
        let t2 = rng.random_range(0.1f64..10.0);
        let t3 = rng.random_range(0.1f64..10.0);
        let mk = |t: f64| SimReport {
            time_ms: t,
            kernels: 1,
            ..SimReport::empty()
        };
        let (a, b, c) = (mk(t1), mk(t2), mk(t3));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        if (left.time_ms - right.time_ms).abs() >= 1e-9 {
            return Err(format!(
                "times diverge: {} vs {}",
                left.time_ms, right.time_ms
            ));
        }
        if left.kernels != right.kernels {
            return Err("kernel counts diverge".to_string());
        }
        Ok(())
    });
}
