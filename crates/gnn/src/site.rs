//! Operator sites: where in a model a graph operator runs.
//!
//! The paper names graph operators as `model-layer-type`, e.g.
//! `GAT_L1_MsgC` or `SageMax_L2_Aggr` (Table 9); [`OpSite::label`]
//! reproduces those names, and backends key per-operator schedule decisions
//! on sites.

/// The GNN model families of the paper's evaluation (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling).
    Gcn,
    /// Graph Isomorphism Network (Xu et al.).
    Gin,
    /// Graph Attention Network (Veličković et al.).
    Gat,
    /// GraphSage with sum aggregation.
    SageSum,
    /// GraphSage with max aggregation.
    SageMax,
    /// GraphSage with mean aggregation.
    SageMean,
}

impl ModelKind {
    /// All six benchmark models, in the paper's Fig. 13 order.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Gcn,
        ModelKind::Gin,
        ModelKind::Gat,
        ModelKind::SageMax,
        ModelKind::SageSum,
        ModelKind::SageMean,
    ];

    /// Display name matching the paper's figures ("SMax" style).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gin => "GIN",
            ModelKind::Gat => "GAT",
            ModelKind::SageSum => "SSum",
            ModelKind::SageMax => "SMax",
            ModelKind::SageMean => "SMean",
        }
    }

    /// Prefix used in operator labels (Table 9 uses "SageMax_L1_Aggr").
    fn op_prefix(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gin => "GIN",
            ModelKind::Gat => "GAT",
            ModelKind::SageSum => "SageSum",
            ModelKind::SageMax => "SageMax",
            ModelKind::SageMean => "SageMean",
        }
    }
}

/// The role a graph operator plays within its layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSiteKind {
    /// Message creation (e.g. GAT's attention-logit computation).
    MessageCreation,
    /// The main (fused) aggregation of the layer.
    Aggregation,
    /// Edge-softmax max stage (GAT).
    SoftmaxMax,
    /// Edge-softmax shift stage (GAT, `e - max[dst]`).
    SoftmaxShift,
    /// Edge-softmax sum stage (GAT).
    SoftmaxSum,
    /// Edge-softmax normalize stage (GAT, `e / sum[dst]`).
    SoftmaxNorm,
}

impl OpSiteKind {
    fn suffix(self) -> &'static str {
        match self {
            OpSiteKind::MessageCreation => "MsgC",
            OpSiteKind::Aggregation => "Aggr",
            OpSiteKind::SoftmaxMax => "SoftMax",
            OpSiteKind::SoftmaxShift => "SoftShift",
            OpSiteKind::SoftmaxSum => "SoftSum",
            OpSiteKind::SoftmaxNorm => "SoftNorm",
        }
    }
}

/// Identifies one graph-operator call site in a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSite {
    /// The model.
    pub model: ModelKind,
    /// 1-based layer index (the paper counts from L1).
    pub layer: usize,
    /// Role within the layer.
    pub kind: OpSiteKind,
}

impl OpSite {
    /// Builds a site.
    pub fn new(model: ModelKind, layer: usize, kind: OpSiteKind) -> Self {
        Self { model, layer, kind }
    }

    /// The paper's operator name, e.g. `"GAT_L1_MsgC"`.
    pub fn label(&self) -> String {
        format!(
            "{}_L{}_{}",
            self.model.op_prefix(),
            self.layer,
            self.kind.suffix()
        )
    }
}

impl std::fmt::Display for OpSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table9() {
        assert_eq!(
            OpSite::new(ModelKind::Gat, 1, OpSiteKind::MessageCreation).label(),
            "GAT_L1_MsgC"
        );
        assert_eq!(
            OpSite::new(ModelKind::Gin, 5, OpSiteKind::Aggregation).label(),
            "GIN_L5_Aggr"
        );
        assert_eq!(
            OpSite::new(ModelKind::SageMax, 2, OpSiteKind::Aggregation).label(),
            "SageMax_L2_Aggr"
        );
    }

    #[test]
    fn model_labels_match_fig13() {
        let labels: Vec<_> = ModelKind::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["GCN", "GIN", "GAT", "SMax", "SSum", "SMean"]);
    }
}
