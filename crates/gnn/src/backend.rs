//! The graph-operator backend seam.
//!
//! A [`GraphOpBackend`] executes one graph operator and reports its
//! simulated GPU cost. Model code (`crate::models`) is backend-agnostic:
//! swapping the backend swaps *only* the graph-operator kernels, which is
//! exactly the variable the paper's end-to-end comparison isolates
//! (DGL / PyG / GNNAdvisor vs uGrapher, §6–7).

use std::collections::HashMap;

use std::sync::Mutex;

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::{GraphTensor, OpArgs, Runtime};
use ugrapher_core::exec::OpOperands;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_core::tune::Predictor;
use ugrapher_core::CoreError;
use ugrapher_graph::Graph;
use ugrapher_sim::{DeviceConfig, SimReport};
use ugrapher_tensor::Tensor2;

use crate::{ModelKind, OpSite};

/// Executes graph operators for GNN inference.
pub trait GraphOpBackend {
    /// Human-readable backend name ("dgl", "pyg", "gnnadvisor",
    /// "ugrapher").
    fn name(&self) -> &'static str;

    /// The device this backend simulates.
    fn device(&self) -> &DeviceConfig;

    /// Whether this backend can run the given model (GNNAdvisor only
    /// supports GCN and GIN, paper §6).
    fn supports(&self, model: ModelKind) -> bool {
        let _ = model;
        true
    }

    /// Executes one graph operator at `site`, returning the functional
    /// output and the simulated kernel report(s).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid operators or operand mismatches.
    fn run_op(
        &self,
        graph: &Graph,
        site: &OpSite,
        op: &OpInfo,
        operands: &OpOperands<'_>,
    ) -> Result<(Tensor2, SimReport), CoreError>;
}

/// The uGrapher backend: every operator runs under an adaptively chosen
/// schedule (predictor if installed, otherwise sampled grid search), cached
/// per (site, graph shape).
pub struct UGrapherBackend {
    runtime: Runtime,
    device: DeviceConfig,
    schedule_cache: Mutex<HashMap<(String, usize, usize, usize), ParallelInfo>>,
}

impl UGrapherBackend {
    /// Creates a backend that tunes by sampled grid search.
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            runtime: Runtime::new(device.clone()),
            device,
            schedule_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a backend that tunes with a trained predictor (the paper's
    /// default deployment, §5.4).
    pub fn with_predictor(device: DeviceConfig, predictor: Predictor) -> Self {
        Self {
            runtime: Runtime::new(device.clone()).with_predictor(predictor),
            device,
            schedule_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a backend whose grid search considers only the four basic
    /// strategies — much faster tuning, used by tests and quick runs.
    pub fn quick(device: DeviceConfig) -> Self {
        Self {
            runtime: Runtime::new(device.clone()).with_search_space(ParallelInfo::basics()),
            device,
            schedule_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The schedule this backend would use for the given call site, tuning
    /// and caching on first use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the operator is invalid.
    pub fn schedule_for(
        &self,
        graph: &GraphTensor<'_>,
        site: &OpSite,
        op: &OpInfo,
        feat: usize,
        scalars: (bool, bool),
    ) -> Result<ParallelInfo, CoreError> {
        let key = (
            site.label(),
            graph.graph().num_vertices(),
            graph.graph().num_edges(),
            feat,
        );
        if let Some(p) = self
            .schedule_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return Ok(*p);
        }
        let chosen = self
            .runtime
            .choose_schedule_shaped(graph, op, feat, scalars)?;
        self.schedule_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, chosen);
        Ok(chosen)
    }
}

impl GraphOpBackend for UGrapherBackend {
    fn name(&self) -> &'static str {
        "ugrapher"
    }

    fn device(&self) -> &DeviceConfig {
        &self.device
    }

    fn run_op(
        &self,
        graph: &Graph,
        site: &OpSite,
        op: &OpInfo,
        operands: &OpOperands<'_>,
    ) -> Result<(Tensor2, SimReport), CoreError> {
        let gt = GraphTensor::new(graph);
        let feat = operands
            .a
            .map(|t| t.cols())
            .into_iter()
            .chain(operands.b.map(|t| t.cols()))
            .max()
            .unwrap_or(1);
        let scalar = |t: Option<&Tensor2>| t.is_some_and(|t| t.cols() == 1) && feat > 1;
        let schedule = self.schedule_for(
            &gt,
            site,
            op,
            feat,
            (scalar(operands.a), scalar(operands.b)),
        )?;
        let args = OpArgs {
            op: *op,
            operands: *operands,
        };
        let res = self.runtime.run(&gt, &args, Some(schedule))?;
        Ok((res.output, res.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpSiteKind;
    use ugrapher_graph::generate::uniform_random;

    #[test]
    fn ugrapher_backend_runs_and_caches() {
        let g = uniform_random(150, 700, 1);
        let x = Tensor2::full(150, 8, 1.0);
        let backend = UGrapherBackend::new(DeviceConfig::v100());
        let site = OpSite::new(ModelKind::Gcn, 1, OpSiteKind::Aggregation);
        let op = OpInfo::aggregation_sum();
        let (out1, rep1) = backend
            .run_op(&g, &site, &op, &OpOperands::single(&x))
            .unwrap();
        let (out2, _) = backend
            .run_op(&g, &site, &op, &OpOperands::single(&x))
            .unwrap();
        assert_eq!(out1, out2);
        assert!(rep1.time_ms > 0.0);
        assert_eq!(
            backend
                .schedule_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
            1
        );
    }

    #[test]
    fn supports_everything_by_default() {
        let backend = UGrapherBackend::new(DeviceConfig::a100());
        for m in ModelKind::ALL {
            assert!(backend.supports(m));
        }
        assert_eq!(backend.name(), "ugrapher");
    }
}
