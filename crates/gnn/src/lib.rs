//! # ugrapher-gnn
//!
//! GNN models on top of the uGrapher graph-operator layer: the four model
//! families of the paper's evaluation (§6) — GCN, GIN, GAT, and GraphSage
//! with max/sum/mean aggregators — executed as full-graph inference
//! pipelines that interleave
//!
//! * dense layers (GEMM via `ugrapher-tensor`, timed by the roofline cost
//!   model), and
//! * graph operators (executed functionally and timed on the GPU simulator
//!   through a pluggable [`GraphOpBackend`]).
//!
//! The [`GraphOpBackend`] trait is the seam the paper's comparison uses:
//! `ugrapher-baselines` provides DGL-, PyG- and GNNAdvisor-style backends,
//! while [`UGrapherBackend`] auto-tunes each operator's schedule. Model
//! structure, GEMM cost and element-wise cost are *identical* across
//! backends, so end-to-end differences isolate graph-operator scheduling —
//! mirroring the paper's experimental design.
//!
//! # Example
//!
//! ```
//! use ugrapher_gnn::{run_inference, ModelConfig, ModelKind, UGrapherBackend};
//! use ugrapher_graph::generate::uniform_random;
//! use ugrapher_sim::DeviceConfig;
//! use ugrapher_tensor::Tensor2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = uniform_random(200, 1000, 7);
//! let x = Tensor2::from_fn(200, 8, |r, c| ((r + c) % 5) as f32);
//! let backend = UGrapherBackend::new(DeviceConfig::v100());
//! let model = ModelConfig::paper_default(ModelKind::Gcn);
//! let result = run_inference(&model, &graph, &x, 4, &backend)?;
//! assert_eq!(result.output.shape(), (200, 4));
//! assert!(result.total_ms() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod backend;
mod cost;
pub mod dgl_compat;
mod error;
pub mod models;
mod site;
mod weights;

pub use backend::{GraphOpBackend, UGrapherBackend};
pub use cost::elementwise_ms;
pub use error::GnnError;
pub use models::{run_inference, InferenceResult, ModelConfig};
pub use site::{ModelKind, OpSite, OpSiteKind};
pub use weights::WeightInit;
