//! DGL-compatible message-passing interface (paper §5.3).
//!
//! DGL programs express graph operators through `update_all(message_fn,
//! reduce_fn)` and `apply_edges(message_fn)` with built-in functions named
//! by strings (`fn.u_mul_e('h', 'w', 'm')`, `fn.sum('m', 'h')`). The paper
//! integrates uGrapher by recognising those built-ins and swapping in its
//! own kernels without changing user code (Figs. 10–11). This module
//! reproduces that seam: [`MessageFn`]/[`ReduceFn`] mirror DGL's built-in
//! vocabulary, and [`update_all`]/[`apply_edges`] lower them onto
//! [`OpInfo`] and execute through any [`GraphOpBackend`].
//!
//! # Example
//!
//! The paper's Fig. 11 GCN layer:
//!
//! ```
//! use ugrapher_gnn::dgl_compat::{update_all, MessageFn, ReduceFn};
//! use ugrapher_gnn::UGrapherBackend;
//! use ugrapher_graph::generate::ring;
//! use ugrapher_sim::DeviceConfig;
//! use ugrapher_tensor::Tensor2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ring(64);
//! let h = Tensor2::full(64, 8, 1.0);
//! let edge_weight = Tensor2::full(64, 1, 0.5);
//! let backend = UGrapherBackend::quick(DeviceConfig::v100());
//! // graph.update_all(fn.u_mul_e('h', '_edge_weight', 'm'), fn.sum('m', 'rst'))
//! let (rst, _report) = update_all(
//!     &graph,
//!     MessageFn::UMulE,
//!     ReduceFn::Sum,
//!     Some(&h),
//!     Some(&edge_weight),
//!     &backend,
//! )?;
//! assert_eq!(rst[(1, 0)], 0.5);
//! # Ok(())
//! # }
//! ```

use ugrapher_core::abstraction::{EdgeOp, GatherOp, OpInfo, TensorType};
use ugrapher_core::exec::OpOperands;
use ugrapher_core::CoreError;
use ugrapher_graph::Graph;
use ugrapher_sim::SimReport;
use ugrapher_tensor::Tensor2;

use crate::{GraphOpBackend, ModelKind, OpSite, OpSiteKind};

/// DGL's built-in message functions (the `fn.u_mul_e` family).
///
/// `U` refers to the source vertex, `V` to the destination vertex and `E`
/// to the edge, as in DGL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageFn {
    /// `copy_u`: message = source feature.
    CopyU,
    /// `copy_e`: message = edge feature.
    CopyE,
    /// `u_add_v`.
    UAddV,
    /// `u_sub_v`.
    USubV,
    /// `u_mul_v`.
    UMulV,
    /// `u_div_v`.
    UDivV,
    /// `u_add_e`.
    UAddE,
    /// `u_mul_e`.
    UMulE,
    /// `e_add_v`.
    EAddV,
    /// `e_mul_v`.
    EMulV,
    /// `e_sub_v`.
    ESubV,
    /// `e_div_v`.
    EDivV,
}

impl MessageFn {
    /// Parses DGL's built-in name (e.g. `"u_mul_e"`).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "copy_u" | "copy_src" => MessageFn::CopyU,
            "copy_e" | "copy_edge" => MessageFn::CopyE,
            "u_add_v" => MessageFn::UAddV,
            "u_sub_v" => MessageFn::USubV,
            "u_mul_v" => MessageFn::UMulV,
            "u_div_v" => MessageFn::UDivV,
            "u_add_e" => MessageFn::UAddE,
            "u_mul_e" => MessageFn::UMulE,
            "e_add_v" => MessageFn::EAddV,
            "e_mul_v" => MessageFn::EMulV,
            "e_sub_v" => MessageFn::ESubV,
            "e_div_v" => MessageFn::EDivV,
            _ => return None,
        })
    }

    /// The `(edge_op, A type, B type)` this built-in lowers to.
    fn lower(self) -> (EdgeOp, TensorType, TensorType) {
        use MessageFn::*;
        use TensorType::*;
        match self {
            CopyU => (EdgeOp::CopyLhs, SrcV, Null),
            CopyE => (EdgeOp::CopyLhs, Edge, Null),
            UAddV => (EdgeOp::Add, SrcV, DstV),
            USubV => (EdgeOp::Sub, SrcV, DstV),
            UMulV => (EdgeOp::Mul, SrcV, DstV),
            UDivV => (EdgeOp::Div, SrcV, DstV),
            UAddE => (EdgeOp::Add, SrcV, Edge),
            UMulE => (EdgeOp::Mul, SrcV, Edge),
            EAddV => (EdgeOp::Add, Edge, DstV),
            EMulV => (EdgeOp::Mul, Edge, DstV),
            ESubV => (EdgeOp::Sub, Edge, DstV),
            EDivV => (EdgeOp::Div, Edge, DstV),
        }
    }
}

/// DGL's built-in reduce functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceFn {
    /// `fn.sum`.
    Sum,
    /// `fn.max`.
    Max,
    /// `fn.min`.
    Min,
    /// `fn.mean`.
    Mean,
}

impl ReduceFn {
    /// Parses DGL's built-in name.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "sum" => ReduceFn::Sum,
            "max" => ReduceFn::Max,
            "min" => ReduceFn::Min,
            "mean" => ReduceFn::Mean,
            _ => return None,
        })
    }

    fn lower(self) -> GatherOp {
        match self {
            ReduceFn::Sum => GatherOp::Sum,
            ReduceFn::Max => GatherOp::Max,
            ReduceFn::Min => GatherOp::Min,
            ReduceFn::Mean => GatherOp::Mean,
        }
    }
}

fn operands<'a>(
    a_type: TensorType,
    b_type: TensorType,
    u_or_e_a: Option<&'a Tensor2>,
    b: Option<&'a Tensor2>,
) -> OpOperands<'a> {
    let pick = |t: TensorType| t != TensorType::Null;
    OpOperands {
        a: pick(a_type).then_some(u_or_e_a).flatten(),
        b: pick(b_type).then_some(b).flatten(),
    }
}

/// DGL's `graph.update_all(message_fn, reduce_fn)`: creates messages and
/// reduces them into destination vertices in one fused kernel (the paper's
/// fused-aggregation path, §2.1).
///
/// `a` is the tensor for the message function's first operand (source
/// vertex or edge tensor, per the built-in); `b` the second (destination
/// vertex or edge tensor), `None` for copy built-ins.
///
/// # Errors
///
/// Returns [`CoreError`] if the lowered operator or operand shapes are
/// invalid.
pub fn update_all(
    graph: &Graph,
    message: MessageFn,
    reduce: ReduceFn,
    a: Option<&Tensor2>,
    b: Option<&Tensor2>,
    backend: &dyn GraphOpBackend,
) -> Result<(Tensor2, SimReport), CoreError> {
    let (edge_op, a_type, b_type) = message.lower();
    let op = OpInfo::new(edge_op, reduce.lower(), a_type, b_type, TensorType::DstV)?;
    let site = OpSite::new(ModelKind::Gcn, 0, OpSiteKind::Aggregation);
    backend.run_op(graph, &site, &op, &operands(a_type, b_type, a, b))
}

/// DGL's `graph.apply_edges(message_fn)`: materialises a per-edge tensor
/// (the paper's message-creation path).
///
/// # Errors
///
/// Returns [`CoreError`] if the lowered operator or operand shapes are
/// invalid.
pub fn apply_edges(
    graph: &Graph,
    message: MessageFn,
    a: Option<&Tensor2>,
    b: Option<&Tensor2>,
    backend: &dyn GraphOpBackend,
) -> Result<(Tensor2, SimReport), CoreError> {
    let (edge_op, a_type, b_type) = message.lower();
    let op = OpInfo::new(edge_op, GatherOp::CopyRhs, a_type, b_type, TensorType::Edge)?;
    let site = OpSite::new(ModelKind::Gcn, 0, OpSiteKind::MessageCreation);
    backend.run_op(graph, &site, &op, &operands(a_type, b_type, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGrapherBackend;
    use ugrapher_graph::generate::uniform_random;
    use ugrapher_sim::DeviceConfig;

    fn backend() -> UGrapherBackend {
        UGrapherBackend::quick(DeviceConfig::v100())
    }

    #[test]
    fn parse_matches_dgl_names() {
        assert_eq!(MessageFn::parse("u_mul_e"), Some(MessageFn::UMulE));
        assert_eq!(MessageFn::parse("copy_u"), Some(MessageFn::CopyU));
        assert_eq!(MessageFn::parse("nope"), None);
        assert_eq!(ReduceFn::parse("mean"), Some(ReduceFn::Mean));
        assert_eq!(ReduceFn::parse("prod"), None);
    }

    #[test]
    fn update_all_copy_u_sum_counts_degrees() {
        let g = uniform_random(100, 700, 2);
        let h = Tensor2::full(100, 4, 1.0);
        let (out, report) = update_all(
            &g,
            MessageFn::CopyU,
            ReduceFn::Sum,
            Some(&h),
            None,
            &backend(),
        )
        .unwrap();
        for v in 0..100 {
            assert_eq!(out[(v, 0)], g.in_degree(v) as f32);
        }
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn fig11_gcn_pattern_u_mul_e_sum() {
        let g = uniform_random(80, 400, 3);
        let h = Tensor2::full(80, 8, 2.0);
        let w = Tensor2::full(400, 1, 0.5);
        let (out, _) = update_all(
            &g,
            MessageFn::UMulE,
            ReduceFn::Sum,
            Some(&h),
            Some(&w),
            &backend(),
        )
        .unwrap();
        for v in 0..80 {
            assert_eq!(out[(v, 0)], g.in_degree(v) as f32);
        }
    }

    #[test]
    fn apply_edges_u_add_v() {
        let g = uniform_random(50, 200, 4);
        let h = Tensor2::from_fn(50, 2, |r, _| r as f32);
        let (out, _) = apply_edges(&g, MessageFn::UAddV, Some(&h), Some(&h), &backend()).unwrap();
        assert_eq!(out.rows(), g.num_edges());
        let coo = g.to_coo();
        for (e, (u, v)) in coo.iter_edges().enumerate() {
            assert_eq!(out[(e, 0)], (u + v) as f32);
        }
    }

    #[test]
    fn invalid_lowering_is_rejected() {
        // copy_e needs an edge tensor; omitting it errors cleanly.
        let g = uniform_random(10, 40, 5);
        let err = update_all(&g, MessageFn::CopyE, ReduceFn::Sum, None, None, &backend());
        assert!(err.is_err());
    }

    #[test]
    fn all_message_fns_lower_to_valid_ops() {
        use MessageFn::*;
        for m in [
            CopyU, CopyE, UAddV, USubV, UMulV, UDivV, UAddE, UMulE, EAddV, EMulV, ESubV, EDivV,
        ] {
            let (edge_op, a, b) = m.lower();
            // As a reduction target...
            OpInfo::new(edge_op, GatherOp::Sum, a, b, TensorType::DstV)
                .unwrap_or_else(|e| panic!("{m:?} as update_all: {e}"));
            // ...and as an edge output.
            OpInfo::new(edge_op, GatherOp::CopyRhs, a, b, TensorType::Edge)
                .unwrap_or_else(|e| panic!("{m:?} as apply_edges: {e}"));
        }
    }
}
