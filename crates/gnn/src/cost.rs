//! Cost of non-graph, non-GEMM work (element-wise kernels).

use ugrapher_sim::DeviceConfig;

/// Estimated milliseconds for an element-wise GPU kernel touching
/// `tensors` operands of `elems` `f32` elements each (bias add, ReLU,
/// exp, ...). These kernels are trivially bandwidth-bound.
pub fn elementwise_ms(device: &DeviceConfig, elems: usize, tensors: usize) -> f64 {
    let bytes = (elems * tensors * 4) as f64;
    bytes / (device.dram_bw_gbs * 1e9) * 1e3 + device.launch_overhead_us * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_with_elements_and_operands() {
        let d = DeviceConfig::v100();
        let base = elementwise_ms(&d, 1_000_000, 2);
        assert!(elementwise_ms(&d, 2_000_000, 2) > base);
        assert!(elementwise_ms(&d, 1_000_000, 3) > base);
    }

    #[test]
    fn zero_elems_is_just_launch_overhead() {
        let d = DeviceConfig::v100();
        assert!((elementwise_ms(&d, 0, 2) - d.launch_overhead_us * 1e-3).abs() < 1e-12);
    }
}
