//! Deterministic pseudo-random weight initialisation.
//!
//! Inference timing is data-independent, but the functional outputs feed
//! correctness tests, so weights must be reproducible without pulling a
//! full RNG dependency into the hot path: a splitmix64-derived generator
//! keyed by (layer, shape) suffices.

use ugrapher_tensor::Tensor2;

/// Deterministic weight generator.
#[derive(Debug, Clone, Copy)]
pub struct WeightInit {
    seed: u64,
}

impl WeightInit {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// A `rows × cols` matrix with entries in `(-scale, scale)`.
    pub fn matrix(&self, tag: u64, rows: usize, cols: usize) -> Tensor2 {
        let scale = (1.0 / (rows.max(1) as f32)).sqrt();
        Tensor2::from_fn(rows, cols, |r, c| {
            let h = splitmix64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(tag)
                    .wrapping_add((r as u64) << 32 | c as u64),
            );
            // Map to (-1, 1) then scale.
            ((h >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0) * scale
        })
    }

    /// A `1 × cols` bias row.
    pub fn bias(&self, tag: u64, cols: usize) -> Tensor2 {
        self.matrix(tag ^ 0xB1A5, 1, cols)
    }
}

impl Default for WeightInit {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let w = WeightInit::new(1);
        assert_eq!(w.matrix(0, 4, 4), w.matrix(0, 4, 4));
    }

    #[test]
    fn tags_and_seeds_differentiate() {
        let w = WeightInit::new(1);
        assert_ne!(w.matrix(0, 4, 4), w.matrix(1, 4, 4));
        assert_ne!(w.matrix(0, 4, 4), WeightInit::new(2).matrix(0, 4, 4));
    }

    #[test]
    fn values_bounded() {
        let w = WeightInit::new(3).matrix(7, 16, 16);
        let scale = (1.0f32 / 16.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= scale));
        // Not all zero.
        assert!(w.as_slice().iter().any(|v| v.abs() > 1e-6));
    }
}
