use std::error::Error;
use std::fmt;

use ugrapher_core::CoreError;
use ugrapher_tensor::TensorError;

use crate::ModelKind;

/// Errors produced while assembling or running a GNN model.
#[derive(Debug, Clone, PartialEq)]
pub enum GnnError {
    /// A graph-operator invocation failed.
    Op(CoreError),
    /// A dense tensor operation failed.
    Tensor(TensorError),
    /// The chosen backend does not support this model (e.g. GNNAdvisor
    /// only supports GCN and GIN, paper §6).
    UnsupportedModel {
        /// Backend name.
        backend: String,
        /// The rejected model.
        model: ModelKind,
    },
    /// Invalid model configuration.
    BadConfig {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::Op(e) => write!(f, "graph operator failed: {e}"),
            GnnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            GnnError::UnsupportedModel { backend, model } => {
                write!(f, "backend {backend} does not support {model:?}")
            }
            GnnError::BadConfig { reason } => write!(f, "bad model config: {reason}"),
        }
    }
}

impl Error for GnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GnnError::Op(e) => Some(e),
            GnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for GnnError {
    fn from(e: CoreError) -> Self {
        GnnError::Op(e)
    }
}

impl From<TensorError> for GnnError {
    fn from(e: TensorError) -> Self {
        GnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GnnError::UnsupportedModel {
            backend: "gnnadvisor".into(),
            model: ModelKind::Gat,
        };
        assert!(e.to_string().contains("gnnadvisor"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
