//! Shared inference context: cost accounting + operator dispatch.

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::OpOperands;
use ugrapher_graph::Graph;
use ugrapher_obs::{Recorder, SpanKind};
use ugrapher_sim::SimReport;
use ugrapher_tensor::{GemmCostModel, GemmDevice, Tensor2};

use crate::models::InferenceResult;
use crate::{elementwise_ms, GnnError, GraphOpBackend, OpSite, WeightInit};

/// Per-inference state threaded through the model builders.
pub(crate) struct Ctx<'a> {
    pub graph: &'a Graph,
    backend: &'a dyn GraphOpBackend,
    gemm_model: GemmCostModel,
    pub weights: WeightInit,
    gemm_ms: f64,
    elementwise_ms: f64,
    graph_ops: Vec<(OpSite, SimReport)>,
    recorder: Recorder,
    trace_id: u64,
}

impl<'a> Ctx<'a> {
    pub fn new(graph: &'a Graph, backend: &'a dyn GraphOpBackend) -> Self {
        // The GEMM device follows the backend's simulated GPU: A100 gets
        // tensor-core GEMM throughput (paper §7.2).
        let gemm_device = if backend.device().name == "A100" {
            GemmDevice::a100()
        } else {
            GemmDevice::v100()
        };
        Self {
            graph,
            backend,
            gemm_model: GemmCostModel::new(gemm_device),
            weights: WeightInit::default(),
            gemm_ms: 0.0,
            elementwise_ms: 0.0,
            graph_ops: Vec::new(),
            recorder: Recorder::global(),
            trace_id: ugrapher_obs::next_trace_id(),
        }
    }

    /// Opens a span on this inference's recorder with its trace id.
    pub fn span(&self, name: &'static str, kind: SpanKind) -> ugrapher_obs::SpanGuard {
        self.recorder.span_traced(name, kind, self.trace_id)
    }

    /// Dense projection `x × w`, charged to the GEMM budget.
    pub fn gemm(&mut self, x: &Tensor2, w: &Tensor2) -> Result<Tensor2, GnnError> {
        let mut span = self.span("gnn.gemm", SpanKind::Model);
        let out = x.matmul(w)?;
        let sim_ms = self.gemm_model.time_ms(x.rows(), w.cols(), x.cols());
        self.gemm_ms += sim_ms;
        if span.is_enabled() {
            span.attr("m", x.rows())
                .attr("n", w.cols())
                .attr("k", x.cols())
                .attr("time_ms", sim_ms);
        }
        Ok(out)
    }

    /// Charges one element-wise kernel over `elems` elements and `tensors`
    /// operands (the functional effect is applied by the caller).
    pub fn charge_elementwise(&mut self, elems: usize, tensors: usize) {
        self.elementwise_ms += elementwise_ms(self.backend.device(), elems, tensors);
    }

    /// Bias + ReLU epilogue, functional and charged.
    pub fn bias_relu(&mut self, x: &Tensor2, bias: &Tensor2) -> Result<Tensor2, GnnError> {
        let out = x.add_bias(bias)?.relu();
        self.charge_elementwise(x.len(), 2);
        Ok(out)
    }

    /// Bias epilogue without activation (used on final layers).
    pub fn bias(&mut self, x: &Tensor2, bias: &Tensor2) -> Result<Tensor2, GnnError> {
        let out = x.add_bias(bias)?;
        self.charge_elementwise(x.len(), 2);
        Ok(out)
    }

    /// Runs one graph operator through the backend, recording its report.
    pub fn op(
        &mut self,
        site: OpSite,
        op: OpInfo,
        operands: OpOperands<'_>,
    ) -> Result<Tensor2, GnnError> {
        let mut span = self.span("gnn.op", SpanKind::Model);
        let result = self.backend.run_op(self.graph, &site, &op, &operands);
        if span.is_enabled() {
            span.attr("op", site.label())
                .attr("layer", site.layer)
                .attr("ok", result.is_ok());
            if let Ok((_, report)) = &result {
                span.attr("time_ms", report.time_ms)
                    .attr("kernels", report.kernels);
            }
        }
        drop(span);
        let (out, report) = result?;
        self.graph_ops.push((site, report));
        Ok(out)
    }

    pub fn into_result(self, output: Tensor2) -> InferenceResult {
        InferenceResult {
            output,
            gemm_ms: self.gemm_ms,
            elementwise_ms: self.elementwise_ms,
            graph_ops: self.graph_ops,
        }
    }

    /// Layer dimensions: `(in_dim, out_dim)` for layer `l` (0-based) of a
    /// `num_layers`-deep model with the given hidden width and final class
    /// count.
    pub fn layer_dims(
        l: usize,
        num_layers: usize,
        input_dim: usize,
        hidden: usize,
        num_classes: usize,
    ) -> (usize, usize) {
        let in_dim = if l == 0 { input_dim } else { hidden };
        let out_dim = if l + 1 == num_layers {
            num_classes
        } else {
            hidden
        };
        (in_dim, out_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_dims_shape_the_pipeline() {
        assert_eq!(Ctx::layer_dims(0, 2, 100, 16, 7), (100, 16));
        assert_eq!(Ctx::layer_dims(1, 2, 100, 16, 7), (16, 7));
        assert_eq!(Ctx::layer_dims(0, 1, 100, 16, 7), (100, 7));
        assert_eq!(Ctx::layer_dims(2, 5, 100, 64, 2), (64, 64));
    }
}
