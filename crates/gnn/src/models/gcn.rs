//! GCN (Kipf & Welling): `H' = ReLU(Â H W)` per layer, where `Â` is the
//! symmetrically normalised adjacency. The graph operator is the paper's
//! *weighted-aggr-sum* (§2.2): multiply source features by a scalar edge
//! weight and sum into the destination.

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::OpOperands;
use ugrapher_graph::Graph;
use ugrapher_tensor::Tensor2;

use crate::models::{Ctx, ModelConfig};
use crate::{GnnError, ModelKind, OpSite, OpSiteKind};

/// Symmetric GCN normalisation weights: `1 / sqrt((1+d_out(u))(1+d_in(v)))`
/// per edge, as a one-column edge tensor (scalar broadcast).
pub(crate) fn norm_weights(graph: &Graph) -> Tensor2 {
    let coo = graph.to_coo();
    let data: Vec<f32> = coo
        .iter_edges()
        .map(|(u, v)| {
            let du = 1.0 + graph.out_degree(u as usize) as f32;
            let dv = 1.0 + graph.in_degree(v as usize) as f32;
            1.0 / (du * dv).sqrt()
        })
        .collect();
    Tensor2::from_vec(graph.num_edges(), 1, data).expect("one weight per edge")
}

pub(crate) fn forward(
    ctx: &mut Ctx<'_>,
    model: &ModelConfig,
    features: &Tensor2,
    num_classes: usize,
) -> Result<Tensor2, GnnError> {
    let edge_w = norm_weights(ctx.graph);
    let mut h = features.clone();
    for l in 0..model.num_layers {
        let (in_dim, out_dim) = Ctx::layer_dims(
            l,
            model.num_layers,
            features.cols(),
            model.hidden,
            num_classes,
        );
        let w = ctx.weights.matrix(l as u64, in_dim, out_dim);
        let b = ctx.weights.bias(l as u64, out_dim);
        let z = ctx.gemm(&h, &w)?;
        let agg = ctx.op(
            OpSite::new(ModelKind::Gcn, l + 1, OpSiteKind::Aggregation),
            OpInfo::weighted_aggregation_sum(),
            OpOperands::pair(&z, &edge_w),
        )?;
        h = if l + 1 == model.num_layers {
            ctx.bias(&agg, &b)?
        } else {
            ctx.bias_relu(&agg, &b)?
        };
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_graph::generate::ring;

    #[test]
    fn norm_weights_on_ring_are_half() {
        // Ring: every vertex has out-degree 1 and in-degree 1 -> weight
        // 1/sqrt(2*2) = 0.5 on every edge.
        let g = ring(10);
        let w = norm_weights(&g);
        assert_eq!(w.shape(), (10, 1));
        assert!(w.as_slice().iter().all(|&x| (x - 0.5).abs() < 1e-6));
    }

    #[test]
    fn norm_weights_shrink_for_hubs() {
        let g = Graph::from_edges(4, vec![0, 1, 2], vec![3, 3, 3]).unwrap();
        let w = norm_weights(&g);
        // All edges point at hub 3 (in-degree 3): 1/sqrt(2*4).
        assert!(w
            .as_slice()
            .iter()
            .all(|&x| (x - 1.0 / 8.0f32.sqrt()).abs() < 1e-6));
    }
}
