//! The benchmark models (paper §6): GCN, GIN, GAT and GraphSage
//! (max/sum/mean), assembled from dense layers and graph operators.
//!
//! Every model follows its original paper's default configuration
//! ([`ModelConfig::paper_default`]), runs full-graph inference, and records
//! a time breakdown into GEMM, element-wise and graph-operator components —
//! the decomposition behind the paper's per-model speedup analysis (§7.2:
//! models with a higher graph-operator share benefit more from uGrapher).

mod ctx;
mod gat;
mod gcn;
mod gin;
mod sage;

use ugrapher_graph::Graph;
use ugrapher_sim::SimReport;
use ugrapher_tensor::Tensor2;

use crate::{GnnError, GraphOpBackend, ModelKind, OpSite};

pub(crate) use ctx::Ctx;

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Model family.
    pub kind: ModelKind,
    /// Number of layers.
    pub num_layers: usize,
    /// Hidden dimension (per head for GAT).
    pub hidden: usize,
    /// Attention heads (GAT only; 1 elsewhere).
    pub heads: usize,
}

impl ModelConfig {
    /// The default configuration from each model's original paper, as the
    /// evaluation prescribes (§6): GCN 2×16, GIN 5×64, GAT 2 layers of 8
    /// heads × 8, GraphSage 2×16.
    pub fn paper_default(kind: ModelKind) -> Self {
        match kind {
            ModelKind::Gcn => Self {
                kind,
                num_layers: 2,
                hidden: 16,
                heads: 1,
            },
            ModelKind::Gin => Self {
                kind,
                num_layers: 5,
                hidden: 64,
                heads: 1,
            },
            ModelKind::Gat => Self {
                kind,
                num_layers: 2,
                hidden: 8,
                heads: 8,
            },
            ModelKind::SageSum | ModelKind::SageMax | ModelKind::SageMean => Self {
                kind,
                num_layers: 2,
                hidden: 16,
                heads: 1,
            },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadConfig`] for zero layers/hidden/heads.
    pub fn validate(&self) -> Result<(), GnnError> {
        if self.num_layers == 0 || self.hidden == 0 || self.heads == 0 {
            return Err(GnnError::BadConfig {
                reason: format!(
                    "layers ({}), hidden ({}) and heads ({}) must be positive",
                    self.num_layers, self.hidden, self.heads
                ),
            });
        }
        Ok(())
    }
}

/// The outcome of one full-graph inference run.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Final vertex logits (`#vertices × num_classes`).
    pub output: Tensor2,
    /// Total dense GEMM time (roofline model), in ms.
    pub gemm_ms: f64,
    /// Total element-wise kernel time (bias/ReLU/exp), in ms.
    pub elementwise_ms: f64,
    /// Every graph operator executed, with its simulated report.
    pub graph_ops: Vec<(OpSite, SimReport)>,
}

impl InferenceResult {
    /// Total graph-operator time in ms.
    pub fn graph_ms(&self) -> f64 {
        self.graph_ops.iter().map(|(_, r)| r.time_ms).sum()
    }

    /// End-to-end inference time in ms.
    pub fn total_ms(&self) -> f64 {
        self.gemm_ms + self.elementwise_ms + self.graph_ms()
    }

    /// Fraction of time spent in graph operators.
    pub fn graph_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total == 0.0 {
            0.0
        } else {
            self.graph_ms() / total
        }
    }

    /// Merged report of all ops at a given site (e.g. the per-head ops of
    /// a GAT aggregation).
    pub fn site_report(&self, site: &OpSite) -> Option<SimReport> {
        let matching: Vec<&SimReport> = self
            .graph_ops
            .iter()
            .filter(|(s, _)| s == site)
            .map(|(_, r)| r)
            .collect();
        if matching.is_empty() {
            None
        } else {
            Some(SimReport::merge_all(matching))
        }
    }
}

/// Runs full-graph inference for `model` over `graph`, starting from the
/// input `features` and producing `num_classes` logits per vertex.
///
/// # Errors
///
/// Returns [`GnnError::UnsupportedModel`] if the backend rejects the model
/// (e.g. GNNAdvisor for GAT), or propagates operator/tensor errors.
///
/// # Example
///
/// See the crate-level example.
pub fn run_inference(
    model: &ModelConfig,
    graph: &Graph,
    features: &Tensor2,
    num_classes: usize,
    backend: &dyn GraphOpBackend,
) -> Result<InferenceResult, GnnError> {
    model.validate()?;
    if num_classes == 0 {
        return Err(GnnError::BadConfig {
            reason: "num_classes must be positive".to_owned(),
        });
    }
    if !backend.supports(model.kind) {
        return Err(GnnError::UnsupportedModel {
            backend: backend.name().to_owned(),
            model: model.kind,
        });
    }
    let mut ctx = Ctx::new(graph, backend);
    let mut span = ctx.span("gnn.inference", ugrapher_obs::SpanKind::Model);
    let output = match model.kind {
        ModelKind::Gcn => gcn::forward(&mut ctx, model, features, num_classes),
        ModelKind::Gin => gin::forward(&mut ctx, model, features, num_classes),
        ModelKind::Gat => gat::forward(&mut ctx, model, features, num_classes),
        ModelKind::SageSum | ModelKind::SageMax | ModelKind::SageMean => {
            sage::forward(&mut ctx, model, features, num_classes)
        }
    };
    if span.is_enabled() {
        span.attr("model", model.kind.label())
            .attr("layers", model.num_layers)
            .attr("backend", backend.name())
            .attr("ok", output.is_ok());
    }
    drop(span);
    Ok(ctx.into_result(output?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGrapherBackend;
    use ugrapher_graph::generate::uniform_random;
    use ugrapher_sim::DeviceConfig;

    fn setup() -> (Graph, Tensor2, UGrapherBackend) {
        let g = uniform_random(120, 600, 11);
        let x = Tensor2::from_fn(120, 12, |r, c| ((r * 3 + c) % 7) as f32 * 0.1);
        (g, x, UGrapherBackend::quick(DeviceConfig::v100()))
    }

    #[test]
    fn all_models_run_and_produce_logits() {
        let (g, x, backend) = setup();
        for kind in ModelKind::ALL {
            let model = ModelConfig::paper_default(kind);
            let res = run_inference(&model, &g, &x, 5, &backend)
                .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
            assert_eq!(res.output.shape(), (120, 5), "{kind:?}");
            assert!(res.total_ms() > 0.0, "{kind:?}");
            assert!(!res.graph_ops.is_empty(), "{kind:?}");
            assert!(
                res.output.as_slice().iter().all(|v| v.is_finite()),
                "{kind:?} produced non-finite logits"
            );
        }
    }

    #[test]
    fn gin_has_five_aggregations_by_default() {
        let (g, x, backend) = setup();
        let model = ModelConfig::paper_default(ModelKind::Gin);
        let res = run_inference(&model, &g, &x, 3, &backend).unwrap();
        let aggs = res
            .graph_ops
            .iter()
            .filter(|(s, _)| s.kind == crate::OpSiteKind::Aggregation)
            .count();
        assert_eq!(aggs, 5);
    }

    #[test]
    fn gat_exercises_message_creation_and_softmax() {
        let (g, x, backend) = setup();
        let model = ModelConfig::paper_default(ModelKind::Gat);
        let res = run_inference(&model, &g, &x, 3, &backend).unwrap();
        use crate::OpSiteKind::*;
        for kind in [
            MessageCreation,
            SoftmaxMax,
            SoftmaxShift,
            SoftmaxSum,
            SoftmaxNorm,
            Aggregation,
        ] {
            assert!(
                res.graph_ops.iter().any(|(s, _)| s.kind == kind),
                "missing {kind:?}"
            );
        }
    }

    #[test]
    fn sage_max_has_larger_gemm_share_than_gcn() {
        // Paper §7.2: SageMax has a larger GEMM proportion, hence smaller
        // uGrapher speedup.
        let (g, x, backend) = setup();
        let gcn = run_inference(
            &ModelConfig::paper_default(ModelKind::Gcn),
            &g,
            &x,
            4,
            &backend,
        )
        .unwrap();
        let smax = run_inference(
            &ModelConfig::paper_default(ModelKind::SageMax),
            &g,
            &x,
            4,
            &backend,
        )
        .unwrap();
        assert!(smax.gemm_ms > gcn.gemm_ms);
    }

    #[test]
    fn bad_configs_rejected() {
        let (g, x, backend) = setup();
        let mut model = ModelConfig::paper_default(ModelKind::Gcn);
        model.num_layers = 0;
        assert!(run_inference(&model, &g, &x, 4, &backend).is_err());
        let model = ModelConfig::paper_default(ModelKind::Gcn);
        assert!(run_inference(&model, &g, &x, 0, &backend).is_err());
    }

    #[test]
    fn site_report_merges_gat_heads() {
        let (g, x, backend) = setup();
        let model = ModelConfig::paper_default(ModelKind::Gat);
        let res = run_inference(&model, &g, &x, 3, &backend).unwrap();
        let site = OpSite::new(ModelKind::Gat, 1, crate::OpSiteKind::Aggregation);
        let merged = res.site_report(&site).expect("layer-1 aggregation ran");
        // Eight heads, one kernel each.
        assert_eq!(merged.kernels, 8);
        let absent = OpSite::new(ModelKind::Gat, 9, crate::OpSiteKind::Aggregation);
        assert!(res.site_report(&absent).is_none());
    }

    #[test]
    fn graph_fraction_is_a_fraction() {
        let (g, x, backend) = setup();
        let res = run_inference(
            &ModelConfig::paper_default(ModelKind::SageSum),
            &g,
            &x,
            4,
            &backend,
        )
        .unwrap();
        let f = res.graph_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
        assert!(
            (res.total_ms() - (res.gemm_ms + res.elementwise_ms + res.graph_ms())).abs() < 1e-12
        );
    }

    #[test]
    fn deeper_models_cost_more() {
        let (g, x, backend) = setup();
        let mut shallow = ModelConfig::paper_default(ModelKind::Gin);
        shallow.num_layers = 2;
        let mut deep = shallow;
        deep.num_layers = 5;
        let a = run_inference(&shallow, &g, &x, 4, &backend).unwrap();
        let b = run_inference(&deep, &g, &x, 4, &backend).unwrap();
        assert!(b.total_ms() > a.total_ms());
        assert!(b.graph_ops.len() > a.graph_ops.len());
    }

    #[test]
    fn inference_is_deterministic() {
        let (g, x, backend) = setup();
        let model = ModelConfig::paper_default(ModelKind::Gat);
        let a = run_inference(&model, &g, &x, 4, &backend).unwrap();
        let b = run_inference(&model, &g, &x, 4, &backend).unwrap();
        assert_eq!(a.output, b.output);
    }
}
