//! GAT (Veličković et al.): multi-head attention over edges.
//!
//! Each layer runs the full operator sequence the paper dissects:
//!
//! 1. `GAT_Lx_MsgC` — the lightweight *message creation* summing source and
//!    destination attention logits per edge (paper §3.2: "the features of
//!    the source vertex and destination vertex of each edge are summed as
//!    edge feature", skipping the reduction stage);
//! 2. edge softmax, decomposed exactly as DGL's `edge_softmax` is — an
//!    edge-to-vertex max, an edge-wise shift, an edge-to-vertex sum and an
//!    edge-wise normalize — exercising four more operator shapes of
//!    Table 4;
//! 3. `GAT_Lx_Aggr` — the computation-heavy weighted aggregation of source
//!    features by attention coefficients, one per head.

use ugrapher_core::abstraction::{EdgeOp, GatherOp, OpInfo, TensorType};
use ugrapher_core::exec::OpOperands;
use ugrapher_tensor::Tensor2;

use crate::models::{Ctx, ModelConfig};
use crate::{GnnError, ModelKind, OpSite, OpSiteKind};

/// `e - max[dst]` over edges (softmax shift): `A=Edge, B=DstV -> Edge`.
fn softmax_shift_op() -> OpInfo {
    OpInfo::new(
        EdgeOp::Sub,
        GatherOp::CopyRhs,
        TensorType::Edge,
        TensorType::DstV,
        TensorType::Edge,
    )
    .expect("valid Table 4 combination")
}

/// `e / sum[dst]` over edges (softmax normalise).
fn softmax_norm_op() -> OpInfo {
    OpInfo::new(
        EdgeOp::Div,
        GatherOp::CopyRhs,
        TensorType::Edge,
        TensorType::DstV,
        TensorType::Edge,
    )
    .expect("valid Table 4 combination")
}

/// Edge-tensor max reduction into destination vertices.
fn edge_max_op() -> OpInfo {
    OpInfo::new(
        EdgeOp::CopyLhs,
        GatherOp::Max,
        TensorType::Edge,
        TensorType::Null,
        TensorType::DstV,
    )
    .expect("valid Table 4 combination")
}

/// Copies columns `[start, start+len)` of `t` into a new tensor.
fn col_slice(t: &Tensor2, start: usize, len: usize) -> Tensor2 {
    Tensor2::from_fn(t.rows(), len, |r, c| t[(r, start + c)])
}

pub(crate) fn forward(
    ctx: &mut Ctx<'_>,
    model: &ModelConfig,
    features: &Tensor2,
    num_classes: usize,
) -> Result<Tensor2, GnnError> {
    let mut h = features.clone();
    for l in 0..model.num_layers {
        let last = l + 1 == model.num_layers;
        // Hidden layers concatenate `heads` heads of width `hidden`; the
        // output layer uses a single head of width `num_classes`.
        let heads = if last { 1 } else { model.heads };
        let head_dim = if last { num_classes } else { model.hidden };
        let in_dim = h.cols();
        let layer = l + 1;
        let tag = 0x6A7 + l as u64 * 8;

        // Feature projection: N x (heads * head_dim).
        let w = ctx.weights.matrix(tag, in_dim, heads * head_dim);
        let z = ctx.gemm(&h, &w)?;

        // Per-head attention logits: N x heads each.
        let a_src_w = ctx.weights.matrix(tag + 1, heads * head_dim, heads);
        let a_dst_w = ctx.weights.matrix(tag + 2, heads * head_dim, heads);
        let a_src = ctx.gemm(&z, &a_src_w)?;
        let a_dst = ctx.gemm(&z, &a_dst_w)?;

        // 1. Message creation: e = a_src[u] + a_dst[v] per edge.
        let e = ctx.op(
            OpSite::new(ModelKind::Gat, layer, OpSiteKind::MessageCreation),
            OpInfo::message_creation_add(),
            OpOperands::pair(&a_src, &a_dst),
        )?;
        let e = e.map(|x| if x > 0.0 { x } else { 0.2 * x }); // LeakyReLU
        ctx.charge_elementwise(e.len(), 2);

        // 2. Edge softmax over in-edges.
        let m = ctx.op(
            OpSite::new(ModelKind::Gat, layer, OpSiteKind::SoftmaxMax),
            edge_max_op(),
            OpOperands::single(&e),
        )?;
        let shifted = ctx.op(
            OpSite::new(ModelKind::Gat, layer, OpSiteKind::SoftmaxShift),
            softmax_shift_op(),
            OpOperands::pair(&e, &m),
        )?;
        let ex = shifted.map(f32::exp);
        ctx.charge_elementwise(ex.len(), 2);
        let s = ctx.op(
            OpSite::new(ModelKind::Gat, layer, OpSiteKind::SoftmaxSum),
            OpInfo::edge_aggregation_sum(),
            OpOperands::single(&ex),
        )?;
        let alpha = ctx.op(
            OpSite::new(ModelKind::Gat, layer, OpSiteKind::SoftmaxNorm),
            softmax_norm_op(),
            OpOperands::pair(&ex, &s),
        )?;

        // 3. Weighted aggregation per head (DstV rows with no in-edges
        // produce zeros, matching the softmax convention for isolated
        // vertices).
        let mut out = Tensor2::zeros(h.rows(), heads * head_dim);
        for head in 0..heads {
            let z_h = col_slice(&z, head * head_dim, head_dim);
            let alpha_h = col_slice(&alpha, head, 1);
            let agg = ctx.op(
                OpSite::new(ModelKind::Gat, layer, OpSiteKind::Aggregation),
                OpInfo::weighted_aggregation_sum(),
                OpOperands::pair(&z_h, &alpha_h),
            )?;
            for r in 0..out.rows() {
                out.row_mut(r)[head * head_dim..(head + 1) * head_dim].copy_from_slice(agg.row(r));
            }
        }

        h = if last {
            out
        } else {
            let activated = out.map(|x| if x > 0.0 { x } else { x.exp() - 1.0 }); // ELU
            ctx.charge_elementwise(out.len(), 2);
            activated
        };
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_ops_validate() {
        softmax_shift_op().validate().unwrap();
        softmax_norm_op().validate().unwrap();
        edge_max_op().validate().unwrap();
    }

    #[test]
    fn col_slice_extracts_columns() {
        let t = Tensor2::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        let s = col_slice(&t, 1, 2);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[21.0, 22.0]);
    }
}
