//! GraphSage (Hamilton et al.) with the three aggregators the paper
//! evaluates (§6): sum, mean and max. The max variant applies a pooling
//! projection to every vertex before aggregating — the extra GEMM that
//! gives SageMax its larger dense share (paper §7.2).

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::OpOperands;
use ugrapher_tensor::Tensor2;

use crate::models::{Ctx, ModelConfig};
use crate::{GnnError, ModelKind, OpSite, OpSiteKind};

pub(crate) fn forward(
    ctx: &mut Ctx<'_>,
    model: &ModelConfig,
    features: &Tensor2,
    num_classes: usize,
) -> Result<Tensor2, GnnError> {
    let mut h = features.clone();
    for l in 0..model.num_layers {
        let (in_dim, out_dim) = Ctx::layer_dims(
            l,
            model.num_layers,
            features.cols(),
            model.hidden,
            num_classes,
        );
        let last = l + 1 == model.num_layers;
        let tag = 0x5A6E + l as u64 * 8;
        let site = OpSite::new(model.kind, l + 1, OpSiteKind::Aggregation);

        let neighbor = match model.kind {
            ModelKind::SageSum => {
                ctx.op(site, OpInfo::aggregation_sum(), OpOperands::single(&h))?
            }
            ModelKind::SageMean => {
                ctx.op(site, OpInfo::aggregation_mean(), OpOperands::single(&h))?
            }
            ModelKind::SageMax => {
                // Max-pooling: project every vertex through the pool MLP
                // first, then take the element-wise max over in-neighbours
                // (the paper's *unweighted-aggr-max*, §2.2).
                let w_pool = ctx.weights.matrix(tag, in_dim, in_dim);
                let b_pool = ctx.weights.bias(tag, in_dim);
                let pooled = {
                    let p = ctx.gemm(&h, &w_pool)?;
                    ctx.bias_relu(&p, &b_pool)?
                };
                ctx.op(site, OpInfo::aggregation_max(), OpOperands::single(&pooled))?
            }
            other => unreachable!("sage::forward called for {other:?}"),
        };

        let w_self = ctx.weights.matrix(tag + 1, in_dim, out_dim);
        let w_neigh = ctx.weights.matrix(tag + 2, in_dim, out_dim);
        let b = ctx.weights.bias(tag + 3, out_dim);
        let self_part = ctx.gemm(&h, &w_self)?;
        let neigh_part = ctx.gemm(&neighbor, &w_neigh)?;
        let combined = self_part.add(&neigh_part)?;
        ctx.charge_elementwise(combined.len(), 3);
        h = if last {
            ctx.bias(&combined, &b)?
        } else {
            ctx.bias_relu(&combined, &b)?
        };
    }
    Ok(h)
}
