//! GIN (Xu et al.): `H' = MLP((1 + ε) H + Σ_{u→v} H_u)` per layer, with a
//! two-layer MLP. The graph operator is the plain *aggregation-sum* of
//! paper Fig. 4; with the default five layers it contributes GIN_L1..L5
//! aggregation sites (paper Table 9).

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::exec::OpOperands;
use ugrapher_tensor::Tensor2;

use crate::models::{Ctx, ModelConfig};
use crate::{GnnError, ModelKind, OpSite, OpSiteKind};

/// GIN's epsilon (kept at the common default of 0).
const EPS: f32 = 0.0;

pub(crate) fn forward(
    ctx: &mut Ctx<'_>,
    model: &ModelConfig,
    features: &Tensor2,
    num_classes: usize,
) -> Result<Tensor2, GnnError> {
    let mut h = features.clone();
    for l in 0..model.num_layers {
        let (in_dim, out_dim) = Ctx::layer_dims(
            l,
            model.num_layers,
            features.cols(),
            model.hidden,
            num_classes,
        );
        debug_assert_eq!(h.cols(), in_dim);

        let agg = ctx.op(
            OpSite::new(ModelKind::Gin, l + 1, OpSiteKind::Aggregation),
            OpInfo::aggregation_sum(),
            OpOperands::single(&h),
        )?;
        let combined = agg.add(&h.scale(1.0 + EPS))?;
        ctx.charge_elementwise(combined.len(), 3);

        // Two-layer MLP: in -> hidden -> out.
        let w1 = ctx.weights.matrix(l as u64 * 4 + 1, in_dim, model.hidden);
        let b1 = ctx.weights.bias(l as u64 * 4 + 1, model.hidden);
        let w2 = ctx.weights.matrix(l as u64 * 4 + 2, model.hidden, out_dim);
        let b2 = ctx.weights.bias(l as u64 * 4 + 2, out_dim);
        let z1 = ctx.gemm(&combined, &w1)?;
        let h1 = ctx.bias_relu(&z1, &b1)?;
        let z = ctx.gemm(&h1, &w2)?;
        h = if l + 1 == model.num_layers {
            ctx.bias(&z, &b2)?
        } else {
            ctx.bias_relu(&z, &b2)?
        };
    }
    Ok(h)
}
