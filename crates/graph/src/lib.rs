//! # ugrapher-graph
//!
//! Graph storage and dataset substrate for the uGrapher reproduction.
//!
//! The paper's abstraction traverses graphs as `for dst in V: for edge in
//! dst.get_inedges(): ...` (paper §3.1, Fig. 4), so the central structure
//! here is a [`Graph`] that exposes both in-edge (CSC-like) and out-edge
//! (CSR-like) adjacency with stable edge identifiers.
//!
//! The crate also provides:
//!
//! * [`generate`] — synthetic graph generators that hit a target vertex
//!   count, edge count, degree skew (the paper's "std of nnz") and locality,
//! * [`datasets`] — a catalog reproducing the 15 datasets of paper Table 3
//!   (as synthetic stand-ins with matching statistics; see DESIGN.md §2),
//! * [`stats`] — degree statistics used both for reporting and as features
//!   of the schedule predictor (paper Table 7),
//! * [`reorder`] — locality-improving node renumbering (the paper's Fig. 19
//!   Rabbit-reorder study),
//! * [`partition`] — neighbor grouping as used by GNNAdvisor-style kernels.
//!
//! # Example
//!
//! ```
//! use ugrapher_graph::{Coo, Graph};
//!
//! # fn main() -> Result<(), ugrapher_graph::GraphError> {
//! // A triangle: 0 -> 1 -> 2 -> 0.
//! let coo = Coo::new(3, vec![0, 1, 2], vec![1, 2, 0])?;
//! let g = Graph::from_coo(&coo);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.in_neighbors(2).collect::<Vec<_>>(), vec![(1, 1)]);
//! # Ok(())
//! # }
//! ```

mod coo;
pub mod datasets;
mod error;
pub mod generate;
mod graph;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod sample;
pub mod stats;

pub use coo::Coo;
pub use error::GraphError;
pub use graph::Graph;
pub use stats::DegreeStats;
