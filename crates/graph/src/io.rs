//! Graph I/O: plain edge lists and MatrixMarket coordinate files.
//!
//! The paper's datasets ship as edge lists (SNAP `.txt`) or MatrixMarket
//! `.mtx` files from the network repository. This module reads both, so a
//! user with the real files can run every experiment on them instead of
//! the synthetic stand-ins (`Dataset::build`).

use std::io::{BufRead, BufReader, Read, Write};

use crate::{Coo, Graph, GraphError};

/// Errors produced while parsing graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The parsed edges failed graph validation.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Reads a whitespace-separated edge list (`src dst` per line). Lines
/// starting with `#` or `%` are comments. Vertex ids are 0-based; the
/// vertex count is `max id + 1` unless a larger `min_vertices` is given.
///
/// Duplicate-edge / self-loop policy (shared with
/// [`read_matrix_market`]): both are **preserved**, never deduplicated or
/// dropped. The runtime treats graphs as multigraphs with stable edge
/// ids, so a repeated line becomes a second parallel edge and `v v`
/// becomes a self-loop; collapsing either would silently change
/// aggregation results (a duplicated edge doubles its contribution to a
/// sum). Callers that need simple graphs must deduplicate explicitly.
///
/// # Errors
///
/// Returns [`IoError`] on malformed lines or I/O failure, and
/// [`IoError::Graph`] when an edge references a vertex id at or above the
/// final vertex count (only possible when a caller-supplied bound is
/// involved; with the default `max id + 1` sizing every id is in range).
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<Graph, IoError> {
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let mut next = |name: &str| -> Result<u32, IoError> {
            parts
                .next()
                .ok_or_else(|| IoError::Parse {
                    line: idx + 1,
                    reason: format!("missing {name}"),
                })?
                .parse()
                .map_err(|e| IoError::Parse {
                    line: idx + 1,
                    reason: format!("bad {name}: {e}"),
                })
        };
        let s = next("source")?;
        let d = next("destination")?;
        max_id = max_id.max(s).max(d);
        src.push(s);
        dst.push(d);
    }
    let nv = if src.is_empty() {
        min_vertices
    } else {
        (max_id as usize + 1).max(min_vertices)
    };
    Ok(Graph::from_coo(&Coo::new(nv, src, dst)?))
}

/// Like [`read_edge_list`], but with a **hard** vertex bound: the file
/// claims to describe a graph of exactly `num_vertices` vertices, and any
/// edge endpoint at or beyond that bound is rejected instead of silently
/// growing the graph. Use this when the vertex count comes from a trusted
/// side channel (a dataset catalog, a header) and the edge list is not.
///
/// Duplicates and self-loops follow the policy documented on
/// [`read_edge_list`]: preserved, multigraph semantics.
///
/// # Errors
///
/// Returns [`IoError::Parse`] on malformed lines and
/// [`IoError::Graph`] ([`GraphError::VertexOutOfBounds`]) when an
/// endpoint exceeds the declared bound.
pub fn read_edge_list_bounded<R: Read>(reader: R, num_vertices: usize) -> Result<Graph, IoError> {
    let g = read_edge_list(reader, num_vertices)?;
    if g.num_vertices() > num_vertices {
        // An id >= num_vertices forced the graph to grow; find it again so
        // the error names the offender.
        let coo = g.to_coo();
        let offender = coo
            .iter_edges()
            .flat_map(|(s, d)| [s, d])
            .find(|&v| v as usize >= num_vertices)
            .unwrap_or(num_vertices as u32);
        return Err(IoError::Graph(GraphError::VertexOutOfBounds {
            vertex: offender,
            num_vertices,
        }));
    }
    Ok(g)
}

/// Reads a MatrixMarket coordinate file as a directed graph (entry
/// `(i, j)` becomes edge `j-1 -> i-1`: column index = source, row =
/// destination, matching adjacency-matrix SpMM convention). Values, if
/// present, are ignored.
///
/// Entries are checked against the declared header: a row index above the
/// declared row count (or column above the column count) is a parse
/// error, as is an entry count that disagrees with the declared `nnz`.
/// Duplicate entries and diagonal entries follow the policy documented on
/// [`read_edge_list`]: preserved as parallel edges / self-loops.
///
/// # Errors
///
/// Returns [`IoError`] on malformed headers/lines, out-of-range indices,
/// an entry-count mismatch, or I/O failure.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    // Skip banner + comments, find the size line.
    let (num_rows, num_cols, declared_edges) = loop {
        let Some((idx, line)) = lines.next() else {
            return Err(IoError::Parse {
                line: 0,
                reason: "missing size header".to_owned(),
            });
        };
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let nums: Vec<usize> = t
            .split_whitespace()
            .map(|x| {
                x.parse().map_err(|e| IoError::Parse {
                    line: idx + 1,
                    reason: format!("bad size entry: {e}"),
                })
            })
            .collect::<Result<_, _>>()?;
        if nums.len() < 3 {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: "size line needs rows cols nnz".to_owned(),
            });
        }
        break (nums[0], nums[1], nums[2]);
    };
    let nv = num_rows.max(num_cols);

    // Don't trust the declared count for the allocation: a corrupt header
    // could name petabytes. Cap the reservation; Vec grows past it fine.
    let reserve = declared_edges.min(1 << 24);
    let mut src = Vec::with_capacity(reserve);
    let mut dst = Vec::with_capacity(reserve);
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |v: Option<&str>, name: &str| -> Result<u32, IoError> {
            v.ok_or_else(|| IoError::Parse {
                line: idx + 1,
                reason: format!("missing {name}"),
            })?
            .parse::<u32>()
            .map_err(|e| IoError::Parse {
                line: idx + 1,
                reason: format!("bad {name}: {e}"),
            })
        };
        let row = parse(parts.next(), "row")?;
        let col = parse(parts.next(), "col")?;
        if row == 0 || col == 0 {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: "MatrixMarket indices are 1-based".to_owned(),
            });
        }
        if row as usize > num_rows || col as usize > num_cols {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: format!(
                    "entry ({row}, {col}) outside declared {num_rows}x{num_cols} matrix"
                ),
            });
        }
        src.push(col - 1);
        dst.push(row - 1);
    }
    if src.len() != declared_edges {
        return Err(IoError::Parse {
            line: 0,
            reason: format!(
                "header declares {declared_edges} entries but file has {}",
                src.len()
            ),
        });
    }
    Ok(Graph::from_coo(&Coo::new(nv, src, dst)?))
}

/// Writes a graph as a `src dst` edge list (inverse of
/// [`read_edge_list`]).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    let coo = graph.to_coo();
    writeln!(
        writer,
        "# {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d) in coo.iter_edges() {
        writeln!(writer, "{s} {d}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_random;

    #[test]
    fn edge_list_round_trip() {
        let g = uniform_random(50, 300, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], g.num_vertices()).unwrap();
        assert_eq!(back.to_coo(), g.to_coo());
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n% other comment\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_reports_bad_lines() {
        let err = read_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
        let err = read_edge_list("7\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn min_vertices_pads_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn matrix_market_basic() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    3 3 2\n\
                    1 2 0.5\n\
                    3 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        // Entry (1,2) => edge 1 -> 0; entry (3,1) => edge 0 -> 2.
        assert_eq!(g.in_neighbors(0).next().unwrap().0, 1);
        assert_eq!(g.in_neighbors(2).next().unwrap().0, 0);
    }

    #[test]
    fn matrix_market_rejects_zero_based() {
        let text = "3 3 1\n0 1\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn empty_edge_list_ok() {
        let g = read_edge_list("# nothing\n".as_bytes(), 5).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn bounded_edge_list_rejects_out_of_range_ids() {
        let err = read_edge_list_bounded("0 1\n2 7\n".as_bytes(), 5).unwrap_err();
        match err {
            IoError::Graph(GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            }) => {
                assert_eq!(vertex, 7);
                assert_eq!(num_vertices, 5);
            }
            other => panic!("unexpected error {other}"),
        }
        // In-range ids pass and isolated tail vertices are kept.
        let g = read_edge_list_bounded("0 1\n".as_bytes(), 5).unwrap();
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_preserved() {
        // Policy: multigraph semantics, nothing silently dropped.
        let g = read_edge_list("1 2\n1 2\n3 3\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_degree(3), 1);

        let mm = "3 3 3\n2 1\n2 1\n3 3\n";
        let g = read_matrix_market(mm.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.in_degree(1), 2); // duplicated entry kept twice
        assert_eq!(g.in_degree(2), 1); // diagonal entry becomes a self-loop
    }

    #[test]
    fn matrix_market_rejects_entries_outside_declared_shape() {
        // 4 exceeds the declared 3 rows even though nv = max(3, 3) = 3.
        let err = read_matrix_market("3 3 1\n4 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
        // Rectangular: col bound is checked independently of row bound.
        let err = read_matrix_market("5 2 1\n1 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn matrix_market_rejects_nnz_mismatch() {
        let err = read_matrix_market("3 3 2\n1 1\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { reason, .. } => {
                assert!(reason.contains("declares 2"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn matrix_market_missing_header_is_an_error() {
        let err = read_matrix_market("% only comments\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn loaded_graphs_validate() {
        let g = read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), 0).unwrap();
        g.validate().unwrap();
        let g = read_matrix_market("3 3 2\n1 2\n3 1\n".as_bytes()).unwrap();
        g.validate().unwrap();
    }
}
