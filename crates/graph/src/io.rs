//! Graph I/O: plain edge lists and MatrixMarket coordinate files.
//!
//! The paper's datasets ship as edge lists (SNAP `.txt`) or MatrixMarket
//! `.mtx` files from the network repository. This module reads both, so a
//! user with the real files can run every experiment on them instead of
//! the synthetic stand-ins (`Dataset::build`).

use std::io::{BufRead, BufReader, Read, Write};

use crate::{Coo, Graph, GraphError};

/// Errors produced while parsing graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The parsed edges failed graph validation.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Reads a whitespace-separated edge list (`src dst` per line). Lines
/// starting with `#` or `%` are comments. Vertex ids are 0-based; the
/// vertex count is `max id + 1` unless a larger `min_vertices` is given.
///
/// # Errors
///
/// Returns [`IoError`] on malformed lines or I/O failure.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<Graph, IoError> {
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let mut next = |name: &str| -> Result<u32, IoError> {
            parts
                .next()
                .ok_or_else(|| IoError::Parse {
                    line: idx + 1,
                    reason: format!("missing {name}"),
                })?
                .parse()
                .map_err(|e| IoError::Parse {
                    line: idx + 1,
                    reason: format!("bad {name}: {e}"),
                })
        };
        let s = next("source")?;
        let d = next("destination")?;
        max_id = max_id.max(s).max(d);
        src.push(s);
        dst.push(d);
    }
    let nv = if src.is_empty() {
        min_vertices
    } else {
        (max_id as usize + 1).max(min_vertices)
    };
    Ok(Graph::from_coo(&Coo::new(nv, src, dst)?))
}

/// Reads a MatrixMarket coordinate file as a directed graph (entry
/// `(i, j)` becomes edge `j-1 -> i-1`: column index = source, row =
/// destination, matching adjacency-matrix SpMM convention). Values, if
/// present, are ignored.
///
/// # Errors
///
/// Returns [`IoError`] on malformed headers/lines or I/O failure.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    // Skip banner + comments, find the size line.
    let (nv, declared_edges) = loop {
        let Some((idx, line)) = lines.next() else {
            return Err(IoError::Parse {
                line: 0,
                reason: "missing size header".to_owned(),
            });
        };
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let nums: Vec<usize> = t
            .split_whitespace()
            .map(|x| {
                x.parse().map_err(|e| IoError::Parse {
                    line: idx + 1,
                    reason: format!("bad size entry: {e}"),
                })
            })
            .collect::<Result<_, _>>()?;
        if nums.len() < 3 {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: "size line needs rows cols nnz".to_owned(),
            });
        }
        break (nums[0].max(nums[1]), nums[2]);
    };

    let mut src = Vec::with_capacity(declared_edges);
    let mut dst = Vec::with_capacity(declared_edges);
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |v: Option<&str>, name: &str| -> Result<u32, IoError> {
            v.ok_or_else(|| IoError::Parse {
                line: idx + 1,
                reason: format!("missing {name}"),
            })?
            .parse::<u32>()
            .map_err(|e| IoError::Parse {
                line: idx + 1,
                reason: format!("bad {name}: {e}"),
            })
        };
        let row = parse(parts.next(), "row")?;
        let col = parse(parts.next(), "col")?;
        if row == 0 || col == 0 {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: "MatrixMarket indices are 1-based".to_owned(),
            });
        }
        src.push(col - 1);
        dst.push(row - 1);
    }
    Ok(Graph::from_coo(&Coo::new(nv, src, dst)?))
}

/// Writes a graph as a `src dst` edge list (inverse of
/// [`read_edge_list`]).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    let coo = graph.to_coo();
    writeln!(writer, "# {} vertices, {} edges", graph.num_vertices(), graph.num_edges())?;
    for (s, d) in coo.iter_edges() {
        writeln!(writer, "{s} {d}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_random;

    #[test]
    fn edge_list_round_trip() {
        let g = uniform_random(50, 300, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], g.num_vertices()).unwrap();
        assert_eq!(back.to_coo(), g.to_coo());
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n% other comment\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_reports_bad_lines() {
        let err = read_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
        let err = read_edge_list("7\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn min_vertices_pads_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn matrix_market_basic() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    3 3 2\n\
                    1 2 0.5\n\
                    3 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        // Entry (1,2) => edge 1 -> 0; entry (3,1) => edge 0 -> 2.
        assert_eq!(g.in_neighbors(0).next().unwrap().0, 1);
        assert_eq!(g.in_neighbors(2).next().unwrap().0, 0);
    }

    #[test]
    fn matrix_market_rejects_zero_based() {
        let text = "3 3 1\n0 1\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn empty_edge_list_ok() {
        let g = read_edge_list("# nothing\n".as_bytes(), 5).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }
}
