//! Mini-batch neighbor sampling.
//!
//! The paper's evaluation targets full-graph inference, noting that
//! mini-batch inference "performs sampling preprocessing first, and then
//! executes the graph operator — as such, this falls back to full-graph
//! inference in our case" (§6, *Batchsize*). This module provides that
//! sampling preprocessing: GraphSAGE-style k-hop neighbor sampling that
//! extracts, for a seed set of vertices, the subgraph a mini-batch
//! actually computes on. The resulting [`SampledBatch`] is an ordinary
//! [`Graph`] plus vertex mappings, so every uGrapher operator and schedule
//! applies unchanged.

use ugrapher_util::rng::StdRng;

use crate::{Coo, Graph};

/// Configuration of k-hop neighbor sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleConfig {
    /// Maximum in-neighbors kept per vertex per hop (GraphSAGE's fanout).
    pub fanout: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl SampleConfig {
    /// GraphSAGE's default two-hop fanout (25, 10).
    pub fn sage_default() -> Self {
        Self {
            fanout: vec![25, 10],
            seed: 0x5A9E,
        }
    }
}

/// A sampled mini-batch subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledBatch {
    /// The extracted subgraph, with vertices renumbered to `0..n`.
    pub graph: Graph,
    /// Original vertex id of each subgraph vertex (`local -> global`).
    /// Seeds come first, in their input order.
    pub global_of_local: Vec<u32>,
    /// Number of seed vertices (a prefix of the local id space).
    pub num_seeds: usize,
}

impl SampledBatch {
    /// Local id of a global vertex, if it was sampled.
    pub fn local_of(&self, global: u32) -> Option<u32> {
        self.global_of_local
            .iter()
            .position(|&g| g == global)
            .map(|i| i as u32)
    }
}

/// Samples the k-hop in-neighborhood of `seeds` with per-hop fanouts.
///
/// Edges kept are those traversed during sampling; each vertex retains at
/// most `fanout[h]` in-edges at hop `h` (uniformly chosen when its degree
/// exceeds the fanout). Multi-edges of the input are preserved as
/// candidates.
///
/// # Panics
///
/// Panics if any seed is out of range or `config.fanout` is empty.
pub fn sample_neighbors(graph: &Graph, seeds: &[u32], config: &SampleConfig) -> SampledBatch {
    assert!(
        !config.fanout.is_empty(),
        "fanout must have at least one hop"
    );
    for &s in seeds {
        assert!(
            (s as usize) < graph.num_vertices(),
            "seed {s} out of range for {} vertices",
            graph.num_vertices()
        );
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut local_of_global = vec![u32::MAX; graph.num_vertices()];
    let mut global_of_local: Vec<u32> = Vec::new();
    let intern = |g: u32, table: &mut Vec<u32>, map: &mut Vec<u32>| -> u32 {
        if map[g as usize] == u32::MAX {
            map[g as usize] = table.len() as u32;
            table.push(g);
        }
        map[g as usize]
    };

    for &s in seeds {
        intern(s, &mut global_of_local, &mut local_of_global);
    }

    let mut frontier: Vec<u32> = seeds.to_vec();
    let mut src_out: Vec<u32> = Vec::new();
    let mut dst_out: Vec<u32> = Vec::new();

    for &fanout in &config.fanout {
        let mut next_frontier = Vec::new();
        for &v in &frontier {
            let deg = graph.in_degree(v as usize);
            let keep: Vec<usize> = if deg <= fanout {
                (0..deg).collect()
            } else {
                // Uniform sample without replacement (partial Fisher-Yates
                // over slot offsets).
                let mut idx: Vec<usize> = (0..deg).collect();
                for i in 0..fanout {
                    let j = rng.random_range(i..deg);
                    idx.swap(i, j);
                }
                idx.truncate(fanout);
                idx
            };
            let slots: Vec<(u32, u32)> = graph.in_neighbors(v as usize).collect();
            let v_local = local_of_global[v as usize];
            for k in keep {
                let (u, _eid) = slots[k];
                let was_new = local_of_global[u as usize] == u32::MAX;
                let u_local = intern(u, &mut global_of_local, &mut local_of_global);
                src_out.push(u_local);
                dst_out.push(v_local);
                if was_new {
                    next_frontier.push(u);
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }

    let n = global_of_local.len();
    let coo = Coo::new(n, src_out, dst_out).expect("interned ids are in range");
    SampledBatch {
        graph: Graph::from_coo(&coo),
        global_of_local,
        num_seeds: seeds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{uniform_random, GraphSpec};

    fn config(fanout: Vec<usize>) -> SampleConfig {
        SampleConfig { fanout, seed: 42 }
    }

    #[test]
    fn seeds_occupy_prefix_of_local_ids() {
        let g = uniform_random(200, 1600, 1);
        let seeds = [5u32, 17, 99];
        let batch = sample_neighbors(&g, &seeds, &config(vec![4]));
        assert_eq!(batch.num_seeds, 3);
        assert_eq!(&batch.global_of_local[..3], &seeds);
        assert_eq!(batch.local_of(17), Some(1));
    }

    #[test]
    fn fanout_bounds_in_degree_of_seeds() {
        let g = uniform_random(300, 6000, 2); // mean in-degree 20
        let seeds: Vec<u32> = (0..20).collect();
        let batch = sample_neighbors(&g, &seeds, &config(vec![5]));
        for s in 0..batch.num_seeds {
            assert!(
                batch.graph.in_degree(s) <= 5,
                "seed {s} kept {} in-edges",
                batch.graph.in_degree(s)
            );
        }
    }

    #[test]
    fn sampled_edges_exist_in_original_graph() {
        let g = uniform_random(100, 800, 3);
        let batch = sample_neighbors(&g, &[1, 2, 3], &config(vec![3, 3]));
        let coo = batch.graph.to_coo();
        for (ls, ld) in coo.iter_edges() {
            let gs = batch.global_of_local[ls as usize];
            let gd = batch.global_of_local[ld as usize];
            assert!(
                g.in_neighbors(gd as usize).any(|(u, _)| u == gs),
                "edge {gs}->{gd} not in the original graph"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = uniform_random(150, 1200, 4);
        let a = sample_neighbors(&g, &[0, 1], &config(vec![4, 4]));
        let b = sample_neighbors(&g, &[0, 1], &config(vec![4, 4]));
        assert_eq!(a, b);
    }

    #[test]
    fn low_degree_graphs_keep_all_edges() {
        let g = crate::generate::ring(32);
        let seeds: Vec<u32> = (0..32).collect();
        let batch = sample_neighbors(&g, &seeds, &config(vec![10]));
        assert_eq!(batch.graph.num_edges(), 32);
    }

    #[test]
    fn multi_hop_grows_the_neighborhood() {
        let g = GraphSpec {
            num_vertices: 5000,
            num_edges: 25_000,
            degree_model: crate::generate::DegreeModel::NearRegular,
            locality: 0.0,
            seed: 9,
        }
        .build();
        let one = sample_neighbors(&g, &[7], &config(vec![10]));
        let two = sample_neighbors(&g, &[7], &config(vec![10, 10]));
        assert!(two.graph.num_vertices() > one.graph.num_vertices());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = uniform_random(10, 40, 5);
        let _ = sample_neighbors(&g, &[10], &config(vec![2]));
    }
}
