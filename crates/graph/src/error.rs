use std::error::Error;
use std::fmt;

/// Errors produced when constructing or transforming graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `src` and `dst` arrays of a COO graph have different lengths.
    EdgeArrayMismatch {
        /// Length of the source-vertex array.
        src_len: usize,
        /// Length of the destination-vertex array.
        dst_len: usize,
    },
    /// An edge endpoint referenced a vertex id `>= num_vertices`.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// A permutation was not a bijection over `0..num_vertices`.
    InvalidPermutation {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// An adjacency structure violated a CSR/CSC invariant
    /// (non-monotone offsets, misaligned arrays, broken edge-id
    /// bijection). Produced by [`crate::Graph::validate`].
    InvalidStructure {
        /// Explanation of what was wrong.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EdgeArrayMismatch { src_len, dst_len } => write!(
                f,
                "src array has {src_len} entries but dst array has {dst_len}"
            ),
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "edge endpoint {vertex} out of bounds for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidPermutation { reason } => {
                write!(f, "invalid permutation: {reason}")
            }
            GraphError::InvalidStructure { reason } => {
                write!(f, "invalid adjacency structure: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }
}
