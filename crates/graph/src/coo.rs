use crate::GraphError;

/// A directed graph in coordinate (edge-list) form.
///
/// Edge `e` goes from `src()[e]` to `dst()[e]`; the position `e` is the
/// *edge id* that stays stable through CSR/CSC conversion, so edge embedding
/// tensors (`E[#edges][F]`, paper §2.1) can be indexed consistently from any
/// traversal order.
///
/// # Example
///
/// ```
/// use ugrapher_graph::Coo;
///
/// # fn main() -> Result<(), ugrapher_graph::GraphError> {
/// let coo = Coo::new(4, vec![0, 0, 1], vec![1, 2, 2])?;
/// assert_eq!(coo.num_edges(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo {
    num_vertices: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl Coo {
    /// Creates a COO graph, validating all endpoints.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EdgeArrayMismatch`] if `src.len() != dst.len()`;
    /// * [`GraphError::VertexOutOfBounds`] if any endpoint is
    ///   `>= num_vertices`.
    pub fn new(num_vertices: usize, src: Vec<u32>, dst: Vec<u32>) -> Result<Self, GraphError> {
        if src.len() != dst.len() {
            return Err(GraphError::EdgeArrayMismatch {
                src_len: src.len(),
                dst_len: dst.len(),
            });
        }
        for &v in src.iter().chain(dst.iter()) {
            if v as usize >= num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: v,
                    num_vertices,
                });
            }
        }
        Ok(Self {
            num_vertices,
            src,
            dst,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Source endpoint per edge id.
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination endpoint per edge id.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Iterates over `(src, dst)` pairs in edge-id order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_lengths() {
        let err = Coo::new(3, vec![0, 1], vec![2]).unwrap_err();
        assert_eq!(
            err,
            GraphError::EdgeArrayMismatch {
                src_len: 2,
                dst_len: 1
            }
        );
    }

    #[test]
    fn new_validates_endpoints() {
        let err = Coo::new(2, vec![0, 2], vec![1, 1]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfBounds { vertex: 2, .. }
        ));
    }

    #[test]
    fn iter_edges_preserves_order() {
        let coo = Coo::new(3, vec![0, 1, 2], vec![1, 2, 0]).unwrap();
        let edges: Vec<_> = coo.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let coo = Coo::new(0, vec![], vec![]).unwrap();
        assert_eq!(coo.num_vertices(), 0);
        assert_eq!(coo.num_edges(), 0);
    }
}
