//! Locality-improving node renumbering.
//!
//! Paper §7.4 (Fig. 19) studies graph-data preprocessing — Rabbit node
//! renumbering [Arai et al., IPDPS'16] — and shows uGrapher's scheduling
//! gains are orthogonal to it. Rabbit itself is a hierarchical
//! community-clustering order; this module provides a BFS-based clustering
//! order with the same goal (neighbours get nearby ids, improving cache
//! locality) plus simpler degree orders, all expressed through a validated
//! [`Permutation`].

use crate::{Coo, Graph, GraphError};

/// A bijection over vertex ids: `new_id = perm.new_of_old()[old_id]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<u32>,
}

impl Permutation {
    /// Wraps a mapping from old id to new id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] unless the mapping is a
    /// bijection over `0..n`.
    pub fn new(new_of_old: Vec<u32>) -> Result<Self, GraphError> {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &v in &new_of_old {
            let idx = v as usize;
            if idx >= n {
                return Err(GraphError::InvalidPermutation {
                    reason: format!("target id {v} out of range for {n} vertices"),
                });
            }
            if seen[idx] {
                return Err(GraphError::InvalidPermutation {
                    reason: format!("target id {v} appears twice"),
                });
            }
            seen[idx] = true;
        }
        Ok(Self { new_of_old })
    }

    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as u32).collect(),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether this permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The old→new mapping.
    pub fn new_of_old(&self) -> &[u32] {
        &self.new_of_old
    }

    /// The inverse permutation (new→old becomes old→new).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.new_of_old.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        Self { new_of_old: inv }
    }

    /// Applies the renumbering to a graph, preserving edge ids.
    ///
    /// # Panics
    ///
    /// Panics if `graph.num_vertices() != self.len()`.
    pub fn apply(&self, graph: &Graph) -> Graph {
        assert_eq!(
            graph.num_vertices(),
            self.len(),
            "permutation covers {} vertices but graph has {}",
            self.len(),
            graph.num_vertices()
        );
        let coo = graph.to_coo();
        let src: Vec<u32> = coo
            .src()
            .iter()
            .map(|&v| self.new_of_old[v as usize])
            .collect();
        let dst: Vec<u32> = coo
            .dst()
            .iter()
            .map(|&v| self.new_of_old[v as usize])
            .collect();
        Graph::from_coo(
            &Coo::new(graph.num_vertices(), src, dst).expect("renumbered endpoints stay in range"),
        )
    }
}

/// Orders vertices by descending in-degree (hubs first).
pub fn degree_order(graph: &Graph) -> Permutation {
    let n = graph.num_vertices();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.in_degree(v as usize)));
    let mut new_of_old = vec![0u32; n];
    for (new, &old) in by_degree.iter().enumerate() {
        new_of_old[old as usize] = new as u32;
    }
    Permutation { new_of_old }
}

/// Clustering order in the spirit of Rabbit reordering: repeated BFS from
/// the highest-degree unvisited vertex, assigning consecutive ids within
/// each traversal so community members land in the same cache lines.
pub fn cluster_order(graph: &Graph) -> Permutation {
    let n = graph.num_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];

    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&v| {
        std::cmp::Reverse(graph.in_degree(v as usize) + graph.out_degree(v as usize))
    });

    let mut queue = std::collections::VecDeque::new();
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for (u, _) in graph.in_neighbors(v as usize) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
            for (u, _) in graph.out_neighbors(v as usize) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }

    let mut new_of_old = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new as u32;
    }
    Permutation { new_of_old }
}

/// Mean |src − dst| id distance per edge: a proxy for how cache-friendly the
/// current numbering is (smaller is better).
pub fn edge_locality_score(graph: &Graph) -> f64 {
    if graph.num_edges() == 0 {
        return 0.0;
    }
    let coo = graph.to_coo();
    coo.iter_edges()
        .map(|(s, d)| (s as i64 - d as i64).unsigned_abs() as f64)
        .sum::<f64>()
        / graph.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{DegreeModel, GraphSpec};

    #[test]
    fn permutation_validates_bijection() {
        assert!(Permutation::new(vec![0, 1, 2]).is_ok());
        assert!(Permutation::new(vec![0, 0, 2]).is_err());
        assert!(Permutation::new(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::new(vec![2, 0, 1, 3]).unwrap();
        let inv = p.inverse();
        for old in 0..4usize {
            let new = p.new_of_old()[old] as usize;
            assert_eq!(inv.new_of_old()[new] as usize, old);
        }
    }

    #[test]
    fn apply_preserves_structure() {
        let g = Graph::from_edges(4, vec![0, 1, 2], vec![1, 2, 3]).unwrap();
        let p = Permutation::new(vec![3, 2, 1, 0]).unwrap();
        let h = p.apply(&g);
        assert_eq!(h.num_edges(), 3);
        // old edge 0 -> 1 becomes 3 -> 2
        let ins: Vec<_> = h.in_neighbors(2).collect();
        assert_eq!(ins, vec![(3, 0)]);
    }

    #[test]
    fn apply_preserves_degree_multiset() {
        let g = GraphSpec {
            num_vertices: 100,
            num_edges: 400,
            degree_model: DegreeModel::TargetStd { std: 6.0 },
            locality: 0.0,
            seed: 21,
        }
        .build();
        let p = degree_order(&g);
        let h = p.apply(&g);
        let mut dg: Vec<usize> = (0..100).map(|v| g.in_degree(v)).collect();
        let mut dh: Vec<usize> = (0..100).map(|v| h.in_degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = Graph::from_edges(4, vec![0, 1, 2, 0], vec![3, 3, 3, 1]).unwrap();
        let p = degree_order(&g);
        assert_eq!(p.new_of_old()[3], 0); // vertex 3 has max in-degree
    }

    #[test]
    fn cluster_order_improves_locality_of_shuffled_graph() {
        // A graph with strong community structure whose ids are then
        // scrambled; cluster_order should substantially restore locality.
        let g = GraphSpec {
            num_vertices: 2000,
            num_edges: 10_000,
            degree_model: DegreeModel::NearRegular,
            locality: 0.95,
            seed: 33,
        }
        .build();
        // Scramble ids deterministically.
        let n = g.num_vertices();
        let scramble =
            Permutation::new((0..n as u32).map(|v| v * 1337 % n as u32).collect()).unwrap();
        let scrambled = scramble.apply(&g);
        let reordered = cluster_order(&scrambled).apply(&scrambled);
        let before = edge_locality_score(&scrambled);
        let after = edge_locality_score(&reordered);
        assert!(after < before * 0.7, "before={before} after={after}");
    }

    #[test]
    fn identity_apply_is_noop() {
        let g = Graph::from_edges(3, vec![0, 1], vec![1, 2]).unwrap();
        let h = Permutation::identity(3).apply(&g);
        assert_eq!(g.to_coo(), h.to_coo());
    }
}
