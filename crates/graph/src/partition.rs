//! Neighbor grouping (edge partitioning).
//!
//! GNNAdvisor-style kernels split each vertex's neighbour list into
//! fixed-size groups so that work units have bounded size regardless of
//! degree skew; uGrapher's *V/E grouping* knob (paper §4.2) generalises the
//! same idea. This module produces the group list from a graph's in-edge
//! CSR layout.

use crate::Graph;

/// A contiguous slice of one destination vertex's in-edge slots.
///
/// `start..start + len` indexes into [`Graph::in_src`] / [`Graph::in_eid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborGroup {
    /// The destination vertex whose in-edges this group covers.
    pub dst: u32,
    /// First in-edge slot of the group.
    pub start: usize,
    /// Number of edges in the group (`1..=group_size`).
    pub len: usize,
}

/// Splits every vertex's in-edge list into groups of at most `group_size`.
///
/// Vertices with zero in-degree produce no groups. The concatenation of all
/// groups covers every in-edge slot exactly once, in CSR order.
///
/// # Panics
///
/// Panics if `group_size == 0`.
///
/// # Example
///
/// ```
/// use ugrapher_graph::{partition::neighbor_groups, Graph};
///
/// # fn main() -> Result<(), ugrapher_graph::GraphError> {
/// let g = Graph::from_edges(2, vec![0, 0, 0], vec![1, 1, 1])?;
/// let groups = neighbor_groups(&g, 2);
/// assert_eq!(groups.len(), 2); // 3 in-edges -> groups of 2 and 1
/// assert_eq!(groups[0].len, 2);
/// assert_eq!(groups[1].len, 1);
/// # Ok(())
/// # }
/// ```
pub fn neighbor_groups(graph: &Graph, group_size: usize) -> Vec<NeighborGroup> {
    assert!(group_size > 0, "group_size must be positive");
    let mut groups = Vec::new();
    for dst in 0..graph.num_vertices() {
        let begin = graph.in_ptr()[dst];
        let end = graph.in_ptr()[dst + 1];
        let mut start = begin;
        while start < end {
            let len = (end - start).min(group_size);
            groups.push(NeighborGroup {
                dst: dst as u32,
                start,
                len,
            });
            start += len;
        }
    }
    groups
}

/// The maximum number of groups any single destination vertex contributes —
/// a measure of how well grouping re-balances skewed degrees.
pub fn max_groups_per_vertex(graph: &Graph, group_size: usize) -> usize {
    (0..graph.num_vertices())
        .map(|v| graph.in_degree(v).div_ceil(group_size))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Graph {
        let src: Vec<u32> = (1..n as u32).collect();
        let dst = vec![0u32; n - 1];
        Graph::from_edges(n, src, dst).unwrap()
    }

    #[test]
    fn groups_cover_all_edges_exactly_once() {
        let g = star(10);
        let groups = neighbor_groups(&g, 4);
        let covered: usize = groups.iter().map(|grp| grp.len).sum();
        assert_eq!(covered, g.num_edges());
        // Contiguous coverage in CSR order.
        let mut cursor = 0;
        for grp in &groups {
            assert_eq!(grp.start, cursor);
            cursor += grp.len;
        }
    }

    #[test]
    fn group_size_bounds_respected() {
        let g = star(23);
        for gs in [1usize, 3, 8, 64] {
            for grp in neighbor_groups(&g, gs) {
                assert!(grp.len >= 1 && grp.len <= gs);
            }
        }
    }

    #[test]
    fn grouping_rebalances_star() {
        let g = star(100);
        assert_eq!(max_groups_per_vertex(&g, 99), 1);
        assert_eq!(max_groups_per_vertex(&g, 10), 10);
        assert_eq!(max_groups_per_vertex(&g, 1), 99);
    }

    #[test]
    fn zero_degree_vertices_emit_no_groups() {
        let g = Graph::from_edges(4, vec![0], vec![1]).unwrap();
        let groups = neighbor_groups(&g, 8);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].dst, 1);
    }

    #[test]
    #[should_panic(expected = "group_size must be positive")]
    fn zero_group_size_panics() {
        let g = star(3);
        let _ = neighbor_groups(&g, 0);
    }
}
