//! Degree statistics.
//!
//! The paper characterises datasets by vertex count, edge count and the
//! standard deviation of non-zeros per adjacency-matrix row ("std of nnz",
//! Table 3) — which is the standard deviation of in-degrees. The same three
//! numbers are the graph features of the schedule predictor (Table 7), so
//! this module is shared by reporting and tuning.

use crate::Graph;

/// Summary statistics of a graph's in-degree distribution.
///
/// # Example
///
/// ```
/// use ugrapher_graph::{DegreeStats, Graph};
///
/// # fn main() -> Result<(), ugrapher_graph::GraphError> {
/// let g = Graph::from_edges(3, vec![0, 1, 2, 0], vec![2, 2, 1, 2])?;
/// let s = g.degree_stats();
/// assert_eq!(s.max_in_degree, 3);
/// assert!((s.mean_in_degree - 4.0 / 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Mean in-degree (`#edges / #vertices`).
    pub mean_in_degree: f64,
    /// Population standard deviation of in-degrees — the paper's
    /// "std of nnz".
    pub std_in_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Fraction of vertices with zero in-degree.
    pub zero_in_fraction: f64,
}

impl DegreeStats {
    /// Computes statistics for a graph.
    pub fn from_graph(g: &Graph) -> Self {
        let nv = g.num_vertices();
        if nv == 0 {
            return Self {
                num_vertices: 0,
                num_edges: 0,
                mean_in_degree: 0.0,
                std_in_degree: 0.0,
                max_in_degree: 0,
                zero_in_fraction: 0.0,
            };
        }
        let degrees: Vec<usize> = (0..nv).map(|v| g.in_degree(v)).collect();
        let mean = g.num_edges() as f64 / nv as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / nv as f64;
        Self {
            num_vertices: nv,
            num_edges: g.num_edges(),
            mean_in_degree: mean,
            std_in_degree: var.sqrt(),
            max_in_degree: degrees.iter().copied().max().unwrap_or(0),
            zero_in_fraction: degrees.iter().filter(|&&d| d == 0).count() as f64 / nv as f64,
        }
    }

    /// Coefficient of variation (`std / mean`); a scale-free imbalance
    /// measure. Returns 0 for an empty graph.
    pub fn imbalance(&self) -> f64 {
        if self.mean_in_degree == 0.0 {
            0.0
        } else {
            self.std_in_degree / self.mean_in_degree
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;

    #[test]
    fn regular_graph_has_zero_std() {
        // Ring: every vertex has in-degree exactly 1.
        let n = 8u32;
        let src: Vec<u32> = (0..n).collect();
        let dst: Vec<u32> = (0..n).map(|v| (v + 1) % n).collect();
        let g = Graph::from_edges(n as usize, src, dst).unwrap();
        let s = g.degree_stats();
        assert_eq!(s.std_in_degree, 0.0);
        assert_eq!(s.mean_in_degree, 1.0);
        assert_eq!(s.zero_in_fraction, 0.0);
        assert_eq!(s.imbalance(), 0.0);
    }

    #[test]
    fn star_graph_is_imbalanced() {
        // All edges point at vertex 0.
        let n = 10usize;
        let src: Vec<u32> = (1..n as u32).collect();
        let dst = vec![0u32; n - 1];
        let g = Graph::from_edges(n, src, dst).unwrap();
        let s = g.degree_stats();
        assert_eq!(s.max_in_degree, n - 1);
        assert!(s.imbalance() > 2.0);
        assert!((s.zero_in_fraction - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::from_edges(0, vec![], vec![]).unwrap();
        let s = g.degree_stats();
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.std_in_degree, 0.0);
    }
}
