use crate::{Coo, DegreeStats, GraphError};

/// A directed graph with both in-edge (CSC-like) and out-edge (CSR-like)
/// adjacency, preserving stable edge ids.
///
/// This is the runtime representation used by every executor in the
/// reproduction. The in-edge view backs the paper's canonical loop nest
/// (`for dst in V: for edge in dst.get_inedges()`, Fig. 4); the out-edge
/// view backs push-style baselines.
///
/// # Example
///
/// ```
/// use ugrapher_graph::{Coo, Graph};
///
/// # fn main() -> Result<(), ugrapher_graph::GraphError> {
/// let coo = Coo::new(3, vec![0, 0, 1], vec![1, 2, 2])?;
/// let g = Graph::from_coo(&coo);
/// // Vertex 2 has two incoming edges: from 0 (edge id 1) and 1 (edge id 2).
/// let ins: Vec<_> = g.in_neighbors(2).collect();
/// assert_eq!(ins, vec![(0, 1), (1, 2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    num_edges: usize,
    /// In-edge offsets per destination vertex: length `num_vertices + 1`.
    in_ptr: Vec<usize>,
    /// Source vertex of each in-edge slot.
    in_src: Vec<u32>,
    /// Stable edge id of each in-edge slot.
    in_eid: Vec<u32>,
    /// Out-edge offsets per source vertex: length `num_vertices + 1`.
    out_ptr: Vec<usize>,
    /// Destination vertex of each out-edge slot.
    out_dst: Vec<u32>,
    /// Stable edge id of each out-edge slot.
    out_eid: Vec<u32>,
}

impl Graph {
    /// Builds adjacency from a COO edge list. Edge ids are the COO positions.
    pub fn from_coo(coo: &Coo) -> Self {
        let nv = coo.num_vertices();
        let ne = coo.num_edges();

        let (in_ptr, in_src, in_eid) = bucket_by(nv, coo.dst(), coo.src());
        let (out_ptr, out_dst, out_eid) = bucket_by(nv, coo.src(), coo.dst());

        Self {
            num_vertices: nv,
            num_edges: ne,
            in_ptr,
            in_src,
            in_eid,
            out_ptr,
            out_dst,
            out_eid,
        }
    }

    /// Convenience constructor from raw edge arrays.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Coo::new`].
    pub fn from_edges(
        num_vertices: usize,
        src: Vec<u32>,
        dst: Vec<u32>,
    ) -> Result<Self, GraphError> {
        Ok(Self::from_coo(&Coo::new(num_vertices, src, dst)?))
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// In-degree of vertex `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_ptr[v + 1] - self.in_ptr[v]
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_ptr[v + 1] - self.out_ptr[v]
    }

    /// Iterates over `(src, edge_id)` for the in-edges of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst >= num_vertices()`.
    pub fn in_neighbors(&self, dst: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.in_ptr[dst]..self.in_ptr[dst + 1];
        self.in_src[range.clone()]
            .iter()
            .copied()
            .zip(self.in_eid[range].iter().copied())
    }

    /// Iterates over `(dst, edge_id)` for the out-edges of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src >= num_vertices()`.
    pub fn out_neighbors(&self, src: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.out_ptr[src]..self.out_ptr[src + 1];
        self.out_dst[range.clone()]
            .iter()
            .copied()
            .zip(self.out_eid[range].iter().copied())
    }

    /// The in-edge offset array (`num_vertices + 1` entries).
    pub fn in_ptr(&self) -> &[usize] {
        &self.in_ptr
    }

    /// Source vertex per in-edge slot (aligned with [`Graph::in_eid`]).
    pub fn in_src(&self) -> &[u32] {
        &self.in_src
    }

    /// Stable edge id per in-edge slot.
    pub fn in_eid(&self) -> &[u32] {
        &self.in_eid
    }

    /// The out-edge offset array (`num_vertices + 1` entries).
    pub fn out_ptr(&self) -> &[usize] {
        &self.out_ptr
    }

    /// Destination vertex per out-edge slot (aligned with [`Graph::out_eid`]).
    pub fn out_dst(&self) -> &[u32] {
        &self.out_dst
    }

    /// Stable edge id per out-edge slot.
    pub fn out_eid(&self) -> &[u32] {
        &self.out_eid
    }

    /// Reconstructs `(src, dst)` per edge id, inverting the CSR build.
    pub fn to_coo(&self) -> Coo {
        let mut src = vec![0u32; self.num_edges];
        let mut dst = vec![0u32; self.num_edges];
        for d in 0..self.num_vertices {
            for (s, e) in self.in_neighbors(d) {
                src[e as usize] = s;
                dst[e as usize] = d as u32;
            }
        }
        Coo::new(self.num_vertices, src, dst).expect("internal adjacency is always valid")
    }

    /// In-degree statistics ("std of nnz" in paper Table 3).
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::from_graph(self)
    }

    /// A 64-bit fingerprint of the graph's structure: dimensions, in-edge
    /// offsets, sources, and edge ids (FNV-1a over the raw arrays).
    ///
    /// Two graphs with the same fingerprint have, up to hash collision,
    /// identical adjacency *and* identical edge-id assignment — exactly the
    /// inputs a compiled kernel plan depends on — so plan caches key on
    /// this value and a graph mutation (added/removed edge, rewired
    /// endpoint, renumbered edge ids) changes the key. The out-edge view is
    /// derived from the same edge set and does not need to be hashed.
    ///
    /// Cost is one pass over `V + E`; callers that look up repeatedly
    /// should compute it once per graph version (see
    /// `ugrapher_core::api::GraphTensor`).
    pub fn structural_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.num_vertices as u64);
        eat(self.num_edges as u64);
        for &p in &self.in_ptr {
            eat(p as u64);
        }
        for (&s, &e) in self.in_src.iter().zip(&self.in_eid) {
            eat(u64::from(s) << 32 | u64::from(e));
        }
        h
    }

    /// Checks every CSR/CSC invariant the executors rely on.
    ///
    /// [`Graph::from_coo`] always produces a valid structure, but graphs
    /// can also arrive from files, caches or future zero-copy paths, and
    /// every executor indexes the arrays unchecked in its hot loop. The
    /// invariants:
    ///
    /// * both offset arrays have `num_vertices + 1` entries, start at 0,
    ///   end at `num_edges`, and are monotone non-decreasing;
    /// * the slot arrays (`in_src`/`in_eid`, `out_dst`/`out_eid`) all have
    ///   `num_edges` entries;
    /// * every stored vertex id is `< num_vertices`;
    /// * each view's edge ids are a bijection over `0..num_edges`, and the
    ///   two views describe the same edge set: the edge `e = (s, d)` seen
    ///   from `d`'s in-view is exactly the edge `e` seen from `s`'s
    ///   out-view.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidStructure`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        let fail = |reason: String| Err(GraphError::InvalidStructure { reason });
        let nv = self.num_vertices;
        let ne = self.num_edges;

        for (name, ptr) in [("in_ptr", &self.in_ptr), ("out_ptr", &self.out_ptr)] {
            if ptr.len() != nv + 1 {
                return fail(format!(
                    "{name} has {} entries, expected {}",
                    ptr.len(),
                    nv + 1
                ));
            }
            if ptr[0] != 0 {
                return fail(format!("{name}[0] = {}, expected 0", ptr[0]));
            }
            if ptr[nv] != ne {
                return fail(format!("{name}[{nv}] = {}, expected {ne} edges", ptr[nv]));
            }
            if let Some(v) = (0..nv).find(|&v| ptr[v] > ptr[v + 1]) {
                return fail(format!(
                    "{name} decreases at vertex {v}: {} > {}",
                    ptr[v],
                    ptr[v + 1]
                ));
            }
        }

        for (name, arr) in [
            ("in_src", &self.in_src),
            ("in_eid", &self.in_eid),
            ("out_dst", &self.out_dst),
            ("out_eid", &self.out_eid),
        ] {
            if arr.len() != ne {
                return fail(format!("{name} has {} entries, expected {ne}", arr.len()));
            }
        }
        for (name, arr) in [("in_src", &self.in_src), ("out_dst", &self.out_dst)] {
            if let Some(&v) = arr.iter().find(|&&v| v as usize >= nv) {
                return fail(format!("{name} references vertex {v} >= {nv}"));
            }
        }

        // Edge-id bijection per view, plus cross-view agreement: recover
        // (src, dst) per edge id from each view and compare.
        let mut by_in: Vec<Option<(u32, u32)>> = vec![None; ne];
        for d in 0..nv {
            for slot in self.in_ptr[d]..self.in_ptr[d + 1] {
                let e = self.in_eid[slot] as usize;
                if e >= ne {
                    return fail(format!("in_eid contains id {e} >= {ne}"));
                }
                if by_in[e].is_some() {
                    return fail(format!("edge id {e} appears twice in the in-view"));
                }
                by_in[e] = Some((self.in_src[slot], d as u32));
            }
        }
        let mut by_out: Vec<Option<(u32, u32)>> = vec![None; ne];
        for s in 0..nv {
            for slot in self.out_ptr[s]..self.out_ptr[s + 1] {
                let e = self.out_eid[slot] as usize;
                if e >= ne {
                    return fail(format!("out_eid contains id {e} >= {ne}"));
                }
                if by_out[e].is_some() {
                    return fail(format!("edge id {e} appears twice in the out-view"));
                }
                by_out[e] = Some((s as u32, self.out_dst[slot]));
            }
        }
        for e in 0..ne {
            match (by_in[e], by_out[e]) {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => {
                    return fail(format!(
                        "edge id {e} is {:?} in the in-view but {:?} in the out-view",
                        a, b
                    ))
                }
                // Lengths and per-view uniqueness already established both
                // views cover all ne ids; missing cannot happen here, but
                // keep the arm total rather than panic.
                _ => return fail(format!("edge id {e} missing from a view")),
            }
        }
        Ok(())
    }
}

/// Buckets edges by `key[e]`, producing `(ptr, other, eid)` CSR arrays.
fn bucket_by(nv: usize, key: &[u32], other: &[u32]) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
    let ne = key.len();
    let mut ptr = vec![0usize; nv + 1];
    for &k in key {
        ptr[k as usize + 1] += 1;
    }
    for i in 0..nv {
        ptr[i + 1] += ptr[i];
    }
    let mut cursor = ptr[..nv].to_vec();
    let mut out_other = vec![0u32; ne];
    let mut out_eid = vec![0u32; ne];
    for e in 0..ne {
        let k = key[e] as usize;
        let slot = cursor[k];
        cursor[k] += 1;
        out_other[slot] = other[e];
        out_eid[slot] = e as u32;
    }
    (ptr, out_other, out_eid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(4, vec![0, 0, 1, 2], vec![1, 2, 3, 3]).unwrap()
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn in_neighbors_carry_edge_ids() {
        let g = diamond();
        let ins: Vec<_> = g.in_neighbors(3).collect();
        assert_eq!(ins, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn out_neighbors_carry_edge_ids() {
        let g = diamond();
        let outs: Vec<_> = g.out_neighbors(0).collect();
        assert_eq!(outs, vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn coo_round_trip() {
        let coo = Coo::new(5, vec![4, 0, 2, 2, 1], vec![0, 3, 1, 1, 4]).unwrap();
        let g = Graph::from_coo(&coo);
        assert_eq!(g.to_coo(), coo);
    }

    #[test]
    fn self_loops_and_multi_edges_allowed() {
        let g = Graph::from_edges(2, vec![0, 0, 1], vec![0, 1, 1]).unwrap();
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.in_degree(1), 2);
        let ins: Vec<_> = g.in_neighbors(1).collect();
        assert_eq!(ins, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, vec![], vec![]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(10, vec![0], vec![9]).unwrap();
        for v in 1..9 {
            assert_eq!(g.in_degree(v), 0);
            assert_eq!(g.out_degree(v), 0);
        }
    }

    #[test]
    fn constructed_graphs_validate() {
        for g in [
            diamond(),
            Graph::from_edges(0, vec![], vec![]).unwrap(),
            Graph::from_edges(2, vec![0, 0, 1], vec![0, 1, 1]).unwrap(),
            Graph::from_edges(10, vec![0], vec![9]).unwrap(),
        ] {
            g.validate().unwrap();
        }
    }

    #[test]
    fn validate_catches_corrupted_structures() {
        let assert_invalid = |g: &Graph, what: &str| {
            assert!(
                matches!(g.validate(), Err(GraphError::InvalidStructure { .. })),
                "{what} not caught"
            );
        };

        let mut g = diamond();
        g.in_ptr[1] = 5; // exceeds the next offset AND the edge count
        assert_invalid(&g, "non-monotone in_ptr");

        let mut g = diamond();
        g.in_ptr.pop();
        assert_invalid(&g, "short in_ptr");

        let mut g = diamond();
        *g.out_ptr.last_mut().unwrap() = 3;
        assert_invalid(&g, "out_ptr not ending at num_edges");

        let mut g = diamond();
        g.in_src[0] = 99;
        assert_invalid(&g, "out-of-bounds in_src");

        let mut g = diamond();
        g.in_eid[0] = g.in_eid[1];
        assert_invalid(&g, "duplicate in-view edge id");

        let mut g = diamond();
        g.out_eid[0] = 77;
        assert_invalid(&g, "out-of-range out_eid");

        let mut g = diamond();
        g.in_src.truncate(2);
        assert_invalid(&g, "short in_src");

        // Both views self-consistent but disagreeing on an edge's endpoints:
        // in_src [0, 0, 1, 2] becomes [0, 1, 0, 2], so edge 1 reads 1 -> 2
        // in the in-view while the out-view still says 0 -> 2.
        let mut g = diamond();
        g.in_src.swap(1, 2);
        assert_invalid(&g, "in/out views describing different edges");
    }

    #[test]
    fn structural_fingerprint_tracks_structure() {
        let g = diamond();
        // Deterministic per structure: an independent rebuild agrees.
        assert_eq!(
            g.structural_fingerprint(),
            Graph::from_coo(&g.to_coo()).structural_fingerprint()
        );
        // Changed nnz at the same vertex count must change the key.
        let coo = g.to_coo();
        let mut src = coo.src().to_vec();
        let mut dst = coo.dst().to_vec();
        src.pop();
        dst.pop();
        let smaller = Graph::from_coo(&Coo::new(coo.num_vertices(), src, dst).unwrap());
        assert_eq!(smaller.num_vertices(), g.num_vertices());
        assert_ne!(g.structural_fingerprint(), smaller.structural_fingerprint());
        // Reordering the edge list renumbers edge ids: also a new key.
        let mut src = coo.src().to_vec();
        let mut dst = coo.dst().to_vec();
        src.swap(0, 1);
        dst.swap(0, 1);
        let renumbered = Graph::from_coo(&Coo::new(coo.num_vertices(), src, dst).unwrap());
        if renumbered != g {
            assert_ne!(
                g.structural_fingerprint(),
                renumbered.structural_fingerprint()
            );
        }
    }
}
