//! The 15-dataset catalog of paper Table 3.
//!
//! Each entry reproduces the published statistics — vertex count, edge
//! count, std of nnz (in-degree standard deviation), feature dimension and
//! class count — as a synthetic generator target. The paper's predictor
//! (Table 7) and its analysis (§2.1) treat exactly these statistics as the
//! behaviour-determining properties of a dataset, which is what justifies
//! the synthetic substitution (see DESIGN.md §2).

use crate::generate::{DegreeModel, GraphSpec};
use crate::Graph;

/// How much of the full-size dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Paper-size graphs (millions of edges for the largest). Used by the
    /// benchmark harness.
    Full,
    /// Vertices and edges multiplied by the given ratio (clamped to at least
    /// 32 vertices).
    Ratio(f64),
    /// A fixed small size (≈2k edges) for fast unit/integration tests.
    Tiny,
}

impl Scale {
    fn apply(self, nv: usize, ne: usize) -> (usize, usize) {
        match self {
            Scale::Full => (nv, ne),
            Scale::Ratio(r) => {
                let nv2 = ((nv as f64 * r) as usize).max(32);
                let ne2 = ((ne as f64 * r) as usize).max(nv2);
                (nv2, ne2)
            }
            Scale::Tiny => {
                let r = (2000.0 / ne as f64).min(1.0);
                let nv2 = ((nv as f64 * r) as usize).clamp(32, 1024);
                let ne2 = ((ne as f64 * r) as usize).max(nv2);
                (nv2, ne2)
            }
        }
    }
}

/// One row of paper Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Full dataset name as printed in the paper.
    pub name: &'static str,
    /// The paper's two-letter abbreviation (e.g. `"CO"` for cora).
    pub abbrev: &'static str,
    /// `#Vertex` column.
    pub num_vertices: usize,
    /// `#Edge` column.
    pub num_edges: usize,
    /// `std of nnz` column (in-degree standard deviation).
    pub std_nnz: f64,
    /// `#Feature` column (input feature dimension).
    pub feature_dim: usize,
    /// `#Class` column.
    pub num_classes: usize,
    /// Cluster-locality knob for the generator (not in Table 3; citation and
    /// biochemistry graphs are clustered, social graphs less so).
    pub locality: f64,
}

impl DatasetInfo {
    /// The generator spec for this dataset at the given scale.
    pub fn spec(&self, scale: Scale) -> GraphSpec {
        let (nv, ne) = scale.apply(self.num_vertices, self.num_edges);
        GraphSpec {
            num_vertices: nv,
            num_edges: ne,
            degree_model: DegreeModel::TargetStd { std: self.std_nnz },
            locality: self.locality,
            // Stable per-dataset seed so every experiment sees the same graph.
            seed: seed_from_name(self.name),
        }
    }

    /// Generates the graph at the given scale.
    pub fn build(&self, scale: Scale) -> Graph {
        self.spec(scale).build()
    }

    /// Whether the paper treats this dataset as degree-imbalanced
    /// (used in the Fig. 3 analysis: AR and SB are the imbalance examples).
    pub fn is_imbalanced(&self) -> bool {
        self.std_nnz / (self.num_edges as f64 / self.num_vertices as f64) > 1.0
    }
}

/// FNV-1a so dataset seeds are stable across runs and platforms.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full 15-dataset catalog of paper Table 3, in table order.
pub fn catalog() -> Vec<DatasetInfo> {
    vec![
        DatasetInfo {
            name: "cora",
            abbrev: "CO",
            num_vertices: 2708,
            num_edges: 10556,
            std_nnz: 5.23,
            feature_dim: 1433,
            num_classes: 7,
            locality: 0.6,
        },
        DatasetInfo {
            name: "citeseer",
            abbrev: "CI",
            num_vertices: 3327,
            num_edges: 9228,
            std_nnz: 3.38,
            feature_dim: 3703,
            num_classes: 6,
            locality: 0.6,
        },
        DatasetInfo {
            name: "pubmed",
            abbrev: "PU",
            num_vertices: 19717,
            num_edges: 99203,
            std_nnz: 7.82,
            feature_dim: 500,
            num_classes: 3,
            locality: 0.6,
        },
        DatasetInfo {
            name: "PROTEINS_full",
            abbrev: "PR",
            num_vertices: 43466,
            num_edges: 162088,
            std_nnz: 1.15,
            feature_dim: 29,
            num_classes: 2,
            locality: 0.8,
        },
        DatasetInfo {
            name: "artist",
            abbrev: "AR",
            num_vertices: 50515,
            num_edges: 1638396,
            std_nnz: 63.47,
            feature_dim: 100,
            num_classes: 12,
            locality: 0.3,
        },
        DatasetInfo {
            name: "ppi",
            abbrev: "PP",
            num_vertices: 56944,
            num_edges: 818716,
            std_nnz: 23.29,
            feature_dim: 50,
            num_classes: 121,
            locality: 0.4,
        },
        DatasetInfo {
            name: "soc-BlogCatalog",
            abbrev: "SB",
            num_vertices: 88784,
            num_edges: 2093195,
            std_nnz: 206.81,
            feature_dim: 128,
            num_classes: 39,
            locality: 0.2,
        },
        DatasetInfo {
            name: "com-amazon",
            abbrev: "CA",
            num_vertices: 334863,
            num_edges: 1851744,
            std_nnz: 5.76,
            feature_dim: 96,
            num_classes: 22,
            locality: 0.5,
        },
        DatasetInfo {
            name: "DD",
            abbrev: "DD",
            num_vertices: 334925,
            num_edges: 1686092,
            std_nnz: 1.69,
            feature_dim: 89,
            num_classes: 2,
            locality: 0.8,
        },
        DatasetInfo {
            name: "amazon0601",
            abbrev: "AM06",
            num_vertices: 403394,
            num_edges: 3387388,
            std_nnz: 15.28,
            feature_dim: 96,
            num_classes: 22,
            locality: 0.5,
        },
        DatasetInfo {
            name: "amazon0505",
            abbrev: "AM05",
            num_vertices: 410236,
            num_edges: 4878874,
            std_nnz: 15.05,
            feature_dim: 96,
            num_classes: 22,
            locality: 0.5,
        },
        DatasetInfo {
            name: "TWITTER-Partial",
            abbrev: "TW",
            num_vertices: 580768,
            num_edges: 1435116,
            std_nnz: 1.52,
            feature_dim: 1323,
            num_classes: 2,
            locality: 0.4,
        },
        DatasetInfo {
            name: "Yeast",
            abbrev: "YE",
            num_vertices: 1710902,
            num_edges: 3636546,
            std_nnz: 0.75,
            feature_dim: 74,
            num_classes: 2,
            locality: 0.8,
        },
        DatasetInfo {
            name: "SW-620H",
            abbrev: "SW",
            num_vertices: 1888584,
            num_edges: 3944206,
            std_nnz: 1.16,
            feature_dim: 66,
            num_classes: 2,
            locality: 0.8,
        },
        DatasetInfo {
            name: "OVCAR-8H",
            abbrev: "OV",
            num_vertices: 1889542,
            num_edges: 3946402,
            std_nnz: 1.16,
            feature_dim: 66,
            num_classes: 2,
            locality: 0.8,
        },
    ]
}

/// Looks a dataset up by its paper abbreviation (`"CO"`, `"SB"`, ...).
pub fn by_abbrev(abbrev: &str) -> Option<DatasetInfo> {
    catalog().into_iter().find(|d| d.abbrev == abbrev)
}

/// The dataset subsets used in the paper's Fig. 3 analysis.
pub mod groups {
    /// Imbalanced graphs (high std of nnz): artist, soc-BlogCatalog.
    pub const IMBALANCED: [&str; 2] = ["AR", "SB"];
    /// Balanced graphs: PROTEINS_full, DD.
    pub const BALANCED: [&str; 2] = ["PR", "DD"];
    /// Small graphs: cora, citeseer.
    pub const SMALL: [&str; 2] = ["CO", "CI"];
    /// Large graphs: SW-620H, OVCAR-8H.
    pub const LARGE: [&str; 2] = ["SW", "OV"];
    /// The nine datasets the evaluation heatmaps iterate over (Table 9).
    pub const EVAL_NINE: [&str; 9] = ["CO", "CI", "PR", "AR", "SB", "DD", "TW", "YE", "OV"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fifteen_entries() {
        assert_eq!(catalog().len(), 15);
    }

    #[test]
    fn abbrevs_are_unique() {
        let cat = catalog();
        let mut ab: Vec<_> = cat.iter().map(|d| d.abbrev).collect();
        ab.sort_unstable();
        ab.dedup();
        assert_eq!(ab.len(), 15);
    }

    #[test]
    fn by_abbrev_finds_known_and_rejects_unknown() {
        assert_eq!(by_abbrev("CO").unwrap().name, "cora");
        assert_eq!(by_abbrev("OV").unwrap().num_vertices, 1889542);
        assert!(by_abbrev("XX").is_none());
    }

    #[test]
    fn tiny_scale_builds_quickly_and_preserves_shape_class() {
        for d in catalog() {
            let g = d.build(Scale::Tiny);
            assert!(
                g.num_edges() <= 6000,
                "{} too large: {}",
                d.name,
                g.num_edges()
            );
            assert!(g.num_vertices() >= 32);
            assert!(g.num_edges() >= g.num_vertices());
        }
    }

    #[test]
    fn imbalance_classification_matches_paper_groups() {
        assert!(by_abbrev("AR").unwrap().is_imbalanced());
        assert!(by_abbrev("SB").unwrap().is_imbalanced());
        assert!(!by_abbrev("PR").unwrap().is_imbalanced());
        assert!(!by_abbrev("DD").unwrap().is_imbalanced());
    }

    #[test]
    fn ratio_scale_shrinks_counts() {
        let d = by_abbrev("PU").unwrap();
        let g = d.build(Scale::Ratio(0.1));
        assert!(g.num_vertices() < d.num_vertices / 5);
        assert!(g.num_edges() < d.num_edges / 5);
    }

    #[test]
    fn full_scale_spec_matches_table3() {
        let d = by_abbrev("SB").unwrap();
        let spec = d.spec(Scale::Full);
        assert_eq!(spec.num_vertices, 88784);
        assert_eq!(spec.num_edges, 2093195);
    }

    #[test]
    fn dataset_seeds_are_stable() {
        let a = by_abbrev("CO").unwrap().spec(Scale::Tiny);
        let b = by_abbrev("CO").unwrap().spec(Scale::Tiny);
        assert_eq!(a.seed, b.seed);
        let c = by_abbrev("CI").unwrap().spec(Scale::Tiny);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn groups_reference_real_abbrevs() {
        for a in groups::IMBALANCED
            .iter()
            .chain(&groups::BALANCED)
            .chain(&groups::SMALL)
            .chain(&groups::LARGE)
            .chain(&groups::EVAL_NINE)
        {
            assert!(by_abbrev(a).is_some(), "unknown abbrev {a}");
        }
    }

    #[test]
    fn generated_std_tracks_table3_at_moderate_scale() {
        // artist is strongly skewed; a 10% sample should still be far more
        // skewed than PROTEINS at the same scale.
        let ar = by_abbrev("AR").unwrap().build(Scale::Ratio(0.05));
        let pr = by_abbrev("PR").unwrap().build(Scale::Ratio(0.05));
        assert!(ar.degree_stats().imbalance() > 3.0 * pr.degree_stats().imbalance());
    }
}
