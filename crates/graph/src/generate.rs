//! Synthetic graph generators.
//!
//! The reproduction has no access to the paper's real datasets, so it
//! generates graphs that match the statistics the paper shows actually
//! matter: vertex count, edge count, degree skew ("std of nnz", Table 3) and
//! cluster locality (§1, §2.1). The schedule predictor of paper §5.4 uses
//! only `#Vertex`, `#Edge` and `std_nnz` as graph features (Table 7), which
//! is precisely what these generators control.
//!
//! All generators are deterministic given the [`GraphSpec::seed`].

use ugrapher_util::rng::StdRng;

use crate::{Coo, Graph};

/// The in-degree distribution of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegreeModel {
    /// Every vertex has (nearly) the same in-degree — models the balanced
    /// biochemistry graphs (Yeast, DD, PROTEINS_full; std of nnz ≈ 1).
    NearRegular,
    /// Lognormal in-degrees with the given standard deviation (mean is
    /// implied by `#edges / #vertices`) — used to hit a Table 3
    /// `std of nnz` target directly.
    TargetStd {
        /// Desired population standard deviation of in-degrees.
        std: f64,
    },
    /// Power-law (Zipf-like) in-degrees with exponent `alpha` — models
    /// heavily skewed social graphs.
    PowerLaw {
        /// Zipf exponent (larger = more skew), typically 1.5–2.5.
        alpha: f64,
    },
}

/// A recipe for one synthetic graph.
///
/// # Example
///
/// ```
/// use ugrapher_graph::generate::{DegreeModel, GraphSpec};
///
/// let g = GraphSpec {
///     num_vertices: 1000,
///     num_edges: 5000,
///     degree_model: DegreeModel::TargetStd { std: 8.0 },
///     locality: 0.5,
///     seed: 42,
/// }
/// .build();
/// assert_eq!(g.num_vertices(), 1000);
/// assert_eq!(g.num_edges(), 5000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSpec {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges (exact in the generated graph).
    pub num_edges: usize,
    /// In-degree distribution.
    pub degree_model: DegreeModel,
    /// Probability in `[0, 1]` that an edge's source is drawn from a local
    /// index window around its destination (models community structure /
    /// cluster locality).
    pub locality: f64,
    /// RNG seed; the same spec always generates the same graph.
    pub seed: u64,
}

impl GraphSpec {
    /// Generates the graph described by this spec.
    ///
    /// # Panics
    ///
    /// Panics if `locality` is outside `[0, 1]`.
    pub fn build(&self) -> Graph {
        assert!(
            (0.0..=1.0).contains(&self.locality),
            "locality must be in [0, 1], got {}",
            self.locality
        );
        let nv = self.num_vertices;
        let ne = self.num_edges;
        if nv == 0 || ne == 0 {
            return Graph::from_edges(nv, vec![], vec![]).expect("empty edge list is valid");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        let weights = self.degree_weights(&mut rng);
        let degrees = apportion(&weights, ne);

        // Local window half-width: small communities relative to graph size.
        let window = ((nv as f64).sqrt() as usize).clamp(4, 4096);

        let mut src = Vec::with_capacity(ne);
        let mut dst = Vec::with_capacity(ne);
        for (d, &deg) in degrees.iter().enumerate() {
            for _ in 0..deg {
                let s = if rng.random::<f64>() < self.locality {
                    let lo = d.saturating_sub(window);
                    let hi = (d + window).min(nv - 1);
                    rng.random_range(lo..=hi)
                } else {
                    rng.random_range(0..nv)
                };
                src.push(s as u32);
                dst.push(d as u32);
            }
        }
        // Shuffle edge ids so edge-embedding layout does not trivially match
        // destination order (real datasets arrive in arbitrary edge order).
        let mut perm: Vec<usize> = (0..ne).collect();
        for i in (1..ne).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let src: Vec<u32> = perm.iter().map(|&i| src[i]).collect();
        let dst: Vec<u32> = perm.iter().map(|&i| dst[i]).collect();

        Graph::from_coo(&Coo::new(nv, src, dst).expect("generated endpoints are in range"))
    }

    /// Raw (unnormalized) per-vertex in-degree weights.
    fn degree_weights(&self, rng: &mut StdRng) -> Vec<f64> {
        let nv = self.num_vertices;
        let mean = self.num_edges as f64 / nv as f64;
        match self.degree_model {
            DegreeModel::NearRegular => vec![1.0; nv],
            DegreeModel::TargetStd { std } => {
                if std <= f64::EPSILON {
                    return vec![1.0; nv];
                }
                // Lognormal with E[X] = mean, SD[X] = std:
                //   sigma^2 = ln(1 + (std/mean)^2),  mu = ln(mean) - sigma^2/2
                let ratio = std / mean;
                let sigma2 = (1.0 + ratio * ratio).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                let sigma = sigma2.sqrt();
                (0..nv)
                    .map(|_| (mu + sigma * standard_normal(rng)).exp())
                    .collect()
            }
            DegreeModel::PowerLaw { alpha } => {
                let mut w: Vec<f64> = (0..nv).map(|v| ((v + 1) as f64).powf(-alpha)).collect();
                // Shuffle so hub vertices are not all at low indices.
                for i in (1..nv).rev() {
                    let j = rng.random_range(0..=i);
                    w.swap(i, j);
                }
                w
            }
        }
    }
}

/// Samples a standard normal via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Converts positive weights into integer degrees summing exactly to
/// `total`, using largest-remainder apportionment.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        let mut out = vec![0usize; weights.len()];
        if !out.is_empty() {
            out[0] = total;
        }
        return out;
    }
    let mut degrees = Vec::with_capacity(weights.len());
    let mut fractional: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = w / sum * total as f64;
        let floor = exact.floor() as usize;
        degrees.push(floor);
        assigned += floor;
        fractional.push((exact - floor as f64, i));
    }
    let remaining = total - assigned;
    fractional.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for &(_, i) in fractional.iter().take(remaining) {
        degrees[i] += 1;
    }
    degrees
}

/// Generates a ring graph (`v -> v+1 mod n`), the simplest balanced graph —
/// handy in tests.
pub fn ring(n: usize) -> Graph {
    let src: Vec<u32> = (0..n as u32).collect();
    let dst: Vec<u32> = (0..n as u32).map(|v| (v + 1) % n.max(1) as u32).collect();
    Graph::from_edges(n, src, dst).expect("ring endpoints are in range")
}

/// Generates an Erdős–Rényi-style random graph with exactly `ne` edges.
pub fn uniform_random(nv: usize, ne: usize, seed: u64) -> Graph {
    GraphSpec {
        num_vertices: nv,
        num_edges: ne,
        degree_model: DegreeModel::NearRegular,
        locality: 0.0,
        seed,
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_vertex_and_edge_counts() {
        for &(nv, ne) in &[(10usize, 50usize), (1000, 5000), (97, 331)] {
            let g = GraphSpec {
                num_vertices: nv,
                num_edges: ne,
                degree_model: DegreeModel::TargetStd { std: 5.0 },
                locality: 0.3,
                seed: 7,
            }
            .build();
            assert_eq!(g.num_vertices(), nv);
            assert_eq!(g.num_edges(), ne);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = GraphSpec {
            num_vertices: 200,
            num_edges: 1000,
            degree_model: DegreeModel::PowerLaw { alpha: 2.0 },
            locality: 0.5,
            seed: 99,
        };
        assert_eq!(spec.build().to_coo(), spec.build().to_coo());
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = GraphSpec {
            num_vertices: 200,
            num_edges: 1000,
            degree_model: DegreeModel::NearRegular,
            locality: 0.0,
            seed: 1,
        };
        let a = spec.build().to_coo();
        spec.seed = 2;
        let b = spec.build().to_coo();
        assert_ne!(a, b);
    }

    #[test]
    fn near_regular_has_low_std() {
        let g = GraphSpec {
            num_vertices: 1000,
            num_edges: 8000,
            degree_model: DegreeModel::NearRegular,
            locality: 0.0,
            seed: 3,
        }
        .build();
        let s = g.degree_stats();
        assert!(s.std_in_degree < 1.0, "std was {}", s.std_in_degree);
    }

    #[test]
    fn target_std_is_roughly_hit() {
        let g = GraphSpec {
            num_vertices: 20_000,
            num_edges: 200_000,
            degree_model: DegreeModel::TargetStd { std: 20.0 },
            locality: 0.0,
            seed: 11,
        }
        .build();
        let s = g.degree_stats();
        assert!(
            (s.std_in_degree - 20.0).abs() < 5.0,
            "std was {}",
            s.std_in_degree
        );
    }

    #[test]
    fn power_law_is_more_skewed_than_regular() {
        let base = |model| {
            GraphSpec {
                num_vertices: 2000,
                num_edges: 20_000,
                degree_model: model,
                locality: 0.0,
                seed: 5,
            }
            .build()
            .degree_stats()
            .imbalance()
        };
        assert!(base(DegreeModel::PowerLaw { alpha: 1.8 }) > 3.0 * base(DegreeModel::NearRegular));
    }

    #[test]
    fn locality_concentrates_sources() {
        let build = |locality| {
            GraphSpec {
                num_vertices: 10_000,
                num_edges: 50_000,
                degree_model: DegreeModel::NearRegular,
                locality,
                seed: 13,
            }
            .build()
        };
        let spread = |g: &Graph| {
            let coo = g.to_coo();
            coo.iter_edges()
                .map(|(s, d)| (s as i64 - d as i64).unsigned_abs() as f64)
                .sum::<f64>()
                / g.num_edges() as f64
        };
        let local = spread(&build(0.9));
        let global = spread(&build(0.0));
        assert!(
            local < global / 4.0,
            "local spread {local} vs global {global}"
        );
    }

    #[test]
    fn apportion_sums_exactly() {
        let w = vec![0.3, 0.2, 0.5, 1.7];
        for total in [0usize, 1, 7, 100, 12345] {
            assert_eq!(apportion(&w, total).iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn ring_is_regular() {
        let g = ring(16);
        assert_eq!(g.num_edges(), 16);
        assert_eq!(g.degree_stats().std_in_degree, 0.0);
    }

    #[test]
    fn zero_sized_specs() {
        let g = GraphSpec {
            num_vertices: 0,
            num_edges: 0,
            degree_model: DegreeModel::NearRegular,
            locality: 0.0,
            seed: 0,
        }
        .build();
        assert_eq!(g.num_vertices(), 0);
    }
}
