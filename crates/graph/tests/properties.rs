//! Property-based tests for the graph substrate.

// Test helpers outside #[test] fns are not covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used)]

use ugrapher_graph::generate::{DegreeModel, GraphSpec};
use ugrapher_graph::partition::neighbor_groups;
use ugrapher_graph::reorder::{cluster_order, degree_order, Permutation};
use ugrapher_graph::{Coo, Graph};
use ugrapher_util::check::forall;
use ugrapher_util::rng::StdRng;

/// Random COO graphs with up to 40 vertices and 120 edges.
fn random_coo(rng: &mut StdRng) -> Coo {
    let nv = rng.random_range(2usize..40);
    let ne = rng.random_range(0usize..120);
    let src: Vec<u32> = (0..ne).map(|_| rng.random_range(0..nv as u32)).collect();
    let dst: Vec<u32> = (0..ne).map(|_| rng.random_range(0..nv as u32)).collect();
    Coo::new(nv, src, dst).unwrap()
}

fn eq<T: PartialEq + std::fmt::Debug>(a: T, b: T, what: &str) -> Result<(), String> {
    if a == b {
        Ok(())
    } else {
        Err(format!("{what}: {a:?} != {b:?}"))
    }
}

#[test]
fn coo_graph_round_trip() {
    forall("coo_graph_round_trip", 64, |rng| {
        let coo = random_coo(rng);
        let g = Graph::from_coo(&coo);
        eq(g.to_coo(), coo, "round trip")
    });
}

#[test]
fn degree_sums_match_edge_count() {
    forall("degree_sums_match_edge_count", 64, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        let in_sum: usize = (0..g.num_vertices()).map(|v| g.in_degree(v)).sum();
        let out_sum: usize = (0..g.num_vertices()).map(|v| g.out_degree(v)).sum();
        eq(in_sum, g.num_edges(), "in-degree sum")?;
        eq(out_sum, g.num_edges(), "out-degree sum")
    });
}

#[test]
fn every_edge_id_appears_once_in_each_view() {
    forall("edge_id_bijection", 64, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        let mut in_ids: Vec<u32> = g.in_eid().to_vec();
        let mut out_ids: Vec<u32> = g.out_eid().to_vec();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        eq(in_ids, expect.clone(), "in-view edge ids")?;
        eq(out_ids, expect, "out-view edge ids")
    });
}

#[test]
fn in_and_out_views_agree() {
    forall("in_and_out_views_agree", 64, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        // Edge (s, e) in in-view of d must appear as (d, e) in out-view of s.
        for d in 0..g.num_vertices() {
            for (s, e) in g.in_neighbors(d) {
                let found = g
                    .out_neighbors(s as usize)
                    .any(|(dd, ee)| dd == d as u32 && ee == e);
                if !found {
                    return Err(format!("edge {e} missing from out-view"));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn generator_hits_exact_counts() {
    forall("generator_hits_exact_counts", 48, |rng| {
        let nv = rng.random_range(2usize..200);
        let mul = rng.random_range(1usize..8);
        let seed = rng.random_range(0u64..1000);
        let locality = rng.random_range(0.0f64..1.0);
        let ne = nv * mul;
        let g = GraphSpec {
            num_vertices: nv,
            num_edges: ne,
            degree_model: DegreeModel::TargetStd { std: 3.0 },
            locality,
            seed,
        }
        .build();
        eq(g.num_vertices(), nv, "vertex count")?;
        eq(g.num_edges(), ne, "edge count")
    });
}

#[test]
fn reorder_preserves_edge_count_and_degrees() {
    forall("reorder_preserves_degrees", 48, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        for perm in [degree_order(&g), cluster_order(&g)] {
            let h = perm.apply(&g);
            eq(h.num_edges(), g.num_edges(), "edge count after reorder")?;
            let mut dg: Vec<usize> = (0..g.num_vertices()).map(|v| g.in_degree(v)).collect();
            let mut dh: Vec<usize> = (0..h.num_vertices()).map(|v| h.in_degree(v)).collect();
            dg.sort_unstable();
            dh.sort_unstable();
            eq(dg, dh, "degree multiset after reorder")?;
        }
        Ok(())
    });
}

#[test]
fn permutation_inverse_round_trips() {
    forall("permutation_inverse_round_trips", 48, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        let p = cluster_order(&g);
        let back = p.inverse().apply(&p.apply(&g));
        eq(back.to_coo(), g.to_coo(), "inverse round trip")
    });
}

#[test]
fn neighbor_groups_partition_edges() {
    forall("neighbor_groups_partition_edges", 48, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        let gs = rng.random_range(1usize..16);
        let groups = neighbor_groups(&g, gs);
        let total: usize = groups.iter().map(|grp| grp.len).sum();
        eq(total, g.num_edges(), "group sizes sum")?;
        for grp in &groups {
            if grp.len > gs {
                return Err(format!("group of {} exceeds size {gs}", grp.len));
            }
            // Every slot in the group belongs to `dst`'s CSR range.
            let lo = g.in_ptr()[grp.dst as usize];
            let hi = g.in_ptr()[grp.dst as usize + 1];
            if !(grp.start >= lo && grp.start + grp.len <= hi) {
                return Err(format!(
                    "group [{}, {}) outside dst {} CSR range [{lo}, {hi})",
                    grp.start,
                    grp.start + grp.len,
                    grp.dst
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn identity_permutation_is_noop() {
    forall("identity_permutation_is_noop", 48, |rng| {
        let g = Graph::from_coo(&random_coo(rng));
        let h = Permutation::identity(g.num_vertices()).apply(&g);
        eq(h.to_coo(), g.to_coo(), "identity permutation")
    });
}
