//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ugrapher_graph::generate::{DegreeModel, GraphSpec};
use ugrapher_graph::partition::neighbor_groups;
use ugrapher_graph::reorder::{cluster_order, degree_order, Permutation};
use ugrapher_graph::{Coo, Graph};

/// Random COO graphs with up to 40 vertices and 120 edges.
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (2usize..40).prop_flat_map(|nv| {
        prop::collection::vec((0..nv as u32, 0..nv as u32), 0..120).prop_map(move |edges| {
            let (src, dst): (Vec<u32>, Vec<u32>) = edges.into_iter().unzip();
            Coo::new(nv, src, dst).unwrap()
        })
    })
}

proptest! {
    #[test]
    fn coo_graph_round_trip(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        prop_assert_eq!(g.to_coo(), coo);
    }

    #[test]
    fn degree_sums_match_edge_count(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        let in_sum: usize = (0..g.num_vertices()).map(|v| g.in_degree(v)).sum();
        let out_sum: usize = (0..g.num_vertices()).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(in_sum, g.num_edges());
        prop_assert_eq!(out_sum, g.num_edges());
    }

    #[test]
    fn every_edge_id_appears_once_in_each_view(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        let mut in_ids: Vec<u32> = g.in_eid().to_vec();
        let mut out_ids: Vec<u32> = g.out_eid().to_vec();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        prop_assert_eq!(in_ids, expect.clone());
        prop_assert_eq!(out_ids, expect);
    }

    #[test]
    fn in_and_out_views_agree(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        // Edge (s, e) in in-view of d must appear as (d, e) in out-view of s.
        for d in 0..g.num_vertices() {
            for (s, e) in g.in_neighbors(d) {
                let found = g.out_neighbors(s as usize).any(|(dd, ee)| dd == d as u32 && ee == e);
                prop_assert!(found, "edge {e} missing from out-view");
            }
        }
    }

    #[test]
    fn generator_hits_exact_counts(
        nv in 2usize..200,
        mul in 1usize..8,
        seed in 0u64..1000,
        locality in 0.0f64..1.0,
    ) {
        let ne = nv * mul;
        let g = GraphSpec {
            num_vertices: nv,
            num_edges: ne,
            degree_model: DegreeModel::TargetStd { std: 3.0 },
            locality,
            seed,
        }
        .build();
        prop_assert_eq!(g.num_vertices(), nv);
        prop_assert_eq!(g.num_edges(), ne);
    }

    #[test]
    fn reorder_preserves_edge_count_and_degrees(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        for perm in [degree_order(&g), cluster_order(&g)] {
            let h = perm.apply(&g);
            prop_assert_eq!(h.num_edges(), g.num_edges());
            let mut dg: Vec<usize> = (0..g.num_vertices()).map(|v| g.in_degree(v)).collect();
            let mut dh: Vec<usize> = (0..h.num_vertices()).map(|v| h.in_degree(v)).collect();
            dg.sort_unstable();
            dh.sort_unstable();
            prop_assert_eq!(dg, dh);
        }
    }

    #[test]
    fn permutation_inverse_round_trips(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        let p = cluster_order(&g);
        let back = p.inverse().apply(&p.apply(&g));
        prop_assert_eq!(back.to_coo(), g.to_coo());
    }

    #[test]
    fn neighbor_groups_partition_edges(coo in coo_strategy(), gs in 1usize..16) {
        let g = Graph::from_coo(&coo);
        let groups = neighbor_groups(&g, gs);
        let total: usize = groups.iter().map(|grp| grp.len).sum();
        prop_assert_eq!(total, g.num_edges());
        for grp in &groups {
            prop_assert!(grp.len <= gs);
            // Every slot in the group belongs to `dst`'s CSR range.
            let lo = g.in_ptr()[grp.dst as usize];
            let hi = g.in_ptr()[grp.dst as usize + 1];
            prop_assert!(grp.start >= lo && grp.start + grp.len <= hi);
        }
    }

    #[test]
    fn identity_permutation_is_noop(coo in coo_strategy()) {
        let g = Graph::from_coo(&coo);
        let h = Permutation::identity(g.num_vertices()).apply(&g);
        prop_assert_eq!(h.to_coo(), g.to_coo());
    }
}
