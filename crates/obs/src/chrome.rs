//! Chrome `trace_event` serialization.
//!
//! Every span serializes to one *complete* event (`"ph": "X"`) in the
//! [Trace Event Format] consumed by `about://tracing` and Perfetto.
//! Timestamps and durations are microseconds; the span's
//! [`SpanKind`](crate::span::SpanKind)
//! becomes the event category and its attributes (plus `trace_id`) the
//! `args` object.
//!
//! The same per-event serialization backs both the JSONL sink (one event
//! per line) and the Chrome-trace file sink (a single JSON array), so one
//! validator handles both formats.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::{AttrValue, Span};

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity; null keeps the document well-formed.
        out.push_str("null");
    }
}

fn push_attr_value(v: &AttrValue, out: &mut String) {
    match v {
        AttrValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
        AttrValue::F64(v) => push_f64(*v, out),
        AttrValue::U64(v) => out.push_str(&format!("{v}")),
        AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

/// Serializes one span as a complete (`ph: "X"`) Chrome trace event.
pub fn chrome_event_json(span: &Span) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"name\":\"");
    escape_json(span.name, &mut out);
    out.push_str("\",\"cat\":\"");
    out.push_str(span.kind.label());
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    push_f64(span.start_ns as f64 / 1_000.0, &mut out);
    out.push_str(",\"dur\":");
    push_f64(span.dur_ns as f64 / 1_000.0, &mut out);
    out.push_str(&format!(",\"pid\":1,\"tid\":{}", span.tid));
    out.push_str(",\"args\":{");
    out.push_str(&format!("\"trace_id\":{}", span.trace_id));
    for (k, v) in &span.attrs {
        out.push_str(",\"");
        escape_json(k, &mut out);
        out.push_str("\":");
        push_attr_value(v, &mut out);
    }
    out.push_str("}}");
    out
}

/// Serializes spans as a full Chrome trace document (a JSON array of
/// complete events, sorted by start time so timestamps are monotonic).
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_ns, s.dur_ns));
    let mut out = String::from("[\n");
    for (i, span) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&chrome_event_json(span));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use ugrapher_util::json::{parse, Value};

    fn span(name: &'static str, start: u64, dur: u64) -> Span {
        Span {
            name,
            kind: SpanKind::Kernel,
            trace_id: 3,
            start_ns: start,
            dur_ns: dur,
            tid: 1,
            attrs: vec![
                ("schedule", AttrValue::from("TE_G1_T1")),
                ("time_ms", AttrValue::from(0.25)),
            ],
        }
    }

    #[test]
    fn event_is_valid_json_with_expected_fields() {
        let ev = chrome_event_json(&span("sim.kernel", 2_000, 1_500));
        let v = parse(&ev).expect("event parses");
        assert_eq!(v.field("ph").unwrap(), &Value::Str("X".into()));
        assert_eq!(v.field("cat").unwrap(), &Value::Str("kernel".into()));
        assert_eq!(v.field("ts").unwrap(), &Value::Num(2.0));
        assert_eq!(v.field("dur").unwrap(), &Value::Num(1.5));
        let args = v.field("args").unwrap();
        assert_eq!(args.field("trace_id").unwrap(), &Value::Num(3.0));
        assert_eq!(
            args.field("schedule").unwrap(),
            &Value::Str("TE_G1_T1".into())
        );
    }

    #[test]
    fn trace_document_parses_and_is_sorted() {
        let spans = vec![span("b", 500, 10), span("a", 100, 10)];
        let doc = chrome_trace_json(&spans);
        let v = parse(&doc).expect("trace parses");
        let Value::Arr(events) = v else {
            panic!("expected array")
        };
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field("name").unwrap(), &Value::Str("a".into()));
    }

    #[test]
    fn escaping_keeps_json_well_formed() {
        let mut s = span("sim.kernel", 0, 1);
        s.attrs
            .push(("detail", AttrValue::from("quote \" slash \\ tab\tnl\n")));
        let ev = chrome_event_json(&s);
        parse(&ev).expect("escaped event parses");
    }

    #[test]
    fn non_finite_attrs_become_null() {
        let mut s = span("sim.kernel", 0, 1);
        s.attrs.push(("bad", AttrValue::F64(f64::NAN)));
        let ev = chrome_event_json(&s);
        parse(&ev).expect("NaN attr serialized as null still parses");
        assert!(ev.contains("\"bad\":null"));
    }
}
