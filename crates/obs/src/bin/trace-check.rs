//! `trace-check` — validates exported uGrapher traces.
//!
//! ```text
//! trace-check <trace.json|trace.jsonl> [more files...]
//! ```
//!
//! Each file is validated per its extension (`.jsonl` → JSONL of Chrome
//! events in completion order, anything else → a Chrome trace JSON
//! array): well-formed JSON, the complete-event shape, non-negative
//! monotonic timestamps, and balanced (properly nested) spans per thread.
//! Exits non-zero on the first invalid file, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;
use ugrapher_obs::trace_check::check_file;

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args_os().skip(1).map(PathBuf::from).collect();
    if args.is_empty() {
        eprintln!("usage: trace-check <trace.json|trace.jsonl> [more files...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &args {
        match check_file(path) {
            Ok(stats) => {
                println!(
                    "OK   {}: {} events, {} thread{}, {} trace id{}, wall {:.3} ms",
                    path.display(),
                    stats.events,
                    stats.threads,
                    if stats.threads == 1 { "" } else { "s" },
                    stats.trace_ids,
                    if stats.trace_ids == 1 { "" } else { "s" },
                    stats.wall_ms(),
                );
            }
            Err(err) => {
                eprintln!("FAIL {}: {err}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
