//! Validation of exported traces, used by CI (`trace-check` binary) and
//! tests.
//!
//! Two formats are accepted, matching the two file sinks:
//!
//! * **Chrome trace** (`.json`): one JSON array of complete events,
//!   required to be sorted by start timestamp (the [`crate`] Chrome sink
//!   sorts on flush);
//! * **JSONL** (`.jsonl`): one complete event per line, written in span
//!   *completion* order — so end timestamps must be non-decreasing per
//!   thread (a thread serializes its own spans as they finish).
//!
//! Every event must be well-formed JSON with the `trace_event` complete
//! shape (`ph == "X"`, numeric non-negative `ts`/`dur`, string `name` and
//! `cat`, numeric `tid`, an `args` object carrying `trace_id`), and per
//! thread the spans must nest: two spans on one thread either are
//! disjoint or one contains the other. Partial overlap means a
//! corrupted/interleaved trace.

use std::collections::BTreeMap;
use std::path::Path;
use ugrapher_util::json::{parse, Value};

/// Summary of a validated trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Number of events validated.
    pub events: usize,
    /// Number of distinct thread ids.
    pub threads: usize,
    /// Earliest start timestamp, µs.
    pub min_ts_us: f64,
    /// Latest end timestamp (`ts + dur`), µs.
    pub max_end_us: f64,
    /// Number of distinct non-zero `trace_id`s.
    pub trace_ids: usize,
}

impl TraceStats {
    /// Wall-clock extent of the trace in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        (self.max_end_us - self.min_ts_us) / 1_000.0
    }
}

/// Timestamp slack in µs when comparing event bounds; absorbs the ns→µs
/// float conversion.
const EPS_US: f64 = 1e-3;

/// One parsed event's fields needed for the structural checks.
struct Event {
    ts: f64,
    dur: f64,
    tid: u64,
}

/// Validates one event object; returns the fields used by later checks.
/// `what` names the event ("event 3", "line 17") in error messages.
fn check_event(v: &Value, what: &str) -> Result<Event, String> {
    let obj = match v {
        Value::Obj(_) => v,
        _ => return Err(format!("{what}: not a JSON object")),
    };
    let str_field = |key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{what}: missing string field `{key}`"))
    };
    let num_field = |key: &str| -> Result<f64, String> {
        obj.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what}: missing numeric field `{key}`"))
    };
    let name = str_field("name")?;
    if name.is_empty() {
        return Err(format!("{what}: empty `name`"));
    }
    str_field("cat")?;
    if str_field("ph")? != "X" {
        return Err(format!("{what}: `ph` is not \"X\""));
    }
    let ts = num_field("ts")?;
    let dur = num_field("dur")?;
    if !ts.is_finite() || ts < 0.0 {
        return Err(format!("{what}: `ts` {ts} is negative or non-finite"));
    }
    if !dur.is_finite() || dur < 0.0 {
        return Err(format!("{what}: `dur` {dur} is negative or non-finite"));
    }
    let tid = num_field("tid")?;
    num_field("pid")?;
    let args = obj
        .get("args")
        .ok_or_else(|| format!("{what}: missing `args`"))?;
    if !matches!(args, Value::Obj(_)) {
        return Err(format!("{what}: `args` is not an object"));
    }
    args.get("trace_id")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{what}: `args` missing numeric `trace_id`"))?;
    Ok(Event {
        ts,
        dur,
        tid: tid as u64,
    })
}

/// Checks that spans on one thread nest (no partial overlap). `events`
/// must belong to a single tid.
fn check_nesting(mut events: Vec<(f64, f64)>, tid: u64) -> Result<(), String> {
    // Sort by start asc, then longer span first so parents precede children.
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut stack: Vec<f64> = Vec::new(); // open span end times
    for (ts, dur) in events {
        let end = ts + dur;
        // Close spans that ended at or before this start (disjoint).
        while stack.last().is_some_and(|&top_end| top_end <= ts + EPS_US) {
            stack.pop();
        }
        // Whatever remains open overlaps this span and must contain it.
        if let Some(&top_end) = stack.last() {
            if top_end + EPS_US < end {
                return Err(format!(
                    "tid {tid}: span [{ts}, {end}) partially overlaps an \
                     enclosing span ending at {top_end} — unbalanced nesting"
                ));
            }
        }
        stack.push(end);
    }
    Ok(())
}

fn stats_of(events: &[Event], trace_id_count: usize) -> TraceStats {
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    TraceStats {
        events: events.len(),
        threads: tids.len(),
        min_ts_us: events.iter().map(|e| e.ts).fold(f64::INFINITY, f64::min),
        max_end_us: events.iter().map(|e| e.ts + e.dur).fold(0.0, f64::max),
        trace_ids: trace_id_count,
    }
}

fn count_trace_ids(values: &[&Value]) -> usize {
    let mut ids: Vec<u64> = values
        .iter()
        .filter_map(|v| v.get("args").and_then(|a| a.get("trace_id")))
        .filter_map(Value::as_f64)
        .filter(|&id| id > 0.0)
        .map(|id| id as u64)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

fn group_by_tid(events: &[Event]) -> BTreeMap<u64, Vec<(f64, f64)>> {
    let mut by_tid: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    for e in events {
        by_tid.entry(e.tid).or_default().push((e.ts, e.dur));
    }
    by_tid
}

/// Validates a Chrome trace document (a JSON array of complete events).
pub fn check_chrome_text(text: &str) -> Result<TraceStats, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Arr(items) = &doc else {
        return Err("top level is not a JSON array".to_owned());
    };
    if items.is_empty() {
        return Err("trace contains no events".to_owned());
    }
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        events.push(check_event(item, &format!("event {i}"))?);
    }
    // The Chrome sink sorts by start time on flush; require it so
    // downstream tools can stream the file.
    for pair in events.windows(2) {
        if pair[1].ts + EPS_US < pair[0].ts {
            return Err(format!(
                "timestamps not monotonic: ts {} follows ts {}",
                pair[1].ts, pair[0].ts
            ));
        }
    }
    for (tid, intervals) in group_by_tid(&events) {
        check_nesting(intervals, tid)?;
    }
    let refs: Vec<&Value> = items.iter().collect();
    Ok(stats_of(&events, count_trace_ids(&refs)))
}

/// Validates a JSONL trace (one complete event per line, completion
/// order).
pub fn check_jsonl_text(text: &str) -> Result<TraceStats, String> {
    let mut events = Vec::new();
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let what = format!("line {}", lineno + 1);
        let v = parse(line).map_err(|e| format!("{what}: not valid JSON: {e}"))?;
        events.push(check_event(&v, &what)?);
        values.push(v);
    }
    if events.is_empty() {
        return Err("trace contains no events".to_owned());
    }
    // A thread writes its own spans as they finish, so per thread the end
    // timestamps are non-decreasing.
    let mut last_end: BTreeMap<u64, f64> = BTreeMap::new();
    for e in &events {
        let end = e.ts + e.dur;
        if let Some(&prev) = last_end.get(&e.tid) {
            if end + EPS_US < prev {
                return Err(format!(
                    "tid {}: end timestamps not monotonic ({end} after {prev})",
                    e.tid
                ));
            }
        }
        last_end.insert(e.tid, end);
    }
    for (tid, intervals) in group_by_tid(&events) {
        check_nesting(intervals, tid)?;
    }
    let refs: Vec<&Value> = values.iter().collect();
    Ok(stats_of(&events, count_trace_ids(&refs)))
}

/// Validates a trace file, picking the format from the extension
/// (`.jsonl` → JSONL, anything else → Chrome array).
pub fn check_file(path: &Path) -> Result<TraceStats, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if path.extension().is_some_and(|e| e == "jsonl") {
        check_jsonl_text(&text)
    } else {
        check_chrome_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{chrome_event_json, chrome_trace_json};
    use crate::span::{AttrValue, Span, SpanKind};

    fn span(name: &'static str, tid: u64, start: u64, dur: u64) -> Span {
        Span {
            name,
            kind: SpanKind::Kernel,
            trace_id: 1,
            start_ns: start,
            dur_ns: dur,
            tid,
            attrs: vec![("time_ms", AttrValue::from(0.5))],
        }
    }

    #[test]
    fn valid_chrome_trace_passes() {
        let spans = vec![
            span("root", 1, 0, 100_000),
            span("child", 1, 10_000, 20_000),
            span("other", 2, 5_000, 50_000),
        ];
        let stats = check_chrome_text(&chrome_trace_json(&spans)).expect("valid");
        assert_eq!(stats.events, 3);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.trace_ids, 1);
        assert!((stats.wall_ms() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn valid_jsonl_trace_passes() {
        // Completion order: child finishes before root.
        let lines = [
            chrome_event_json(&span("child", 1, 10_000, 20_000)),
            chrome_event_json(&span("root", 1, 0, 100_000)),
        ]
        .join("\n");
        let stats = check_jsonl_text(&lines).expect("valid");
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn partial_overlap_is_rejected() {
        // [0, 50) and [25, 75) on one tid: neither disjoint nor nested.
        let spans = vec![span("a", 1, 0, 50_000), span("b", 1, 25_000, 50_000)];
        let err = check_chrome_text(&chrome_trace_json(&spans)).expect_err("overlap");
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn unsorted_chrome_trace_is_rejected() {
        let a = chrome_event_json(&span("late", 1, 50_000, 1_000));
        let b = chrome_event_json(&span("early", 2, 0, 1_000));
        let doc = format!("[{a},{b}]");
        let err = check_chrome_text(&doc).expect_err("unsorted");
        assert!(err.contains("not monotonic"), "{err}");
    }

    #[test]
    fn jsonl_end_order_is_enforced_per_tid() {
        let lines = [
            chrome_event_json(&span("second", 1, 0, 100_000)),
            chrome_event_json(&span("first", 1, 10_000, 20_000)),
        ]
        .join("\n");
        let err = check_jsonl_text(&lines).expect_err("ends out of order");
        assert!(err.contains("not monotonic"), "{err}");
    }

    #[test]
    fn malformed_events_are_rejected() {
        assert!(check_chrome_text("not json").is_err());
        assert!(check_chrome_text("{}").is_err());
        assert!(check_chrome_text("[]").is_err());
        // Missing ph.
        let doc =
            r#"[{"name":"x","cat":"kernel","ts":0,"dur":1,"pid":1,"tid":1,"args":{"trace_id":0}}]"#;
        assert!(check_chrome_text(doc).unwrap_err().contains("`ph`"));
        // Negative duration.
        let doc = r#"[{"name":"x","cat":"kernel","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1,"args":{"trace_id":0}}]"#;
        assert!(check_chrome_text(doc).unwrap_err().contains("`dur`"));
        // args missing trace_id.
        let doc =
            r#"[{"name":"x","cat":"kernel","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{}}]"#;
        assert!(check_chrome_text(doc).unwrap_err().contains("trace_id"));
    }
}
