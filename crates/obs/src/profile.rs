//! Profile rollups: turn a flat list of completed [`Span`]s back into a
//! merged call tree with per-frame call counts, total and self time, and
//! a flamegraph-style text table.
//!
//! Nesting is reconstructed per thread from interval containment (the
//! recorder emits *complete* spans, so a parent strictly contains the
//! spans opened inside it on the same thread), then frames with the same
//! name and detail are merged at each depth. Roots from every thread are
//! merged into one forest, so parallel tuner workers collapse into a
//! single `tune.candidate` row.

use crate::span::{Span, SpanKind};
use std::collections::BTreeMap;

/// One merged frame of the profile tree.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Span name shared by every span merged into this frame.
    pub name: &'static str,
    /// Optional discriminator derived from span attributes (`layer`, `op`),
    /// so e.g. per-layer GNN work stays separate in the table.
    pub detail: Option<String>,
    /// The layer of the stack that emitted the merged spans.
    pub kind: SpanKind,
    /// Number of spans merged into this frame.
    pub calls: u64,
    /// Total duration across merged spans (includes child time).
    pub total_ns: u64,
    /// Total duration minus direct children's duration.
    pub self_ns: u64,
    /// Child frames, sorted by descending total time.
    pub children: Vec<Frame>,
}

/// One row of the flat per-(name, detail) aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatRow {
    /// Span name.
    pub name: &'static str,
    /// Detail discriminator (see [`Frame::detail`]).
    pub detail: Option<String>,
    /// Emitting layer.
    pub kind: SpanKind,
    /// Number of spans aggregated.
    pub calls: u64,
    /// Total duration (includes child time; comparable across rows only
    /// at the same depth of the tree).
    pub total_ns: u64,
    /// Self time — the exclusive cost of this frame, safe to sum.
    pub self_ns: u64,
}

/// A rollup of one trace: the merged call forest plus coverage stats.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Merged root frames across all threads, sorted by total time.
    pub roots: Vec<Frame>,
    /// Number of spans rolled up.
    pub span_count: usize,
    /// Wall-clock extent of the trace (first start to last end), ns.
    pub wall_ns: u64,
    /// Portion of `wall_ns` covered by at least one span, ns.
    pub covered_ns: u64,
}

/// Derives the detail discriminator for a span: `L<layer>` and/or the
/// `op` attribute, joined with a space.
fn detail_of(span: &Span) -> Option<String> {
    let mut parts = Vec::new();
    if let Some(layer) = span.attr_str("layer") {
        parts.push(format!("L{layer}"));
    }
    if let Some(op) = span.attr_str("op") {
        parts.push(op);
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(" "))
    }
}

type FrameKey = (&'static str, Option<String>);

/// Accumulator for one (name, detail) key at one depth.
struct Acc {
    kind: SpanKind,
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    child_idxs: Vec<usize>,
}

/// Merges the spans at `idxs` (siblings at one depth) into frames,
/// recursing into their children.
fn fold(idxs: &[usize], spans: &[Span], kids: &[Vec<usize>]) -> Vec<Frame> {
    let mut map: BTreeMap<FrameKey, Acc> = BTreeMap::new();
    for &i in idxs {
        let span = &spans[i];
        let child_sum: u64 = kids[i].iter().map(|&c| spans[c].dur_ns).sum();
        let acc = map.entry((span.name, detail_of(span))).or_insert(Acc {
            kind: span.kind,
            calls: 0,
            total_ns: 0,
            self_ns: 0,
            child_idxs: Vec::new(),
        });
        acc.calls += 1;
        acc.total_ns += span.dur_ns;
        acc.self_ns += span.dur_ns.saturating_sub(child_sum);
        acc.child_idxs.extend_from_slice(&kids[i]);
    }
    let mut frames: Vec<Frame> = map
        .into_iter()
        .map(|((name, detail), acc)| Frame {
            name,
            detail,
            kind: acc.kind,
            calls: acc.calls,
            total_ns: acc.total_ns,
            self_ns: acc.self_ns,
            children: fold(&acc.child_idxs, spans, kids),
        })
        .collect();
    frames.sort_by_key(|f| std::cmp::Reverse(f.total_ns));
    frames
}

impl ProfileReport {
    /// Builds a rollup from completed spans (any order, any threads).
    pub fn from_spans(spans: &[Span]) -> ProfileReport {
        if spans.is_empty() {
            return ProfileReport {
                roots: Vec::new(),
                span_count: 0,
                wall_ns: 0,
                covered_ns: 0,
            };
        }

        // Reconstruct parent/child links per thread via containment.
        let mut by_tid: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            by_tid.entry(s.tid).or_default().push(i);
        }
        let mut kids: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for order in by_tid.values_mut() {
            // Parents sort before children: earlier start first, and at
            // equal starts the longer (containing) span first.
            order.sort_by_key(|&i| (spans[i].start_ns, u64::MAX - spans[i].dur_ns));
            let mut stack: Vec<usize> = Vec::new();
            for &i in order.iter() {
                while let Some(&top) = stack.last() {
                    let contains = spans[top].start_ns <= spans[i].start_ns
                        && spans[top].end_ns() >= spans[i].end_ns();
                    if contains {
                        break;
                    }
                    stack.pop();
                }
                match stack.last() {
                    Some(&parent) => kids[parent].push(i),
                    None => roots.push(i),
                }
                stack.push(i);
            }
        }

        // Wall-clock extent and interval-union coverage.
        let min_start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let max_end = spans.iter().map(Span::end_ns).max().unwrap_or(0);
        let mut intervals: Vec<(u64, u64)> =
            spans.iter().map(|s| (s.start_ns, s.end_ns())).collect();
        intervals.sort_unstable();
        let mut covered_ns = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (start, end) in intervals {
            match cur {
                Some((cs, ce)) if start <= ce => cur = Some((cs, ce.max(end))),
                Some((cs, ce)) => {
                    covered_ns += ce - cs;
                    cur = Some((start, end));
                }
                None => cur = Some((start, end)),
            }
        }
        if let Some((cs, ce)) = cur {
            covered_ns += ce - cs;
        }

        ProfileReport {
            roots: fold(&roots, spans, &kids),
            span_count: spans.len(),
            wall_ns: max_end.saturating_sub(min_start),
            covered_ns,
        }
    }

    /// Fraction of the trace's wall-clock extent covered by at least one
    /// span, in `[0, 1]`. An empty trace has coverage 0.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.covered_ns as f64 / self.wall_ns as f64
        }
    }

    /// Flat per-(name, detail) totals across the whole tree, sorted by
    /// descending self time.
    pub fn flat(&self) -> Vec<FlatRow> {
        fn walk(frames: &[Frame], map: &mut BTreeMap<FrameKey, FlatRow>) {
            for f in frames {
                let row = map.entry((f.name, f.detail.clone())).or_insert(FlatRow {
                    name: f.name,
                    detail: f.detail.clone(),
                    kind: f.kind,
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
                row.calls += f.calls;
                row.total_ns += f.total_ns;
                row.self_ns += f.self_ns;
                walk(&f.children, map);
            }
        }
        let mut map = BTreeMap::new();
        walk(&self.roots, &mut map);
        let mut rows: Vec<FlatRow> = map.into_values().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.self_ns));
        rows
    }

    /// Looks up a frame anywhere in the tree by name (first match,
    /// depth-first in total-time order).
    pub fn find(&self, name: &str) -> Option<&Frame> {
        fn search<'a>(frames: &'a [Frame], name: &str) -> Option<&'a Frame> {
            for f in frames {
                if f.name == name {
                    return Some(f);
                }
                if let Some(hit) = search(&f.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        search(&self.roots, name)
    }
}

fn push_rows(out: &mut String, frames: &[Frame], depth: usize, wall_ns: u64) {
    for f in frames {
        let label = match &f.detail {
            Some(d) => format!("{} [{}]", f.name, d),
            None => f.name.to_owned(),
        };
        let indented = format!("{:indent$}{label}", "", indent = depth * 2);
        let pct = if wall_ns == 0 {
            0.0
        } else {
            100.0 * f.total_ns as f64 / wall_ns as f64
        };
        out.push_str(&format!(
            "{indented:<44} {:>8} {:>12.3} {:>12.3} {:>6.1}\n",
            f.calls,
            f.total_ns as f64 / 1e6,
            f.self_ns as f64 / 1e6,
            pct,
        ));
        push_rows(out, &f.children, depth + 1, wall_ns);
    }
}

impl std::fmt::Display for ProfileReport {
    /// Flamegraph-style table: one indented row per merged frame.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {:>12} {:>6}\n",
            "span", "calls", "total(ms)", "self(ms)", "%wall"
        ));
        push_rows(&mut out, &self.roots, 0, self.wall_ns);
        out.push_str(&format!(
            "{} spans, wall {:.3} ms, coverage {:.1}%\n",
            self.span_count,
            self.wall_ns as f64 / 1e6,
            100.0 * self.coverage(),
        ));
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    fn span(name: &'static str, tid: u64, start: u64, dur: u64) -> Span {
        Span {
            name,
            kind: SpanKind::Other,
            trace_id: 0,
            start_ns: start,
            dur_ns: dur,
            tid,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn nesting_and_self_time() {
        // root [0, 100) with children [10, 30) and [40, 80); grandchild
        // [45, 55) inside the second child.
        let spans = vec![
            span("root", 1, 0, 100),
            span("child", 1, 10, 20),
            span("child", 1, 40, 40),
            span("grand", 1, 45, 10),
        ];
        let p = ProfileReport::from_spans(&spans);
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.self_ns, 100 - 20 - 40);
        assert_eq!(root.children.len(), 1, "both `child` spans merge");
        let child = &root.children[0];
        assert_eq!(child.calls, 2);
        assert_eq!(child.total_ns, 60);
        assert_eq!(child.self_ns, 60 - 10);
        assert_eq!(child.children[0].name, "grand");
    }

    #[test]
    fn threads_merge_at_the_root() {
        let spans = vec![span("work", 1, 0, 50), span("work", 2, 10, 50)];
        let p = ProfileReport::from_spans(&spans);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].calls, 2);
        assert_eq!(p.roots[0].total_ns, 100);
    }

    #[test]
    fn coverage_is_interval_union() {
        // [0, 50) and [40, 100) overlap: union 100 over wall 100.
        let full = ProfileReport::from_spans(&[span("a", 1, 0, 50), span("b", 2, 40, 60)]);
        assert!((full.coverage() - 1.0).abs() < 1e-12);
        // [0, 10) and [90, 100): union 20 over wall 100.
        let gap = ProfileReport::from_spans(&[span("a", 1, 0, 10), span("b", 1, 90, 10)]);
        assert!((gap.coverage() - 0.2).abs() < 1e-12);
        assert_eq!(ProfileReport::from_spans(&[]).coverage(), 0.0);
    }

    #[test]
    fn detail_splits_layers() {
        let mut a = span("gnn.op", 1, 0, 10);
        a.attrs.push(("layer", AttrValue::from(0u64)));
        a.attrs.push(("op", AttrValue::from("u_mul_e_sum")));
        let mut b = span("gnn.op", 1, 20, 10);
        b.attrs.push(("layer", AttrValue::from(1u64)));
        b.attrs.push(("op", AttrValue::from("u_mul_e_sum")));
        let p = ProfileReport::from_spans(&[a, b]);
        assert_eq!(p.roots.len(), 2, "layers stay separate");
        assert_eq!(p.roots[0].detail.as_deref(), Some("L0 u_mul_e_sum"));
    }

    #[test]
    fn flat_rows_and_find() {
        let spans = vec![
            span("root", 1, 0, 100),
            span("leaf", 1, 10, 20),
            span("leaf", 1, 40, 20),
        ];
        let p = ProfileReport::from_spans(&spans);
        let flat = p.flat();
        assert_eq!(flat.len(), 2);
        // root self = 60 > leaf self = 40.
        assert_eq!(flat[0].name, "root");
        assert_eq!(flat[0].self_ns, 60);
        assert_eq!(flat[1].self_ns, 40);
        assert_eq!(p.find("leaf").map(|f| f.calls), Some(2));
        assert!(p.find("missing").is_none());
        let table = p.to_string();
        assert!(table.contains("root"));
        assert!(table.contains("coverage 100.0%"));
    }
}
