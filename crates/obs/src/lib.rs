//! # ugrapher-obs
//!
//! End-to-end observability for the uGrapher runtime: tracing spans,
//! cumulative metrics, and profile rollups — with a strict
//! *zero-cost-when-disabled* contract.
//!
//! * [`span`] — the [`Span`]/[`SpanKind`]/[`AttrValue`] event model;
//! * [`recorder`] — the [`Recorder`] handle and pluggable [`Sink`]s:
//!   an in-memory ring buffer, an incremental JSONL writer, and a Chrome
//!   `trace_event` file exporter loadable in Perfetto/`about://tracing`;
//! * [`metrics`] — the cumulative [`MetricsRegistry`] of counters and
//!   histograms with Prometheus-text and JSON export;
//! * [`profile`] — [`ProfileReport`], which folds a span list back into a
//!   merged call tree with self/total times and a flamegraph-style table;
//! * [`chrome`] — the `trace_event` serialization shared by the sinks;
//! * [`trace_check`] — the validator behind the `trace-check` binary and
//!   CI gate.
//!
//! ## The disabled fast path
//!
//! The default recorder is [`Recorder::disabled`]: opening a span is a
//! branch on an `Option` returning an inert guard — no clock read, no
//! allocation, no locking. Instrumented code can stay unconditional:
//!
//! ```
//! use ugrapher_obs::{Recorder, SpanKind};
//!
//! let rec = Recorder::disabled();
//! let mut span = rec.span("sim.kernel", SpanKind::Kernel);
//! if span.is_enabled() {
//!     span.attr("schedule", "TV_G1_T1"); // skipped entirely when off
//! }
//! // span records itself (nowhere, here) when dropped
//! ```
//!
//! ## The global recorder
//!
//! Library layers that have no handle to thread a [`Recorder`] through
//! (functional execution, GNN model code) use the process-global recorder,
//! which starts disabled. Install one early — directly with [`install`] or
//! from the `UGRAPHER_TRACE` environment variable with [`init_from_env`]:
//!
//! ```no_run
//! // UGRAPHER_TRACE=trace.json  → Chrome trace file (written on flush/exit)
//! // UGRAPHER_TRACE=trace.jsonl → incremental JSONL (one event per line)
//! ugrapher_obs::init_from_env();
//! ```

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod span;
pub mod trace_check;

pub use metrics::MetricsRegistry;
pub use profile::{Frame, ProfileReport};
pub use recorder::{Recorder, RecorderBuilder, RingHandle, Sink, SpanGuard};
pub use span::{AttrValue, Span, SpanKind};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder. Disabled until [`install`] (or
/// [`init_from_env`]) succeeds — at zero cost for code that opens spans
/// against it.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::disabled)
}

/// Installs `recorder` as the process-global recorder. Returns `false` if
/// a global recorder was already fixed (first install wins, including the
/// implicit disabled one created by the first [`global`] call).
pub fn install(recorder: Recorder) -> bool {
    GLOBAL.set(recorder).is_ok()
}

/// Installs a global recorder from the `UGRAPHER_TRACE` environment
/// variable, if set:
///
/// * a path ending in `.jsonl` → incremental JSONL sink;
/// * any other path → Chrome `trace_event` file sink (written on flush and
///   when the last handle drops).
///
/// Returns `true` when a recorder was installed by this call. `false`
/// means the variable is unset, the file could not be created, or a global
/// recorder was already fixed.
pub fn init_from_env() -> bool {
    let Ok(path) = std::env::var("UGRAPHER_TRACE") else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    let mut builder = Recorder::builder();
    if path.ends_with(".jsonl") {
        if builder.jsonl_file(&path).is_err() {
            return false;
        }
    } else {
        builder.chrome_file(&path);
    }
    install(builder.build())
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Issues a fresh non-zero trace id. Runtime entry points stamp one onto
/// the result (`UGrapherResult::trace_id`) and every span of the request,
/// so a trace can be joined back to the call that produced it.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_non_zero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn global_starts_disabled_and_install_is_first_wins() {
        // Note: process-wide state — this test must not assume it runs
        // first. Whatever the global is, it is fixed after observation.
        let was_enabled = global().is_enabled();
        let installed = install(Recorder::builder().build());
        if installed {
            assert!(!was_enabled, "install succeeded, so global was unset");
            assert!(global().is_enabled());
        }
        assert!(
            !install(Recorder::disabled()),
            "second install never succeeds"
        );
    }
}
