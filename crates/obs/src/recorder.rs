//! The span recorder: a cloneable handle that is free when disabled.
//!
//! A [`Recorder`] is either *disabled* — the handle holds no allocation,
//! and opening a span is a branch on an `Option` that returns an inert
//! guard (no clock read, no lock, no heap traffic) — or *enabled*, in
//! which case completed spans fan out to every configured [`Sink`].
//!
//! Sinks are fixed at construction ([`RecorderBuilder`]); the recorder
//! handle itself is `Send + Sync + Clone` and safe to share across the
//! tuner's worker threads.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::chrome::chrome_trace_json;
use crate::span::{current_tid, AttrValue, Span, SpanKind};

/// Receives completed spans. Implementations handle their own locking;
/// `record` is called from arbitrary threads.
pub trait Sink: Send + Sync {
    /// Accepts one completed span.
    fn record(&self, span: &Span);
    /// Flushes buffered output (file sinks write here).
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Inner {
    epoch: Instant,
    sinks: Vec<Arc<dyn Sink>>,
    spans_recorded: AtomicU64,
}

/// A cloneable span-recording handle. See the module docs.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => write!(
                f,
                "Recorder(enabled, {} sinks, {} spans)",
                inner.sinks.len(),
                inner.spans_recorded.load(Ordering::Relaxed)
            ),
        }
    }
}

impl Recorder {
    /// The zero-cost disabled recorder: every span call is an immediate
    /// no-op (no allocation, no locking, no clock read).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A builder for an enabled recorder.
    pub fn builder() -> RecorderBuilder {
        RecorderBuilder::default()
    }

    /// A clone of the process-global recorder (see [`crate::global`]).
    pub fn global() -> Self {
        crate::global().clone()
    }

    /// `true` when spans are actually recorded. Hot paths use this to skip
    /// building attribute values.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of spans recorded so far (0 when disabled).
    pub fn spans_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.spans_recorded.load(Ordering::Relaxed))
    }

    /// Opens a span; it records itself when the guard drops. On a disabled
    /// recorder this returns an inert guard without reading the clock.
    pub fn span(&self, name: &'static str, kind: SpanKind) -> SpanGuard {
        self.span_traced(name, kind, 0)
    }

    /// [`Recorder::span`] with an explicit `trace_id` joining the span to
    /// one traced request.
    pub fn span_traced(&self, name: &'static str, kind: SpanKind, trace_id: u64) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(inner) => SpanGuard {
                active: Some(ActiveSpan {
                    inner: Arc::clone(inner),
                    started: Instant::now(),
                    span: Span {
                        name,
                        kind,
                        trace_id,
                        start_ns: inner.epoch.elapsed().as_nanos() as u64,
                        dur_ns: 0,
                        tid: current_tid(),
                        attrs: Vec::new(),
                    },
                }),
            },
        }
    }

    /// Flushes every sink (file sinks write their buffered content).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error any sink reports.
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush()?;
            }
        }
        Ok(())
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    started: Instant,
    span: Span,
}

/// An open span; records itself to the recorder's sinks on drop.
/// All methods are no-ops on guards from a disabled recorder.
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// `true` when the span will actually be recorded. Use to skip
    /// building expensive attribute values.
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches one attribute (no-op when disabled).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) -> &mut Self {
        if let Some(active) = &mut self.active {
            active.span.attrs.push((key, value.into()));
        }
        self
    }

    /// Ends the span now instead of at scope exit.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut active) = self.active.take() {
            active.span.dur_ns = active.started.elapsed().as_nanos() as u64;
            active.inner.spans_recorded.fetch_add(1, Ordering::Relaxed);
            for sink in &active.inner.sinks {
                sink.record(&active.span);
            }
        }
    }
}

/// Configures the sinks of an enabled [`Recorder`].
#[derive(Default)]
pub struct RecorderBuilder {
    sinks: Vec<Arc<dyn Sink>>,
}

impl RecorderBuilder {
    /// Adds a bounded in-memory ring buffer and returns a handle for
    /// reading the retained spans back.
    pub fn ring(&mut self, capacity: usize) -> RingHandle {
        let sink = Arc::new(RingSink {
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        });
        self.sinks.push(Arc::clone(&sink) as Arc<dyn Sink>);
        RingHandle { sink }
    }

    /// Adds a JSONL sink: one Chrome trace event per line, written
    /// incrementally.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be created.
    pub fn jsonl_file(&mut self, path: impl AsRef<Path>) -> std::io::Result<&mut Self> {
        let file = std::fs::File::create(path)?;
        self.sinks.push(Arc::new(JsonlSink {
            out: Mutex::new(std::io::BufWriter::new(file)),
        }));
        Ok(self)
    }

    /// Adds a Chrome `trace_event` file sink: spans are buffered in memory
    /// and written as one JSON array on [`Recorder::flush`] (and when the
    /// last recorder handle drops).
    pub fn chrome_file(&mut self, path: impl AsRef<Path>) -> &mut Self {
        self.sinks.push(Arc::new(ChromeSink {
            path: path.as_ref().to_path_buf(),
            spans: Mutex::new(Vec::new()),
        }));
        self
    }

    /// Adds a custom sink.
    pub fn sink(&mut self, sink: Arc<dyn Sink>) -> &mut Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the enabled recorder.
    pub fn build(self) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sinks: self.sinks,
                spans_recorded: AtomicU64::new(0),
            })),
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        for sink in &self.sinks {
            // Last-handle flush; errors have nowhere to go at this point.
            let _ = sink.flush();
        }
    }
}

// ------------------------------------------------------------------ sinks

struct RingSink {
    capacity: usize,
    spans: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
}

impl Sink for RingSink {
    fn record(&self, span: &Span) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() == self.capacity {
            spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(span.clone());
    }
}

/// Reads spans back out of a ring sink installed via
/// [`RecorderBuilder::ring`].
#[derive(Clone)]
pub struct RingHandle {
    sink: Arc<RingSink>,
}

impl RingHandle {
    /// A copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        self.sink
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.sink.dropped.load(Ordering::Relaxed)
    }

    /// Clears the retained spans.
    pub fn clear(&self) {
        self.sink
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl Sink for JsonlSink {
    fn record(&self, span: &Span) {
        let line = crate::chrome::chrome_event_json(span);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // A full disk mid-trace must not take the traced program down.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) -> std::io::Result<()> {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

struct ChromeSink {
    path: PathBuf,
    spans: Mutex<Vec<Span>>,
}

impl Sink for ChromeSink {
    fn record(&self, span: &Span) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span.clone());
    }

    fn flush(&self) -> std::io::Result<()> {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        std::fs::write(&self.path, chrome_trace_json(&spans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let mut g = rec.span("noop", SpanKind::Other);
        assert!(!g.is_enabled());
        g.attr("expensive", "never-built");
        drop(g);
        assert_eq!(rec.spans_recorded(), 0);
        rec.flush().expect("flush of disabled recorder is Ok");
    }

    #[test]
    fn ring_records_spans_with_attrs() {
        let mut b = Recorder::builder();
        let ring = b.ring(16);
        let rec = b.build();
        {
            let mut g = rec.span_traced("work", SpanKind::Runtime, 42);
            g.attr("k", "v").attr("n", 3usize);
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert_eq!(spans[0].trace_id, 42);
        assert_eq!(spans[0].attr_str("k").as_deref(), Some("v"));
        assert_eq!(rec.spans_recorded(), 1);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut b = Recorder::builder();
        let ring = b.ring(4);
        let rec = b.build();
        for _ in 0..10 {
            rec.span("s", SpanKind::Other).finish();
        }
        assert_eq!(ring.snapshot().len(), 4);
        assert_eq!(ring.dropped(), 6);
        ring.clear();
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn spans_record_across_threads() {
        let mut b = Recorder::builder();
        let ring = b.ring(256);
        let rec = b.build();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        rec.span("t", SpanKind::Tune).finish();
                    }
                });
            }
        });
        assert_eq!(ring.snapshot().len(), 32);
    }

    #[test]
    fn timestamps_are_ordered_within_a_thread() {
        let mut b = Recorder::builder();
        let ring = b.ring(8);
        let rec = b.build();
        rec.span("first", SpanKind::Other).finish();
        rec.span("second", SpanKind::Other).finish();
        let spans = ring.snapshot();
        assert!(spans[0].start_ns <= spans[1].start_ns);
        let outer = rec.span("outer", SpanKind::Other);
        rec.span("inner", SpanKind::Other).finish();
        drop(outer);
        let spans = ring.snapshot();
        // Inner completes (and records) before outer; outer's interval
        // contains inner's.
        let inner = &spans[2];
        let outer = &spans[3];
        assert_eq!(inner.name, "inner");
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.end_ns() >= inner.end_ns());
    }

    #[test]
    fn chrome_file_sink_writes_on_flush() {
        let path = std::env::temp_dir().join("ugrapher_obs_chrome_sink_test.json");
        let mut b = Recorder::builder();
        b.chrome_file(&path);
        let rec = b.build();
        rec.span("a", SpanKind::Kernel).finish();
        rec.flush().expect("flush writes the file");
        let text = std::fs::read_to_string(&path).expect("file exists");
        ugrapher_util::json::parse(&text).expect("chrome file is valid JSON");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_writes_one_event_per_line() {
        let path = std::env::temp_dir().join("ugrapher_obs_jsonl_sink_test.jsonl");
        let mut b = Recorder::builder();
        b.jsonl_file(&path).expect("create jsonl file");
        let rec = b.build();
        rec.span("a", SpanKind::Kernel).finish();
        rec.span("b", SpanKind::Kernel).finish();
        rec.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("file exists");
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            ugrapher_util::json::parse(line).expect("line is valid JSON");
        }
        let _ = std::fs::remove_file(&path);
    }
}
