//! Cumulative counters and histograms with Prometheus-text and JSON
//! snapshot export.
//!
//! The registry is deliberately simple: counters are monotonically
//! increasing `u64`s, histograms have fixed log-spaced millisecond
//! buckets, and labels are embedded in the metric key using the
//! Prometheus convention (`name{stage="predictor"}`). Everything lives
//! behind one mutex per kind — metric updates sit next to work that costs
//! microseconds to milliseconds (kernel simulation, tuning), so
//! contention is not a concern.
//!
//! Use [`MetricsRegistry::global`] for the process-wide registry the
//! runtime increments, or construct a private registry for tests.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Counter: simulated kernel launches ([`crate::SpanKind::Kernel`] spans).
pub const KERNELS_LAUNCHED: &str = "ugrapher_kernels_launched_total";
/// Counter: candidate schedules evaluated by the tuner.
pub const TUNING_EVALUATIONS: &str = "ugrapher_tuning_evaluations_total";
/// Counter: `Runtime::run` invocations.
pub const RUNS: &str = "ugrapher_runs_total";
/// Counter (labeled `stage`): fallback activations recorded as
/// `RobustnessReport` downgrades.
pub const FALLBACKS: &str = "ugrapher_fallbacks_total";
/// Counter (labeled `fault`): faults armed by the simulator's injector.
pub const FAULT_INJECTIONS: &str = "ugrapher_fault_injections_total";
/// Counter: operator × schedule combinations checked by the analyzer sweep.
pub const ANALYZE_COMBOS: &str = "ugrapher_analyze_combos_total";
/// Counter (labeled `pass`): IR verifier-pass outcomes per sweep combo
/// (`bounds-ok`/`bounds-violation`, `race-ok`/`race-mismatch`,
/// `lint-ok`/`lint-finding`, `dynamic-ok`/`dynamic-mismatch`).
pub const ANALYZE_VERIFIER: &str = "ugrapher_analyze_verifier_total";
/// Counter (labeled `class`): determinism classifications assigned by the
/// analyzer sweep (`sequential`, `atomic-order-insensitive`,
/// `atomic-order-dependent`).
pub const ANALYZE_DETERMINISM: &str = "ugrapher_analyze_determinism_total";
/// Counter: compiled-plan cache hits (`PlanCache` in `ugrapher-core`).
pub const PLAN_CACHE_HITS: &str = "ugrapher_plan_cache_hits_total";
/// Counter: compiled-plan cache misses.
pub const PLAN_CACHE_MISSES: &str = "ugrapher_plan_cache_misses_total";
/// Counter: compiled-plan cache entries dropped by capacity eviction or
/// explicit graph invalidation.
pub const PLAN_CACHE_EVICTIONS: &str = "ugrapher_plan_cache_evictions_total";
/// Counter: requests admitted by the serving engine (`ugrapher-serve`).
pub const SERVE_REQUESTS: &str = "ugrapher_serve_requests_total";
/// Counter (labeled `reason`): serving-engine requests shed with a typed
/// error (`overloaded`, `deadline`, `shutdown`).
pub const SERVE_SHED: &str = "ugrapher_serve_shed_total";
/// Histogram: serving-engine queue depth observed at admission.
pub const SERVE_QUEUE_DEPTH: &str = "ugrapher_serve_queue_depth";
/// Histogram: time a served request spent queued, in milliseconds.
pub const SERVE_QUEUE_MS: &str = "ugrapher_serve_queue_ms";
/// Histogram: end-to-end service latency (queue wait + execution) of a
/// served request, in milliseconds.
pub const SERVE_LATENCY_MS: &str = "ugrapher_serve_latency_ms";
/// Histogram (labeled `strategy`): simulated kernel time per strategy.
pub const KERNEL_TIME_MS: &str = "ugrapher_kernel_time_ms";
/// Histogram: end-to-end `Runtime::run` simulated time.
pub const RUN_TIME_MS: &str = "ugrapher_run_time_ms";

/// Upper bounds (`le`) of the histogram buckets, in the observed unit
/// (milliseconds for the built-in time histograms). An implicit `+Inf`
/// bucket follows.
pub const BUCKET_BOUNDS: [f64; 12] = [
    0.001, 0.0032, 0.01, 0.032, 0.1, 0.32, 1.0, 3.2, 10.0, 32.0, 100.0, 320.0,
];

/// One histogram's state: fixed-bucket counts plus sum/count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Observation count per bucket of [`BUCKET_BOUNDS`], plus a final
    /// `+Inf` bucket.
    pub buckets: [u64; BUCKET_BOUNDS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Cumulative count of observations `<=` bound `i` of
    /// [`BUCKET_BOUNDS`] (Prometheus `le` semantics).
    pub fn cumulative(&self, i: usize) -> u64 {
        self.buckets[..=i].iter().sum()
    }
}

/// A registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Formats a labeled metric key, `name{key="value"}`. Label values are
/// escaped per the Prometheus text format.
pub fn labeled(name: &str, label_key: &str, label_value: &str) -> String {
    let escaped = label_value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("{name}{{{label_key}=\"{escaped}\"}}")
}

/// Splits a metric key into `(base_name, labels)` where labels retain
/// their surrounding braces' content (`stage="predictor"`), or `None`.
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(i) => (&key[..i], Some(key[i + 1..].trim_end_matches('}'))),
        None => (key, None),
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry (for tests and scoped measurements).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Increments a counter by 1.
    pub fn inc(&self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn inc_by(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Increments the labeled variant of a counter,
    /// e.g. `inc_labeled(FALLBACKS, "stage", "predictor")`.
    pub fn inc_labeled(&self, name: &str, label_key: &str, label_value: &str) {
        self.inc(&labeled(name, label_key, label_value));
    }

    /// Records one observation into a histogram. Non-finite values are
    /// dropped (they would poison `sum`).
    pub fn observe(&self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut hists = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        hists.entry(name.to_owned()).or_default().observe(value);
    }

    /// Records one observation into a labeled histogram.
    pub fn observe_labeled(&self, name: &str, label_key: &str, label_value: &str, value: f64) {
        self.observe(&labeled(name, label_key, label_value), value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Current state of a histogram, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// A point-in-time copy of every counter.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// A point-in-time copy of every histogram.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, Histogram> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let counters = self.counters_snapshot();
        let histograms = self.histograms_snapshot();
        let mut out = String::new();
        let mut last_base = String::new();
        for (key, value) in &counters {
            let (base, _) = split_key(key);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} counter\n"));
                last_base = base.to_owned();
            }
            out.push_str(&format!("{key} {value}\n"));
        }
        for (key, hist) in &histograms {
            let (base, labels) = split_key(key);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} histogram\n"));
                last_base = base.to_owned();
            }
            let with = |extra: &str| match labels {
                Some(l) => format!("{base}{{{l},{extra}}}"),
                None => format!("{base}{{{extra}}}"),
            };
            for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
                out.push_str(&format!(
                    "{} {}\n",
                    with(&format!("le=\"{bound}\"")),
                    hist.cumulative(i)
                ));
            }
            out.push_str(&format!("{} {}\n", with("le=\"+Inf\""), hist.count));
            let plain = |suffix: &str| match labels {
                Some(l) => format!("{base}_{suffix}{{{l}}}"),
                None => format!("{base}_{suffix}"),
            };
            out.push_str(&format!("{} {}\n", plain("sum"), hist.sum));
            out.push_str(&format!("{} {}\n", plain("count"), hist.count));
        }
        out
    }

    /// Renders every metric as a JSON object
    /// (`{"counters": {...}, "histograms": {...}}`).
    pub fn json_snapshot(&self) -> String {
        use crate::chrome::escape_json;
        let counters = self.counters_snapshot();
        let histograms = self.histograms_snapshot();
        let mut out = String::from("{\"counters\":{");
        for (i, (key, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(key, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, hist)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(key, &mut out);
            out.push_str(&format!(
                "\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                hist.count, hist.sum
            ));
            for (j, b) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{b}"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter(RUNS), 0);
        m.inc(RUNS);
        m.inc_by(RUNS, 4);
        assert_eq!(m.counter(RUNS), 5);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let m = MetricsRegistry::new();
        m.inc_labeled(FALLBACKS, "stage", "predictor");
        m.inc_labeled(FALLBACKS, "stage", "predictor");
        m.inc_labeled(FALLBACKS, "stage", "grid-search");
        assert_eq!(m.counter(&labeled(FALLBACKS, "stage", "predictor")), 2);
        assert_eq!(m.counter(&labeled(FALLBACKS, "stage", "grid-search")), 1);
        assert_eq!(m.counter(FALLBACKS), 0, "bare name is a different key");
    }

    #[test]
    fn histogram_buckets_and_cumulative_counts() {
        let m = MetricsRegistry::new();
        for v in [0.0005, 0.05, 0.05, 5.0, 5000.0] {
            m.observe(RUN_TIME_MS, v);
        }
        m.observe(RUN_TIME_MS, f64::NAN); // dropped
        let h = m.histogram(RUN_TIME_MS).expect("histogram exists");
        assert_eq!(h.count, 5);
        assert!((h.sum - 5005.1005).abs() < 1e-9);
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 1, "+Inf bucket");
        assert_eq!(h.cumulative(BUCKET_BOUNDS.len() - 1), 4);
        assert_eq!(h.cumulative(0), 1);
    }

    #[test]
    fn prometheus_text_has_type_lines_and_values() {
        let m = MetricsRegistry::new();
        m.inc(KERNELS_LAUNCHED);
        m.inc_labeled(FALLBACKS, "stage", "tune-budget");
        m.observe_labeled(KERNEL_TIME_MS, "strategy", "thread-vertex", 0.5);
        let text = m.prometheus_text();
        assert!(text.contains("# TYPE ugrapher_kernels_launched_total counter"));
        assert!(text.contains("ugrapher_kernels_launched_total 1"));
        assert!(text.contains("ugrapher_fallbacks_total{stage=\"tune-budget\"} 1"));
        assert!(text.contains("# TYPE ugrapher_kernel_time_ms histogram"));
        assert!(text.contains("ugrapher_kernel_time_ms{strategy=\"thread-vertex\",le=\"1\"} 1"));
        assert!(text.contains("ugrapher_kernel_time_ms_sum{strategy=\"thread-vertex\"} 0.5"));
        assert!(text.contains("ugrapher_kernel_time_ms_count{strategy=\"thread-vertex\"} 1"));
    }

    #[test]
    fn json_snapshot_is_valid_json() {
        let m = MetricsRegistry::new();
        m.inc(RUNS);
        m.observe(RUN_TIME_MS, 1.25);
        let json = m.json_snapshot();
        let v = ugrapher_util::json::parse(&json).expect("snapshot parses");
        assert_eq!(
            v.field("counters")
                .unwrap()
                .field(RUNS)
                .unwrap()
                .as_f64()
                .unwrap(),
            1.0
        );
        let h = v.field("histograms").unwrap().field(RUN_TIME_MS).unwrap();
        assert_eq!(h.field("count").unwrap().as_f64().unwrap(), 1.0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = MetricsRegistry::global() as *const _;
        let b = MetricsRegistry::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn label_values_are_escaped() {
        let key = labeled("m", "k", "has \"quotes\" and \\slash");
        assert_eq!(key, "m{k=\"has \\\"quotes\\\" and \\\\slash\"}");
    }
}
