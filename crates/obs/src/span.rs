//! The span/event model.
//!
//! A [`Span`] is one timed region of work: a kernel launch, a tuner
//! candidate evaluation, a model layer, a whole `Runtime::run` call. Spans
//! carry a static name (the *what*), a [`SpanKind`] (the *layer* of the
//! stack that emitted it), wall-clock timing in nanoseconds relative to the
//! recorder's epoch, the emitting thread, an optional `trace_id` joining
//! the span to a [`crate::Recorder`]-issued request id, and a small list of
//! typed attributes (schedule labels, `SimReport` metrics, …).

/// Which layer of the stack emitted a span. Exported as the Chrome trace
/// `cat` field, so Perfetto can filter per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// `Runtime::run` / `measure_only` / the public API surface.
    Runtime,
    /// Schedule selection: grid-search candidates, predictor scoring.
    Tune,
    /// One simulated kernel launch.
    Kernel,
    /// Functional (semantic) operator execution.
    Exec,
    /// GNN model structure: inference, layers, GEMM, element-wise.
    Model,
    /// Static/dynamic analysis passes.
    Analyze,
    /// Anything else (examples, benchmarks, user code).
    Other,
}

impl SpanKind {
    /// Stable lower-case label (used as the Chrome trace category).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Runtime => "runtime",
            SpanKind::Tune => "tune",
            SpanKind::Kernel => "kernel",
            SpanKind::Exec => "exec",
            SpanKind::Model => "model",
            SpanKind::Analyze => "analyze",
            SpanKind::Other => "other",
        }
    }
}

/// One typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (schedule label, operator name, …).
    Str(String),
    /// A float attribute (times, rates, byte counts).
    F64(f64),
    /// An unsigned integer attribute (counts, ids).
    U64(u64),
    /// A boolean attribute (flags).
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Static span name, e.g. `"sim.kernel"` or `"tune.candidate"`.
    /// Variable detail (operator labels, schedules) goes in `attrs`.
    pub name: &'static str,
    /// The stack layer that emitted the span.
    pub kind: SpanKind,
    /// Request id issued by [`crate::next_trace_id`]; `0` when the span is
    /// not part of a traced request.
    pub trace_id: u64,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense id of the emitting thread (not the OS tid).
    pub tid: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// End time in nanoseconds since the recorder's epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Looks up an attribute by key (first match).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// String form of an attribute, if present.
    pub fn attr_str(&self, key: &str) -> Option<String> {
        self.attr(key).map(|v| v.to_string())
    }
}

/// Dense per-thread ids: Chrome traces want small integer `tid`s, and
/// `std::thread::ThreadId` has no stable public integer form.
pub(crate) fn current_tid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_lookup_and_display() {
        let s = Span {
            name: "x",
            kind: SpanKind::Kernel,
            trace_id: 7,
            start_ns: 10,
            dur_ns: 5,
            tid: 1,
            attrs: vec![
                ("schedule", AttrValue::from("TV_G1_T1")),
                ("time_ms", AttrValue::from(1.5)),
                ("kernels", AttrValue::from(3usize)),
                ("degraded", AttrValue::from(false)),
            ],
        };
        assert_eq!(s.end_ns(), 15);
        assert_eq!(s.attr_str("schedule").as_deref(), Some("TV_G1_T1"));
        assert_eq!(s.attr_str("time_ms").as_deref(), Some("1.5"));
        assert_eq!(s.attr_str("kernels").as_deref(), Some("3"));
        assert_eq!(s.attr_str("degraded").as_deref(), Some("false"));
        assert!(s.attr("missing").is_none());
    }

    #[test]
    fn tids_are_stable_within_a_thread() {
        assert_eq!(current_tid(), current_tid());
        let other = std::thread::spawn(current_tid).join().expect("join");
        assert_ne!(current_tid(), other);
    }

    #[test]
    fn kind_labels_are_distinct() {
        let kinds = [
            SpanKind::Runtime,
            SpanKind::Tune,
            SpanKind::Kernel,
            SpanKind::Exec,
            SpanKind::Model,
            SpanKind::Analyze,
            SpanKind::Other,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}
