//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use ugrapher_tensor::Tensor2;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor2> {
    prop::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Tensor2::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #[test]
    fn add_commutes(a in tensor_strategy(4, 5), b in tensor_strategy(4, 5)) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_self_is_zero(a in tensor_strategy(3, 3)) {
        let z = a.sub(&a).unwrap();
        prop_assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transpose_is_involution(a in tensor_strategy(3, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_left_right(a in tensor_strategy(4, 4)) {
        let i = Tensor2::eye(4);
        prop_assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-4).unwrap());
        prop_assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-4).unwrap());
    }

    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-2).unwrap());
    }

    #[test]
    fn relu_is_idempotent(a in tensor_strategy(5, 5)) {
        let r = a.relu();
        prop_assert_eq!(r.relu(), r);
    }

    #[test]
    fn scale_by_one_is_identity(a in tensor_strategy(2, 8)) {
        prop_assert_eq!(a.scale(1.0), a);
    }
}
