//! Property-based tests for the tensor substrate.

// Test helpers outside #[test] fns are not covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used)]

use ugrapher_tensor::Tensor2;
use ugrapher_util::check::forall;
use ugrapher_util::rng::StdRng;

fn random_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor2 {
    let v: Vec<f32> = (0..rows * cols)
        .map(|_| rng.random_range(-100.0f32..100.0))
        .collect();
    Tensor2::from_vec(rows, cols, v).unwrap()
}

fn eq(a: &Tensor2, b: &Tensor2, what: &str) -> Result<(), String> {
    if a == b {
        Ok(())
    } else {
        Err(format!("{what}: tensors differ"))
    }
}

#[test]
fn add_commutes() {
    forall("add_commutes", 64, |rng| {
        let a = random_tensor(rng, 4, 5);
        let b = random_tensor(rng, 4, 5);
        eq(&a.add(&b).unwrap(), &b.add(&a).unwrap(), "a+b vs b+a")
    });
}

#[test]
fn sub_self_is_zero() {
    forall("sub_self_is_zero", 64, |rng| {
        let a = random_tensor(rng, 3, 3);
        let z = a.sub(&a).unwrap();
        if z.as_slice().iter().all(|&x| x == 0.0) {
            Ok(())
        } else {
            Err("a - a has a non-zero entry".to_string())
        }
    });
}

#[test]
fn transpose_is_involution() {
    forall("transpose_is_involution", 64, |rng| {
        let a = random_tensor(rng, 3, 7);
        eq(&a.transpose().transpose(), &a, "double transpose")
    });
}

#[test]
fn matmul_identity_left_right() {
    forall("matmul_identity", 64, |rng| {
        let a = random_tensor(rng, 4, 4);
        let i = Tensor2::eye(4);
        if !a.matmul(&i).unwrap().approx_eq(&a, 1e-4).unwrap() {
            return Err("a * I != a".to_string());
        }
        if !i.matmul(&a).unwrap().approx_eq(&a, 1e-4).unwrap() {
            return Err("I * a != a".to_string());
        }
        Ok(())
    });
}

#[test]
fn matmul_distributes_over_add() {
    forall("matmul_distributes_over_add", 64, |rng| {
        let a = random_tensor(rng, 3, 4);
        let b = random_tensor(rng, 4, 2);
        let c = random_tensor(rng, 4, 2);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        if lhs.approx_eq(&rhs, 1e-2).unwrap() {
            Ok(())
        } else {
            Err("a(b + c) != ab + ac".to_string())
        }
    });
}

#[test]
fn relu_is_idempotent() {
    forall("relu_is_idempotent", 64, |rng| {
        let a = random_tensor(rng, 5, 5);
        let r = a.relu();
        eq(&r.relu(), &r, "relu(relu(a)) vs relu(a)")
    });
}

#[test]
fn scale_by_one_is_identity() {
    forall("scale_by_one_is_identity", 64, |rng| {
        let a = random_tensor(rng, 2, 8);
        eq(&a.scale(1.0), &a, "a * 1.0")
    });
}
