//! # ugrapher-tensor
//!
//! Dense 2-D tensor substrate used by the uGrapher reproduction.
//!
//! GNN models interleave *graph operators* (the paper's contribution, handled
//! by `ugrapher-core`) with ordinary dense operations — feature projections
//! (GEMM), bias addition, activations. This crate provides:
//!
//! * [`Tensor2`] — a row-major `f32` matrix with shape-checked element-wise
//!   and matrix operations,
//! * [`gemm`] — a straightforward blocked matrix multiply used for functional
//!   correctness,
//! * [`GemmCostModel`] — a roofline-style estimate of how long the same GEMM
//!   would take on a V100 / A100 class GPU, used by the end-to-end benchmarks
//!   (paper Figs. 13–15) where total inference time = GEMM time + graph-op
//!   time.
//!
//! # Example
//!
//! ```
//! use ugrapher_tensor::Tensor2;
//!
//! # fn main() -> Result<(), ugrapher_tensor::TensorError> {
//! let x = Tensor2::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
//! let w = Tensor2::eye(3);
//! let y = x.matmul(&w)?;
//! assert_eq!(y, x);
//! # Ok(())
//! # }
//! ```

mod cost;
mod error;
mod ops;
mod tensor;

pub use cost::{GemmCostModel, GemmDevice};
pub use error::TensorError;
pub use ops::gemm;
pub use tensor::Tensor2;
