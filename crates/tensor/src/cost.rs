//! Roofline-style GEMM cost model.
//!
//! The uGrapher evaluation reports *end-to-end* inference times (paper
//! Figs. 13–15), which mix the graph operators this reproduction optimizes
//! with dense GEMMs executed by cuBLAS in the original setup. We model GEMM
//! time with a classic roofline: `time = max(flop_time, memory_time) +
//! launch_overhead`, with device parameters for the two GPUs the paper uses.
//!
//! The model deliberately captures the one GEMM-related effect the paper
//! leans on: the A100's TF32 tensor cores make GEMM *faster relative to graph
//! ops* than on the V100, which is why uGrapher's end-to-end speedup is
//! higher on the A100 (paper §7.2).

/// GPU parameters relevant to dense GEMM throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmDevice {
    /// Peak sustained FP32 (or TF32 tensor-core) throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Sustained DRAM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed kernel launch + cuBLAS dispatch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Fraction of peak actually achieved by library GEMM (0, 1].
    pub efficiency: f64,
}

impl GemmDevice {
    /// NVIDIA Tesla V100: ~15.7 TFLOP/s FP32, ~900 GB/s HBM2.
    pub fn v100() -> Self {
        Self {
            peak_gflops: 15_700.0,
            mem_bw_gbs: 900.0,
            launch_overhead_us: 5.0,
            efficiency: 0.75,
        }
    }

    /// NVIDIA A100: TF32 tensor cores (~156 TFLOP/s dense, ~60 sustained for
    /// the layer shapes in GNNs), ~1555 GB/s HBM2e.
    pub fn a100() -> Self {
        Self {
            peak_gflops: 60_000.0,
            mem_bw_gbs: 1_555.0,
            launch_overhead_us: 5.0,
            efficiency: 0.70,
        }
    }
}

/// Estimates the wall-clock time of dense GEMMs on a [`GemmDevice`].
///
/// # Example
///
/// ```
/// use ugrapher_tensor::{GemmCostModel, GemmDevice};
///
/// let v100 = GemmCostModel::new(GemmDevice::v100());
/// let a100 = GemmCostModel::new(GemmDevice::a100());
/// // A large GEMM is faster on the A100.
/// assert!(a100.time_ms(4096, 4096, 4096) < v100.time_ms(4096, 4096, 4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmCostModel {
    device: GemmDevice,
}

impl GemmCostModel {
    /// Creates a cost model for the given device.
    pub fn new(device: GemmDevice) -> Self {
        Self { device }
    }

    /// The device parameters this model was built with.
    pub fn device(&self) -> GemmDevice {
        self.device
    }

    /// Estimated time in milliseconds for an `m × k` by `k × n` GEMM.
    ///
    /// Small/skinny GEMMs (common in GNN layers, where `n` is a hidden size
    /// of 16–64) are bandwidth-bound; large square GEMMs approach peak FLOPs.
    pub fn time_ms(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        // Bytes moved: read A (m*k) and B (k*n) once, write C (m*n). For
        // tiled GEMM, A/B re-reads are absorbed by shared memory; this lower
        // bound is the right regime for the skinny GNN-layer shapes.
        let bytes = 4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
        let flop_time_s = flops / (self.device.peak_gflops * 1e9 * self.device.efficiency);
        let mem_time_s = bytes / (self.device.mem_bw_gbs * 1e9);
        flop_time_s.max(mem_time_s) * 1e3 + self.device.launch_overhead_us * 1e-3
    }

    /// Estimated time for a batch of GEMMs with identical shape.
    pub fn batch_time_ms(&self, batch: usize, m: usize, n: usize, k: usize) -> f64 {
        self.time_ms(m, n, k) * batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sized_gemm_is_free() {
        let m = GemmCostModel::new(GemmDevice::v100());
        assert_eq!(m.time_ms(0, 16, 16), 0.0);
    }

    #[test]
    fn time_grows_with_size() {
        let m = GemmCostModel::new(GemmDevice::v100());
        assert!(m.time_ms(1024, 64, 64) < m.time_ms(4096, 64, 64));
        assert!(m.time_ms(1024, 64, 64) < m.time_ms(1024, 256, 64));
    }

    #[test]
    fn skinny_gemm_is_bandwidth_bound() {
        let d = GemmDevice::v100();
        let m = GemmCostModel::new(d);
        // m=100k, n=k=32: arithmetic intensity ~ O(n) -> memory-bound.
        let t = m.time_ms(100_000, 32, 32) - d.launch_overhead_us * 1e-3;
        let bytes = 4.0 * (100_000.0 * 32.0 + 32.0 * 32.0 + 100_000.0 * 32.0);
        let mem_ms = bytes / (d.mem_bw_gbs * 1e9) * 1e3;
        assert!((t - mem_ms).abs() / mem_ms < 1e-6, "expected memory-bound");
    }

    #[test]
    fn a100_beats_v100_on_gemm() {
        let v = GemmCostModel::new(GemmDevice::v100());
        let a = GemmCostModel::new(GemmDevice::a100());
        assert!(a.time_ms(8192, 512, 512) < v.time_ms(8192, 512, 512));
    }

    #[test]
    fn batch_is_linear() {
        let m = GemmCostModel::new(GemmDevice::a100());
        let one = m.time_ms(128, 128, 128);
        assert!((m.batch_time_ms(4, 128, 128, 128) - 4.0 * one).abs() < 1e-9);
    }
}
