//! Element-wise and matrix operations on [`Tensor2`].

use crate::{Tensor2, TensorError};

impl Tensor2 {
    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with("add", other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with("sub", other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with("mul", other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds a row vector (`1 × cols` broadcast) to every row, e.g. a bias.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias` is not `1 × cols`.
    pub fn add_bias(&self, bias: &Self) -> Result<Self, TensorError> {
        if bias.shape() != (1, self.cols()) {
            return Err(TensorError::ShapeMismatch {
                op: "add_bias",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        let mut out = self.clone();
        let b = bias.as_slice();
        for row in out.as_mut_slice().chunks_exact_mut(b.len()) {
            for (x, &bv) in row.iter_mut().zip(b) {
                *x += bv;
            }
        }
        Ok(out)
    }

    /// Matrix multiplication `self × other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        gemm(self, other)
    }

    fn zip_with(
        &self,
        op: &'static str,
        other: &Self,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self, TensorError> {
        self.check_same_shape(op, other)?;
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor2::from_vec(self.rows(), self.cols(), data)
    }
}

/// Blocked matrix multiplication `a × b`.
///
/// Uses an `i-k-j` loop order so the innermost loop streams over contiguous
/// rows of both `b` and the output, which keeps the functional executor fast
/// enough for the full-scale benchmark datasets.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a.cols() == b.rows()`.
///
/// # Example
///
/// ```
/// use ugrapher_tensor::{gemm, Tensor2};
///
/// # fn main() -> Result<(), ugrapher_tensor::TensorError> {
/// let a = Tensor2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor2::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0])?;
/// let c = gemm(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn gemm(a: &Tensor2, b: &Tensor2) -> Result<Tensor2, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor2::zeros(m, n);
    let bd = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (kk, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor2 {
        Tensor2::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn scale_multiplies() {
        let a = t(1, 2, &[1.0, -2.0]);
        assert_eq!(a.scale(3.0).as_slice(), &[3.0, -6.0]);
    }

    #[test]
    fn add_bias_broadcasts() {
        let x = Tensor2::zeros(3, 2);
        let b = t(1, 2, &[1.0, 2.0]);
        let y = x.add_bias(&b).unwrap();
        for r in 0..3 {
            assert_eq!(y.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn add_bias_rejects_bad_shape() {
        let x = Tensor2::zeros(3, 2);
        let b = Tensor2::zeros(1, 3);
        assert!(x.add_bias(&b).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor2::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.matmul(&Tensor2::eye(3)).unwrap(), a);
        assert_eq!(Tensor2::eye(3).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 1, &[1.0, 1.0, 1.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_associativity_small() {
        let a = Tensor2::from_fn(2, 3, |r, c| (r + c) as f32);
        let b = Tensor2::from_fn(3, 2, |r, c| (r * c + 1) as f32);
        let c = Tensor2::from_fn(2, 2, |r, c| (r as f32) - (c as f32));
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(ab_c.approx_eq(&a_bc, 1e-4).unwrap());
    }
}
