use crate::TensorError;

/// A dense, row-major `f32` matrix.
///
/// `Tensor2` is the feature-embedding container of the reproduction: vertex
/// embedding tensors are `(#vertices, feature_dim)` and edge embedding
/// tensors are `(#edges, feature_dim)`, matching the paper's `X[V][F]` /
/// `E[F]` notation (paper §3.1).
///
/// # Example
///
/// ```
/// use ugrapher_tensor::Tensor2;
///
/// let t = Tensor2::from_fn(2, 2, |r, c| (r + c) as f32);
/// assert_eq!(t[(1, 1)], 2.0);
/// assert_eq!(t.row(0), &[0.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor whose element at `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                shape: (rows, cols),
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the feature dimension for embedding tensors).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checks that every element is finite (no NaN, no ±inf).
    ///
    /// Graph aggregations propagate a single poisoned element to every
    /// vertex reachable from it, so the runtime validates operand tensors
    /// up front instead of producing a silently-NaN output.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NonFinite`] locating the first offending
    /// element.
    pub fn validate_finite(&self) -> Result<(), TensorError> {
        match self.data.iter().position(|v| !v.is_finite()) {
            None => Ok(()),
            Some(i) => Err(TensorError::NonFinite {
                row: i.checked_div(self.cols).unwrap_or(0),
                col: i.checked_rem(self.cols).unwrap_or(0),
                value: self.data[i],
            }),
        }
    }

    /// Borrows the backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns an iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise ReLU (`max(x, 0)`).
    pub fn relu(&self) -> Self {
        self.map(|x| x.max(0.0))
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32, TensorError> {
        self.check_same_shape("max_abs_diff", other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Checks approximate equality within `tol`, element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    pub(crate) fn check_same_shape(
        &self,
        op: &'static str,
        other: &Self,
    ) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }
}

impl std::ops::Index<(usize, usize)> for Tensor2 {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Tensor2 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Default for Tensor2 {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_finite_locates_the_poison() {
        let mut t = Tensor2::zeros(3, 4);
        t.validate_finite().unwrap();
        t.as_mut_slice()[6] = f32::NAN; // row 1, col 2
        match t.validate_finite().unwrap_err() {
            TensorError::NonFinite { row, col, value } => {
                assert_eq!((row, col), (1, 2));
                assert!(value.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
        t.as_mut_slice()[6] = f32::INFINITY;
        assert!(t.validate_finite().is_err());
        // Degenerate shapes never divide by zero.
        Tensor2::zeros(0, 0).validate_finite().unwrap();
        Tensor2::zeros(5, 0).validate_finite().unwrap();
    }

    #[test]
    fn zeros_and_shape() {
        let t = Tensor2::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor2::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Tensor2::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::BadBuffer {
                shape: (2, 2),
                len: 5
            }
        );
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor2::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor2::zeros(2, 3);
        t[(1, 2)] = 7.0;
        assert_eq!(t[(1, 2)], 7.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor2::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose()[(4, 2)], t[(2, 4)]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor2::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        assert_eq!(t.relu().as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Tensor2::full(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 1)] = 1.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.5).unwrap());
        assert!(!a.approx_eq(&b, 0.4).unwrap());
    }

    #[test]
    fn shape_mismatch_reported() {
        let a = Tensor2::zeros(2, 2);
        let b = Tensor2::zeros(2, 3);
        assert!(matches!(
            a.max_abs_diff(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let t = Tensor2::from_fn(3, 2, |r, _| r as f32);
        let rows: Vec<_> = t.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[2.0, 2.0]);
    }

    #[test]
    fn row_panics_out_of_bounds() {
        let t = Tensor2::zeros(1, 1);
        let result = std::panic::catch_unwind(|| t.row(1));
        assert!(result.is_err());
    }
}
