use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The shapes of two operands are incompatible for the requested
    /// operation (e.g. element-wise add of a `2×3` and a `3×2`).
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The provided backing buffer does not match `rows * cols`.
    BadBuffer {
        /// Requested shape.
        shape: (usize, usize),
        /// Actual buffer length.
        len: usize,
    },
    /// A tensor element is NaN or infinite. Produced by
    /// [`crate::Tensor2::validate_finite`]; a single NaN fed into an
    /// aggregation would silently poison every downstream vertex feature.
    NonFinite {
        /// Row of the first offending element.
        row: usize,
        /// Column of the first offending element.
        col: usize,
        /// The offending value (NaN or ±inf).
        value: f32,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BadBuffer { shape, len } => write!(
                f,
                "buffer of length {len} cannot back a {}x{} tensor",
                shape.0, shape.1
            ),
            TensorError::NonFinite { row, col, value } => {
                write!(f, "non-finite element {value} at ({row}, {col})")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: (2, 3),
            rhs: (3, 2),
        };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("3x2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
