//! Integration tests for the serving engine: saturation shedding, plan
//! cache invalidation on graph mutation, and determinism of concurrent
//! cache hits.

use std::sync::Arc;
use std::time::Duration;

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::Runtime;
use ugrapher_core::cache::PlanKey;
use ugrapher_core::codegen_cuda::emit_ir;
use ugrapher_core::ir::DeterminismClass;
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::generate::uniform_random;
use ugrapher_graph::Graph;
use ugrapher_serve::{ServeConfig, ServeEngine, ServeError, ServeRequest};
use ugrapher_sim::DeviceConfig;
use ugrapher_tensor::Tensor2;

const FEAT: usize = 8;

fn engine(config: ServeConfig) -> ServeEngine {
    ServeEngine::start(Runtime::new(DeviceConfig::v100()), config)
}

fn request(graph: &Arc<Graph>) -> ServeRequest {
    let x = Arc::new(Tensor2::full(graph.num_vertices(), FEAT, 1.0));
    ServeRequest::fused(Arc::clone(graph), OpInfo::aggregation_sum(), x)
}

/// Saturation: queue capacity 1 and eight concurrent submitters hammering
/// a single worker. Excess load must shed with a typed error — never a
/// panic, never a deadlock — and the engine must keep serving afterwards.
#[test]
fn saturation_sheds_with_typed_error() {
    let engine = engine(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let graph = Arc::new(uniform_random(300, 1500, 11));
    // Auto-tuned (no explicit schedule): the first miss runs the full
    // grid search, keeping the lone worker busy while submitters flood.
    let req = request(&graph);

    let mut served = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|scope| {
        let outcomes: Vec<_> = (0..8)
            .map(|_| {
                let req = req.clone();
                let engine = &engine;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for _ in 0..4 {
                        local.push(match engine.submit(req.clone()) {
                            Ok(pending) => pending.wait(),
                            Err(e) => Err(e),
                        });
                    }
                    local
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().expect("submitter must not panic"))
            .collect();
        for outcome in outcomes {
            match outcome {
                Ok(resp) => {
                    served += 1;
                    assert!(resp.total_ms >= resp.queue_ms);
                }
                Err(ServeError::Overloaded { queue_capacity }) => {
                    shed += 1;
                    assert_eq!(queue_capacity, 1);
                }
                Err(other) => panic!("unexpected verdict under saturation: {other:?}"),
            }
        }
    });
    assert!(served >= 1, "at least the head-of-line request is served");
    assert!(
        shed >= 1,
        "32 submissions against a capacity-1 queue must shed some load \
         (served {served}, shed {shed})"
    );
    // The engine survives saturation.
    assert!(engine.run_sync(request(&graph)).is_ok());
}

/// Cache invalidation: a mutated graph (one extra edge — changed nnz, same
/// vertex count) must miss the plan cache, and explicit invalidation must
/// drop the stale entries.
#[test]
fn mutated_graph_misses_the_plan_cache() {
    let engine = engine(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut src: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
    let mut dst: Vec<u32> = vec![1, 2, 3, 4, 5, 0];
    let g1 = Arc::new(Graph::from_edges(16, src.clone(), dst.clone()).expect("valid graph"));
    src.push(7);
    dst.push(3);
    let g2 = Arc::new(Graph::from_edges(16, src, dst).expect("valid graph"));
    assert_eq!(g1.num_vertices(), g2.num_vertices());
    assert_ne!(g1.num_edges(), g2.num_edges());
    assert_ne!(g1.structural_fingerprint(), g2.structural_fingerprint());

    let sched = ParallelInfo::basic(Strategy::ThreadVertex);
    let cold = engine
        .run_sync(request(&g1).with_schedule(sched))
        .expect("cold request");
    assert!(!cold.result.plan_cache_hit);
    let warm = engine
        .run_sync(request(&g1).with_schedule(sched))
        .expect("warm request");
    assert!(warm.result.plan_cache_hit, "same graph version hits");

    let mutated = engine
        .run_sync(request(&g2).with_schedule(sched))
        .expect("mutated-graph request");
    assert!(
        !mutated.result.plan_cache_hit,
        "changed nnz with the same vertex count must be a miss"
    );

    // Explicit invalidation of g1's version drops its entry; the next g1
    // request recompiles.
    assert_eq!(
        engine
            .plan_cache()
            .invalidate_graph(g1.structural_fingerprint()),
        1
    );
    let recompiled = engine
        .run_sync(request(&g1).with_schedule(sched))
        .expect("post-invalidation request");
    assert!(!recompiled.result.plan_cache_hit);

    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.invalidations, 1);
}

/// Concurrent cache hits must be deterministic: every hit of a
/// Sequential-determinism kernel returns bitwise-identical results, and
/// the cached IR emits byte-identical CUDA from every thread.
#[test]
fn concurrent_hits_are_bitwise_deterministic() {
    let engine = engine(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let graph = Arc::new(uniform_random(200, 1000, 13));
    // Thread-vertex aggregation lowers to a sequential (atomic-free)
    // reduction — the class that guarantees bitwise-identical replays.
    let sched = ParallelInfo::basic(Strategy::ThreadVertex);
    let warmup = engine
        .run_sync(request(&graph).with_schedule(sched))
        .expect("warmup");
    assert_eq!(
        warmup.result.robustness.determinism,
        Some(DeterminismClass::Sequential)
    );
    let baseline = warmup.result.output.clone();

    let key = PlanKey {
        op: OpInfo::aggregation_sum(),
        explicit: Some(sched),
        graph_fingerprint: graph.structural_fingerprint(),
        feat: FEAT,
        scalars: (false, false),
    };
    let baseline_cuda = emit_ir(
        &engine
            .plan_cache()
            .get(&key)
            .expect("warmup populated the cache")
            .ir,
    );

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let graph = Arc::clone(&graph);
                let engine = &engine;
                scope.spawn(move || {
                    let resp = engine
                        .run_sync(request(&graph).with_schedule(sched))
                        .expect("warm request");
                    let cuda = emit_ir(
                        &engine
                            .plan_cache()
                            .get(&key)
                            .expect("entry stays resident")
                            .ir,
                    );
                    (resp, cuda)
                })
            })
            .collect();
        for handle in handles {
            let (resp, cuda) = handle.join().expect("no panic under concurrency");
            assert!(resp.result.plan_cache_hit, "post-warmup requests hit");
            assert_eq!(
                resp.result.output, baseline,
                "Sequential kernels replay bitwise-identically"
            );
            assert_eq!(cuda, baseline_cuda, "cached IR emits byte-identical CUDA");
        }
    });

    let stats = engine.cache_stats();
    assert!(stats.hits >= 8, "every concurrent request hit: {stats:?}");
}

/// A request whose deadline expires while it waits behind slow work is
/// dropped without executing and reports the miss as a typed error.
#[test]
fn queued_request_past_deadline_is_shed() {
    let engine = engine(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let graph = Arc::new(uniform_random(300, 1500, 17));
    // Head-of-line: auto-tuned miss, occupies the only worker.
    let slow = engine.submit(request(&graph)).expect("admitted");
    // Queued behind it with an impossible deadline.
    let doomed = engine
        .submit(request(&graph).with_deadline(Duration::from_nanos(1)))
        .expect("admitted");
    assert!(slow.wait().is_ok());
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}
