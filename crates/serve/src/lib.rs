//! # ugrapher-serve
//!
//! A concurrent serving engine over the [`ugrapher_core::api::Runtime`].
//!
//! The paper's runtime executes one operator per call; a deployment serves
//! a *stream* of operator requests (the message-passing steps of many
//! concurrent GNN inferences) against a small set of graph versions. This
//! crate adds the serving layer:
//!
//! * a **bounded request queue** drained by a std-only worker pool, each
//!   worker owning a [`Runtime`](ugrapher_core::api::Runtime) clone that
//!   shares one compiled-plan cache
//!   ([`ugrapher_core::cache::PlanCache`]) — warm requests skip schedule
//!   selection, plan generation and IR lowering entirely;
//! * **admission control**: a full queue sheds the request *at submit
//!   time* with [`ServeError::Overloaded`] instead of queueing unbounded
//!   work;
//! * **per-request deadlines**: a request whose deadline passes while it
//!   waits in the queue is dropped without executing
//!   ([`ServeError::DeadlineExceeded`]), and one that finishes late
//!   reports the same error rather than pretending it met its contract;
//! * **observability**: every request carries a trace id joined with the
//!   spans the runtime emits, and the engine feeds the process-global
//!   metrics registry (queue-depth / queue-wait / latency histograms,
//!   admission and shed counters — see [`ugrapher_obs::metrics`]).
//!
//! # Example
//!
//! ```
//! use ugrapher_core::abstraction::OpInfo;
//! use ugrapher_core::api::Runtime;
//! use ugrapher_graph::generate::ring;
//! use ugrapher_serve::{ServeConfig, ServeEngine, ServeRequest};
//! use ugrapher_sim::DeviceConfig;
//! use ugrapher_tensor::Tensor2;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = ServeEngine::start(
//!     Runtime::new(DeviceConfig::v100()),
//!     ServeConfig::default(),
//! );
//! let graph = Arc::new(ring(16));
//! let x = Arc::new(Tensor2::full(16, 8, 1.0));
//! let req = ServeRequest::fused(graph, OpInfo::aggregation_sum(), x);
//! let resp = engine.submit(req)?.wait()?;
//! assert_eq!(resp.result.output[(0, 0)], 1.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod engine;
mod error;

pub use engine::{PendingResponse, ServeConfig, ServeEngine, ServeRequest, ServeResponse};
pub use error::ServeError;
