//! The worker-pool serving engine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ugrapher_core::abstraction::OpInfo;
use ugrapher_core::api::{GraphTensor, OpArgs, Runtime, UGrapherResult};
use ugrapher_core::cache::{CacheStats, PlanCache};
use ugrapher_core::exec::OpOperands;
use ugrapher_core::schedule::ParallelInfo;
use ugrapher_graph::Graph;
use ugrapher_obs::{metrics, MetricsRegistry};
use ugrapher_tensor::Tensor2;

use crate::ServeError;

/// Sizing and policy knobs of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue. Clamped to at least 1.
    pub workers: usize,
    /// Bounded queue capacity; a submit against a full queue is shed with
    /// [`ServeError::Overloaded`]. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Capacity of the compiled-plan cache the engine installs when the
    /// supplied runtime does not already carry one.
    pub plan_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue_capacity: 64,
            default_deadline: None,
            plan_cache_capacity: PlanCache::DEFAULT_CAPACITY,
        }
    }
}

/// One graph-operator request. Owns its operands (`Arc`-shared graph and
/// tensors), so submitters keep no borrow into the engine.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The graph to execute against.
    pub graph: Arc<Graph>,
    /// Operator semantics.
    pub op: OpInfo,
    /// Operand A (present iff `op.a != Null`).
    pub a: Option<Arc<Tensor2>>,
    /// Operand B (present iff `op.b != Null`).
    pub b: Option<Arc<Tensor2>>,
    /// Explicit schedule, or `None` for auto-tuning (memoized in the plan
    /// cache after the first miss).
    pub parallel: Option<ParallelInfo>,
    /// Per-request deadline measured from admission; `None` uses the
    /// engine's [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A unary request (operand B is `Null`), auto-tuned schedule.
    pub fn fused(graph: Arc<Graph>, op: OpInfo, a: Arc<Tensor2>) -> Self {
        Self {
            graph,
            op,
            a: Some(a),
            b: None,
            parallel: None,
            deadline: None,
        }
    }

    /// A binary request with both operands, auto-tuned schedule.
    pub fn binary(graph: Arc<Graph>, op: OpInfo, a: Arc<Tensor2>, b: Arc<Tensor2>) -> Self {
        Self {
            graph,
            op,
            a: Some(a),
            b: Some(b),
            parallel: None,
            deadline: None,
        }
    }

    /// Pins an explicit schedule instead of auto-tuning.
    pub fn with_schedule(mut self, parallel: ParallelInfo) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Sets a per-request deadline measured from admission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A successfully served request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The runtime's result (output tensor, simulated performance report,
    /// executed schedule, robustness report, `plan_cache_hit` flag).
    pub result: UGrapherResult,
    /// Trace id stamped on the request at admission; equals
    /// `result.trace_id` and every span the runtime emitted for it.
    pub trace_id: u64,
    /// Time the request spent queued before a worker picked it up, ms.
    pub queue_ms: f64,
    /// End-to-end latency from admission to completion, ms.
    pub total_ms: f64,
}

struct Job {
    request: ServeRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    trace_id: u64,
    reply: mpsc::SyncSender<Result<ServeResponse, ServeError>>,
}

/// A submitted request's pending reply; [`PendingResponse::wait`] blocks
/// until a worker resolves it.
#[derive(Debug)]
pub struct PendingResponse {
    trace_id: u64,
    rx: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl PendingResponse {
    /// The trace id stamped on the request at admission (usable to find
    /// its spans even before the reply arrives).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Blocks until the request completes or is shed. A severed channel
    /// (engine dropped mid-request) reports [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<ServeResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    shutdown: AtomicBool,
}

/// The serving engine: a bounded queue drained by a pool of worker
/// threads, each owning a [`Runtime`] clone that shares one
/// [`PlanCache`]. See the crate docs for the full contract.
///
/// Dropping the engine shuts it down: workers finish their in-flight
/// request, queued-but-unstarted requests are shed with
/// [`ServeError::ShuttingDown`], and all threads are joined.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    plan_cache: Arc<PlanCache>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("default_deadline", &self.default_deadline)
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Starts the worker pool. If `runtime` does not already carry a
    /// compiled-plan cache, one of [`ServeConfig::plan_cache_capacity`]
    /// entries is installed; either way all workers share it.
    pub fn start(runtime: Runtime, config: ServeConfig) -> Self {
        let plan_cache = match runtime.plan_cache() {
            Some(cache) => Arc::clone(cache),
            None => PlanCache::shared(config.plan_cache_capacity),
        };
        let runtime = runtime.with_plan_cache(Arc::clone(&plan_cache));
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let runtime = runtime.clone();
                std::thread::Builder::new()
                    .name(format!("ugrapher-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &runtime))
                    .unwrap_or_else(|e| panic!("failed to spawn serving worker: {e}"))
            })
            .collect();
        Self {
            shared,
            workers,
            queue_capacity: config.queue_capacity.max(1),
            default_deadline: config.default_deadline,
            plan_cache,
        }
    }

    /// Admits a request or sheds it immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began. Runtime-level
    /// failures surface later, from [`PendingResponse::wait`].
    pub fn submit(&self, request: ServeRequest) -> Result<PendingResponse, ServeError> {
        let metrics_registry = MetricsRegistry::global();
        if self.shared.shutdown.load(Ordering::Acquire) {
            metrics_registry.inc_labeled(metrics::SERVE_SHED, "reason", "shutdown");
            return Err(ServeError::ShuttingDown);
        }
        let now = Instant::now();
        let deadline = request.deadline.or(self.default_deadline).map(|d| now + d);
        let trace_id = ugrapher_obs::next_trace_id();
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            request,
            enqueued: now,
            deadline,
            trace_id,
            reply: tx,
        };
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.queue_capacity {
                metrics_registry.inc_labeled(metrics::SERVE_SHED, "reason", "overloaded");
                return Err(ServeError::Overloaded {
                    queue_capacity: self.queue_capacity,
                });
            }
            queue.push_back(job);
            metrics_registry.observe(metrics::SERVE_QUEUE_DEPTH, queue.len() as f64);
        }
        metrics_registry.inc(metrics::SERVE_REQUESTS);
        self.shared.not_empty.notify_one();
        Ok(PendingResponse { trace_id, rx })
    }

    /// Submits and blocks for the reply in one call.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]: shed at admission, deadline miss, shutdown, or
    /// a runtime failure.
    pub fn run_sync(&self, request: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// The compiled-plan cache shared by every worker.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Point-in-time counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Number of requests currently queued (excludes in-flight work).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        for handle in self.workers.drain(..) {
            // A panicked worker already fed a poisoned-lock recovery path;
            // nothing useful to do with its payload here.
            let _ = handle.join();
        }
        // Workers are gone; anything still queued is shed.
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        for job in queue.drain(..) {
            MetricsRegistry::global().inc_labeled(metrics::SERVE_SHED, "reason", "shutdown");
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

fn worker_loop(shared: &Shared, runtime: &Runtime) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => process(runtime, job),
            None => break,
        }
    }
}

/// Executes one dequeued job and resolves its reply channel. Deadlines are
/// enforced twice: a request already late at dequeue is shed without
/// executing, and one that finishes late reports the miss instead of
/// pretending it met its contract.
fn process(runtime: &Runtime, job: Job) {
    let metrics_registry = MetricsRegistry::global();
    let started = Instant::now();
    if let Some(deadline) = job.deadline {
        if started > deadline {
            let late_by_ms = started.duration_since(deadline).as_millis() as u64;
            metrics_registry.inc_labeled(metrics::SERVE_SHED, "reason", "deadline");
            let _ = job
                .reply
                .send(Err(ServeError::DeadlineExceeded { late_by_ms }));
            return;
        }
    }
    let queue_ms = started.duration_since(job.enqueued).as_secs_f64() * 1e3;
    let graph_tensor = GraphTensor::new(job.request.graph.as_ref());
    let args = OpArgs {
        op: job.request.op,
        operands: OpOperands {
            a: job.request.a.as_deref(),
            b: job.request.b.as_deref(),
        },
    };
    let outcome =
        runtime.run_with_trace_id(&graph_tensor, &args, job.request.parallel, job.trace_id);
    let finished = Instant::now();
    let total_ms = finished.duration_since(job.enqueued).as_secs_f64() * 1e3;
    let outcome = match outcome {
        Ok(result) => match job.deadline {
            Some(deadline) if finished > deadline => {
                let late_by_ms = finished.duration_since(deadline).as_millis() as u64;
                metrics_registry.inc_labeled(metrics::SERVE_SHED, "reason", "deadline");
                Err(ServeError::DeadlineExceeded { late_by_ms })
            }
            _ => {
                metrics_registry.observe(metrics::SERVE_QUEUE_MS, queue_ms);
                metrics_registry.observe(metrics::SERVE_LATENCY_MS, total_ms);
                Ok(ServeResponse {
                    result,
                    trace_id: job.trace_id,
                    queue_ms,
                    total_ms,
                })
            }
        },
        Err(e) => Err(ServeError::Runtime(e)),
    };
    let _ = job.reply.send(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::schedule::Strategy;
    use ugrapher_graph::generate::ring;
    use ugrapher_sim::DeviceConfig;

    fn engine(config: ServeConfig) -> ServeEngine {
        ServeEngine::start(Runtime::new(DeviceConfig::v100()), config)
    }

    fn request() -> ServeRequest {
        ServeRequest::fused(
            Arc::new(ring(32)),
            OpInfo::aggregation_sum(),
            Arc::new(Tensor2::full(32, 8, 1.0)),
        )
        .with_schedule(ParallelInfo::basic(Strategy::ThreadVertex))
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = engine(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let resp = engine.run_sync(request()).expect("request served");
        assert_eq!(resp.result.output[(0, 0)], 1.0);
        assert_eq!(resp.trace_id, resp.result.trace_id);
        assert!(resp.total_ms >= resp.queue_ms);
        assert!(!resp.result.plan_cache_hit, "first request is a miss");
        let warm = engine.run_sync(request()).expect("request served");
        assert!(warm.result.plan_cache_hit, "second request hits the cache");
    }

    #[test]
    fn expired_deadline_is_typed_not_fatal() {
        let engine = engine(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let err = engine
            .run_sync(request().with_deadline(Duration::ZERO))
            .expect_err("zero deadline cannot be met");
        assert!(
            matches!(err, ServeError::DeadlineExceeded { .. }),
            "{err:?}"
        );
        // The engine keeps serving afterwards.
        assert!(engine.run_sync(request()).is_ok());
    }

    #[test]
    fn runtime_errors_pass_through_typed() {
        let engine = engine(ServeConfig::default());
        let mut req = request();
        req.a = Some(Arc::new(Tensor2::full(7, 8, 1.0))); // wrong row count
        let err = engine.run_sync(req).expect_err("mismatched operand");
        assert!(matches!(err, ServeError::Runtime(_)), "{err:?}");
    }

    #[test]
    fn drop_sheds_queued_requests_and_joins() {
        let engine = engine(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServeConfig::default()
        });
        // An auto-tuned request occupies the single worker long enough for
        // queued work to still be pending at drop.
        let mut slow = request();
        slow.parallel = None;
        let mut pending = Vec::new();
        for _ in 0..4 {
            if let Ok(p) = engine.submit(slow.clone()) {
                pending.push(p);
            }
        }
        drop(engine);
        for p in pending {
            match p.wait() {
                Ok(_) | Err(ServeError::ShuttingDown) => {}
                Err(other) => panic!("unexpected shed verdict: {other:?}"),
            }
        }
    }
}
