//! Typed serving failures.

use ugrapher_core::CoreError;

/// Why the serving engine refused or failed a request.
///
/// Shedding is *typed*: saturation and deadline misses are distinct,
/// recoverable conditions a client can react to (back off, retry against
/// another replica, relax the deadline) — never a panic or a silent drop.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded request queue was full at admission; the request was
    /// shed without queueing. Back off and retry.
    Overloaded {
        /// The queue capacity that was exhausted.
        queue_capacity: usize,
    },
    /// The request's deadline expired — either while it waited in the
    /// queue (it was dropped without executing) or because execution
    /// finished after the deadline had already passed.
    DeadlineExceeded {
        /// How long past the deadline the request was when the engine
        /// gave up on it, in milliseconds.
        late_by_ms: u64,
    },
    /// The engine is shutting down and no longer accepts or executes
    /// requests.
    ShuttingDown,
    /// The underlying runtime rejected or failed the request (invalid
    /// operator, broken graph, mismatched operands, internal panic —
    /// see [`CoreError`]).
    Runtime(CoreError),
}

impl ServeError {
    /// The metric label recorded when this error sheds a request
    /// (`ugrapher_serve_shed_total{reason=...}`).
    pub fn shed_reason(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::ShuttingDown => "shutdown",
            ServeError::Runtime(_) => "runtime",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_capacity } => write!(
                f,
                "request shed: queue full (capacity {queue_capacity}); back off and retry"
            ),
            ServeError::DeadlineExceeded { late_by_ms } => {
                write!(f, "deadline exceeded by {late_by_ms} ms")
            }
            ServeError::ShuttingDown => write!(f, "serving engine is shutting down"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_reasons_are_stable_labels() {
        assert_eq!(
            ServeError::Overloaded { queue_capacity: 1 }.shed_reason(),
            "overloaded"
        );
        assert_eq!(
            ServeError::DeadlineExceeded { late_by_ms: 5 }.shed_reason(),
            "deadline"
        );
        assert_eq!(ServeError::ShuttingDown.shed_reason(), "shutdown");
    }

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded { queue_capacity: 4 };
        assert!(e.to_string().contains("capacity 4"));
        assert!(e.to_string().contains("retry"));
    }
}
