//! Minimal JSON support: a value type, a strict parser, a writer, and
//! `ToJson`/`FromJson` traits for the types the workspace persists
//! (trained predictors, benchmark sweep results).
//!
//! Numbers are stored as `f64`; Rust's `Display` for floats emits the
//! shortest string that round-trips, so save/load is lossless for every
//! finite value. Non-finite numbers serialize as `null` (JSON has no
//! NaN/Infinity) and fail typed decoding, which is the behavior we want
//! for robustness: a corrupted model file surfaces as an error.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Fetch a required object field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // Emit integers without a trailing ".0" (serde_json style).
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from parsing or typed decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub reason: String,
}

impl JsonError {
    pub fn new(reason: impl Into<String>) -> Self {
        JsonError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(JsonError::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our payloads;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .expect("peeked byte guarantees at least one code point");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Types that can serialize themselves to a JSON [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Types that can decode themselves from a JSON [`Value`].
pub trait FromJson: Sized {
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

macro_rules! num_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| JsonError::new("expected number"))
            }
        }
    )*};
}

num_json!(f64, f32, u64, u32, usize, i64, i32);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Serialize any `ToJson` type to a compact string.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Parse and decode a typed value from a JSON string.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn round_trip_f64_exactly() {
        for x in [0.1, -1.0e-12, 123456.789, f64::MAX, f64::MIN_POSITIVE] {
            let s = Value::Num(x).to_string_compact();
            assert_eq!(parse(&s).unwrap().as_f64().unwrap(), x, "via `{s}`");
        }
    }

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-0.5}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(parse(text).is_err(), "should reject `{text}`");
        }
    }

    #[test]
    fn typed_vec_round_trip() {
        let rows: Vec<Vec<String>> = vec![vec!["a".into(), "b".into()], vec!["c".into()]];
        let s = to_string(&rows);
        let back: Vec<Vec<String>> = from_str(&s).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn non_finite_becomes_null_and_fails_decode() {
        let s = to_string(&f64::NAN);
        assert_eq!(s, "null");
        assert!(from_str::<f64>(&s).is_err());
    }
}
