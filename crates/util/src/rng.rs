//! Deterministic pseudo-random number generation with a `rand`-style API.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, which is the
//! standard recipe for expanding a 64-bit seed into the 256-bit state.
//! The surface mirrors the subset of `rand` 0.9 the workspace uses —
//! `StdRng::seed_from_u64`, `random::<T>()` and `random_range(..)` — so
//! call sites stay idiomatic while the build remains dependency-free.

use std::ops::{Range, RangeInclusive};

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographically secure; intended for synthetic graph generation,
/// sampled tuning and property tests where reproducibility from a seed is
/// what matters.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Build a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64 bits from the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Sample a value of type `T` from its natural full distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over the full range,
    /// `bool` fair coin).
    pub fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics on an empty range, matching `rand`'s contract.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Types that can be sampled from their "natural" distribution.
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Standard for i64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types `random_range` accepts, mirroring `rand::distr::uniform`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut StdRng) -> T;
}

/// Unbiased-enough bounded sampling via 128-bit widening multiply.
fn bounded(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range {}..={}", lo, hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let u: $t = rng.random();
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range {}..={}", lo, hi);
                let u: $t = rng.random();
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f64, f32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let a = rng.random_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&b));
            let c = rng.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&c));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }
}
