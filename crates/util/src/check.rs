//! A tiny deterministic property-test harness.
//!
//! Stands in for `proptest` (unavailable offline): a property is a
//! closure over a seeded [`StdRng`]; [`forall`] runs it for `cases`
//! deterministic seeds, catching panics so a failure reports the exact
//! seed to reproduce with. There is no shrinking — cases are kept small
//! by construction instead.

use crate::rng::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `property` for `cases` deterministic seeds derived from `name`.
///
/// The property returns `Err(reason)` for a clean failure; panics inside
/// the property are caught and reported the same way. On any failure this
/// panics with the property name and the case seed so the run can be
/// reproduced exactly.
pub fn forall<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    // Derive a stable base seed from the property name so distinct
    // properties explore distinct streams.
    let base: u64 = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    for case in 0..cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(reason)) => {
                panic!("property `{name}` failed on case {case} (seed {seed:#x}): {reason}")
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                panic!("property `{name}` panicked on case {case} (seed {seed:#x}): {msg}");
            }
        }
    }
}

/// Assert two f32 values are close; returns `Err` with context otherwise.
pub fn close(a: f32, b: f32, tol: f32, context: &str) -> Result<(), String> {
    if (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())) {
        Ok(())
    } else {
        Err(format!("{context}: {a} vs {b} (tol {tol})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        forall("count", 32, |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 32);
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_reports_seed() {
        forall("always-false", 4, |_| Err("nope".to_string()));
    }

    #[test]
    #[should_panic(expected = "panicked on case")]
    fn panicking_property_is_caught() {
        forall("panics", 4, |_| panic!("boom"));
    }

    #[test]
    fn deterministic_streams() {
        let mut first: Vec<u64> = Vec::new();
        forall("stream", 8, |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        forall("stream", 8, |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    fn close_accepts_near_and_rejects_far() {
        assert!(close(1.0, 1.0 + 1e-6, 1e-4, "near").is_ok());
        assert!(close(1.0, 2.0, 1e-4, "far").is_err());
    }
}
