//! # ugrapher-util
//!
//! Small dependency-free utilities shared across the workspace:
//!
//! * [`rng`] — a deterministic xoshiro256++ PRNG with a `rand`-style
//!   surface (`random`, `random_range`), so the workspace builds with no
//!   external crates (the build environment is fully offline);
//! * [`json`] — a minimal JSON value type, parser and writer plus
//!   [`json::ToJson`]/[`json::FromJson`] traits for the handful of types
//!   the repo persists (trained predictors, benchmark results);
//! * [`check`] — a tiny deterministic property-test harness standing in
//!   for `proptest`: run N seeded cases, report the failing seed.

pub mod check;
pub mod json;
pub mod rng;
