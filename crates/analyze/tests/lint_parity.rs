//! Regression test for the retirement of the text-based CUDA lint
//! (`crates/analyze/src/codegen.rs`, deleted in favor of
//! [`ugrapher_analyze::lint_ir`]).
//!
//! The legacy lint audited the emitted CUDA *string*; the IR lint audits
//! the typed [`KernelIr`] the emitter renders from. This test inlines the
//! legacy string heuristics verbatim as an oracle and proves the two
//! produce identical verdicts — over every freshly lowered registry
//! combination *and* over corrupted kernels exhibiting each defect class
//! the text lint was built to catch. Keep this test: it is the evidence
//! that deleting the text lint lost no detection power.

#![allow(clippy::unwrap_used)]

use ugrapher_core::abstraction::{registry, OpInfo, TensorType};
use ugrapher_core::analysis::race_verdict;
use ugrapher_core::codegen_cuda::emit_ir;
use ugrapher_core::ir::{KernelIr, Stmt, UpdateKind, Value};
use ugrapher_core::lower::lower;
use ugrapher_core::plan::KernelPlan;
use ugrapher_core::schedule::{ParallelInfo, Strategy};

use ugrapher_analyze::{lint_ir, IrFinding};

/// The canonical verdict both linters are mapped into for comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Verdict {
    ResidualNullLoad {
        occurrences: usize,
    },
    UnusedOperandBuffer {
        operand: &'static str,
    },
    AtomicContradiction {
        verdict_atomic: bool,
        body_atomic: bool,
    },
    NothingToAudit,
}

/// The legacy text lint, inlined verbatim from the deleted
/// `codegen::lint_cuda` (modulo the finding enum, which is mapped straight
/// into [`Verdict`]).
fn legacy_text_lint(source: &str, op: &OpInfo, parallel: &ParallelInfo) -> Vec<Verdict> {
    let mut findings = Vec::new();
    let Some(body) = source.split("__global__").nth(1) else {
        return vec![Verdict::NothingToAudit];
    };

    let occurrences = body.matches("0.0f").count();
    if occurrences > 0 {
        findings.push(Verdict::ResidualNullLoad { occurrences });
    }

    for (operand, ttype) in [("A", op.a), ("B", op.b)] {
        if ttype != TensorType::Null && !body.contains(&format!("{operand}[")) {
            findings.push(Verdict::UnusedOperandBuffer { operand });
        }
    }

    let body_atomic = body.contains("atomicAdd(") || body.contains("atomicCAS(");
    let verdict_atomic = race_verdict(op, parallel).needs_atomic;
    if body_atomic != verdict_atomic {
        findings.push(Verdict::AtomicContradiction {
            verdict_atomic,
            body_atomic,
        });
    }

    findings
}

fn canonical_ir(findings: Vec<IrFinding>) -> Vec<Verdict> {
    findings
        .into_iter()
        .map(|f| match f {
            IrFinding::ResidualNullLoad { occurrences } => {
                Verdict::ResidualNullLoad { occurrences }
            }
            IrFinding::UnusedOperandBuffer { operand } => Verdict::UnusedOperandBuffer { operand },
            IrFinding::AtomicContradiction {
                verdict_atomic,
                body_atomic,
            } => Verdict::AtomicContradiction {
                verdict_atomic,
                body_atomic,
            },
            IrFinding::MissingStore => Verdict::NothingToAudit,
        })
        .collect()
}

fn sorted(mut v: Vec<Verdict>) -> Vec<Verdict> {
    v.sort();
    v
}

/// Renders `ir` and asserts the text oracle and the IR lint agree on it.
fn assert_parity(ir: &KernelIr, context: &str) {
    let source = emit_ir(ir);
    let text = sorted(legacy_text_lint(&source, &ir.op, &ir.parallel));
    let typed = sorted(canonical_ir(lint_ir(ir)));
    assert_eq!(text, typed, "lint parity broke for {context}");
}

#[test]
fn whole_registry_verdicts_identical_and_clean() {
    for op in registry::all_valid_ops() {
        for strategy in Strategy::ALL {
            for (grouping, tiling) in [(1, 1), (4, 2), (64, 8)] {
                let parallel = ParallelInfo::new(strategy, grouping, tiling);
                let plan = KernelPlan::generate(op, parallel, 300, 2400, 8).unwrap();
                let ir = lower(&plan).unwrap();
                assert_parity(&ir, &format!("{op:?} under {parallel}"));
                assert_eq!(
                    lint_ir(&ir),
                    vec![],
                    "fresh lowering must be clean: {op:?} under {parallel}"
                );
            }
        }
    }
}

fn lowered(op: OpInfo, strategy: Strategy) -> KernelIr {
    let plan = KernelPlan::generate(op, ParallelInfo::basic(strategy), 300, 2400, 8).unwrap();
    lower(&plan).unwrap()
}

#[test]
fn stripped_atomics_agree() {
    let mut ir = lowered(OpInfo::aggregation_sum(), Strategy::ThreadEdge);
    if let Stmt::Store(s) = ir.body.last_mut().unwrap() {
        s.update = UpdateKind::Accumulate;
    }
    assert_parity(&ir, "stripped atomics");
    assert!(
        canonical_ir(lint_ir(&ir)).contains(&Verdict::AtomicContradiction {
            verdict_atomic: true,
            body_atomic: false,
        })
    );
}

#[test]
fn spurious_atomics_agree() {
    let mut ir = lowered(OpInfo::aggregation_sum(), Strategy::ThreadVertex);
    if let Stmt::Store(s) = ir.body.last_mut().unwrap() {
        s.update = UpdateKind::AtomicAdd;
    }
    assert_parity(&ir, "spurious atomics");
    assert!(
        canonical_ir(lint_ir(&ir)).contains(&Verdict::AtomicContradiction {
            verdict_atomic: false,
            body_atomic: true,
        })
    );
}

#[test]
fn spurious_cas_atomics_agree() {
    // The text oracle's second atomic marker (`atomicCAS(`) must map to
    // the same verdict as the IR's CAS update kinds.
    let mut ir = lowered(OpInfo::aggregation_max(), Strategy::ThreadVertex);
    if let Stmt::Store(s) = ir.body.last_mut().unwrap() {
        s.update = UpdateKind::AtomicCasMax;
    }
    assert_parity(&ir, "spurious CAS atomics");
    assert!(
        canonical_ir(lint_ir(&ir)).contains(&Verdict::AtomicContradiction {
            verdict_atomic: false,
            body_atomic: true,
        })
    );
}

#[test]
fn degraded_operand_load_agrees() {
    // The lowering bug the text lint was built for: an operand load
    // degraded to the NULL placeholder, leaving a residual 0.0f and an
    // unread A buffer.
    let mut ir = lowered(OpInfo::aggregation_sum(), Strategy::ThreadEdge);
    if let Stmt::Store(s) = ir.body.last_mut().unwrap() {
        s.value = Value::Zero;
    }
    assert_parity(&ir, "degraded operand load");
    let verdicts = canonical_ir(lint_ir(&ir));
    assert!(verdicts.contains(&Verdict::ResidualNullLoad { occurrences: 1 }));
    assert!(verdicts.contains(&Verdict::UnusedOperandBuffer { operand: "A" }));
}

#[test]
fn nothing_to_audit_agrees() {
    // A store-less IR cannot be rendered, so the parity pair here is the
    // legacy MissingKernel (no `__global__` in the source) against the IR
    // MissingStore — both canonicalize to "nothing to audit".
    let ir = lowered(OpInfo::aggregation_sum(), Strategy::ThreadVertex);
    let text = legacy_text_lint("// nothing here\n", &ir.op, &ir.parallel);
    assert_eq!(text, vec![Verdict::NothingToAudit]);
    let mut gutted = ir;
    gutted.body.retain(|s| !matches!(s, Stmt::Store(_)));
    let typed = canonical_ir(lint_ir(&gutted));
    assert!(typed.contains(&Verdict::NothingToAudit));
}
