//! Integration tests for the analyzer: the full registry sweep (reduced
//! configuration) plus the tricky cases called out in the design notes —
//! `mean` gather over zero-in-degree vertices, float max/min CAS-loop
//! emission under warp-edge, and edge-output operators never needing
//! atomics.

use ugrapher_analyze::{analyze_registry, analyze_static, cross_check, SweepConfig};
use ugrapher_core::abstraction::{registry, OpInfo, TensorType};
use ugrapher_core::exec::{execute, OpOperands};
use ugrapher_core::schedule::{ParallelInfo, Strategy};
use ugrapher_graph::generate::uniform_random;
use ugrapher_graph::Graph;
use ugrapher_sim::DeviceConfig;
use ugrapher_tensor::Tensor2;

/// The acceptance gate in miniature: every Table 4 registry operator under
/// all four strategies (× grouping/tiling variants) must pass the static
/// pass and the dynamic write-set cross-check with zero findings.
#[test]
fn registry_sweep_is_clean_on_quick_config() {
    let report = analyze_registry(&DeviceConfig::v100(), &SweepConfig::quick());
    assert!(report.is_clean(), "sweep findings: {:#?}", report.findings);
    let cfg = SweepConfig::quick();
    let variants = cfg.groupings.len() * cfg.tilings.len();
    assert_eq!(
        report.combos_checked,
        registry::all_valid_ops().len() * Strategy::ALL.len() * variants
    );
    // Racing schedules exist (edge-parallel reductions at small grouping)
    // and every one of their witnesses was confirmed by the trace.
    assert!(report.static_witnesses > 0);
    assert_eq!(report.static_witnesses, report.dynamic_conflicts);
}

/// `mean` on a graph with zero-in-degree vertices: the analyzer accepts
/// the triple under every strategy, the cross-check agrees with the
/// verdict, and the functional result is an all-zero row (not NaN from a
/// 0/0 division).
#[test]
fn mean_gather_handles_zero_in_degree_vertices() {
    // Vertex 0 receives every edge; vertices 2.. receive none.
    let n = 10usize;
    let src: Vec<u32> = (1..n as u32).collect();
    let dst = vec![0u32; n - 1];
    let g = Graph::from_edges(n, src, dst).unwrap();
    let op = OpInfo::aggregation_mean();
    let d = DeviceConfig::v100();
    for strategy in Strategy::ALL {
        let p = ParallelInfo::basic(strategy);
        let rep = analyze_static(&g, op, p, 4).unwrap();
        assert!(rep.codegen.is_empty(), "{strategy:?}: {:?}", rep.codegen);
        cross_check(&g, op, p, 4, &d).unwrap();
    }
    let x = Tensor2::from_fn(n, 4, |r, _| r as f32);
    let out = execute(&g, &op, &OpOperands::single(&x)).unwrap();
    // Mean over the 9 in-neighbors {1..9} of vertex 0 is 5.
    assert_eq!(out.row(0), &[5.0; 4]);
    for v in 1..n {
        assert_eq!(out.row(v), &[0.0; 4], "isolated vertex {v} must be zero");
        assert!(out.row(v).iter().all(|x| x.is_finite()));
    }
}

/// Float max/min under warp-edge need the compare-and-swap loop: the
/// emitted source must contain it, the lint must accept it as the atomic
/// form, and the trace must show contended-but-protected words.
#[test]
fn float_max_min_use_cas_loop_under_warp_edge() {
    let g = uniform_random(80, 640, 21); // mean degree 8: witnesses exist
    let d = DeviceConfig::v100();
    for op in [OpInfo::aggregation_max(), aggregation_min()] {
        let p = ParallelInfo::basic(Strategy::WarpEdge);
        let rep = analyze_static(&g, op, p, 8).unwrap();
        assert!(rep.race.needs_atomic);
        assert!(rep.cuda.contains("atomicCAS"), "{op:?}");
        assert!(rep.cuda.contains("__float_as_int"), "{op:?}");
        assert!(
            !rep.cuda.contains("atomicAdd"),
            "{op:?}: max/min must not emit atomicAdd"
        );
        assert!(rep.codegen.is_empty(), "{op:?}: {:?}", rep.codegen);
        let cc = cross_check(&g, op, p, 8, &d).unwrap();
        assert!(cc.observed_conflicts(), "{op:?}: witness must reproduce");
    }
}

fn aggregation_min() -> OpInfo {
    OpInfo {
        gather_op: ugrapher_core::abstraction::GatherOp::Min,
        ..OpInfo::aggregation_max()
    }
}

/// Every edge-output (C = Edge) registry operator: never atomic under any
/// strategy, statically and dynamically.
#[test]
fn edge_output_operators_never_need_atomics() {
    let g = uniform_random(60, 480, 22);
    let d = DeviceConfig::v100();
    for op in registry::all_valid_ops()
        .into_iter()
        .filter(|o| o.c == TensorType::Edge)
    {
        for strategy in Strategy::ALL {
            let p = ParallelInfo::basic(strategy);
            let rep = analyze_static(&g, op, p, 4).unwrap();
            assert!(!rep.race.needs_atomic, "{op:?} {strategy:?}");
            assert!(rep.race.witness.is_none(), "{op:?} {strategy:?}");
            assert!(!rep.plan.needs_atomic, "{op:?} {strategy:?}");
            let body = rep.cuda.split("__global__").nth(1).unwrap();
            assert!(!body.contains("atomic"), "{op:?} {strategy:?}");
            let cc = cross_check(&g, op, p, 4, &d).unwrap();
            assert!(!cc.observed_conflicts(), "{op:?} {strategy:?}");
        }
    }
}
