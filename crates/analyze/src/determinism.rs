//! Verifier pass 2: the determinism classifier.
//!
//! Labels each lowered `(operator, schedule)` kernel by whether repeated
//! executions produce bitwise-identical output. The classification is a
//! function of the store's update form alone:
//!
//! * exclusive writes and single-owner sequential reductions walk each
//!   destination's CSR slot range in a fixed order — **bitwise
//!   deterministic**;
//! * atomic CAS float max/min interleave, but max/min over finite floats
//!   is insensitive to update order — **bitwise deterministic** despite
//!   the contention;
//! * atomic float sum/mean (`atomicAdd`) is the one order-*dependent*
//!   case: float addition is non-associative, so the bitwise result
//!   depends on the interleaving the hardware schedules.
//!
//! The label is surfaced on
//! [`RobustnessReport`](ugrapher_core::robustness::RobustnessReport) by
//! the runtime and counted per class in the sweep's metrics.

use ugrapher_core::ir::{classify_determinism, DeterminismClass, KernelIr, UpdateKind};

/// The classifier's outcome for one lowered kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismReport {
    /// The class (see [`DeterminismClass`]).
    pub class: DeterminismClass,
    /// The derivation: which update form produced the label.
    pub reason: String,
}

impl std::fmt::Display for DeterminismReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.class.label(), self.reason)
    }
}

/// Classifies a lowered kernel, with the derivation spelled out.
pub fn classify(ir: &KernelIr) -> DeterminismReport {
    let update = ir.store().update;
    let class = classify_determinism(ir);
    let reason = match update {
        UpdateKind::Assign => {
            "exclusive overwrite: each output element has exactly one writer".to_owned()
        }
        UpdateKind::Accumulate | UpdateKind::MaxInPlace | UpdateKind::MinInPlace => {
            "single-owner reduction in fixed CSR slot order".to_owned()
        }
        UpdateKind::AtomicCasMax | UpdateKind::AtomicCasMin => {
            "atomic CAS max/min: contended, but max/min is order-insensitive on finite floats"
                .to_owned()
        }
        UpdateKind::AtomicAdd => {
            "atomicAdd of floats: non-associative addition under hardware-scheduled interleaving"
                .to_owned()
        }
    };
    DeterminismReport { class, reason }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrapher_core::abstraction::{OpInfo, TensorType};
    use ugrapher_core::exec::{execute, OpOperands};
    use ugrapher_core::lower::lower;
    use ugrapher_core::plan::KernelPlan;
    use ugrapher_core::schedule::{ParallelInfo, Strategy};
    use ugrapher_graph::Graph;
    use ugrapher_tensor::Tensor2;

    fn ir(op: OpInfo, strategy: Strategy, nv: usize, ne: usize) -> KernelIr {
        let plan = KernelPlan::generate(op, ParallelInfo::basic(strategy), nv, ne, 8).unwrap();
        lower(&plan).unwrap()
    }

    /// A graph where vertex 0 has zero in-degree (all edges point at 1/2).
    fn graph_with_isolated_dst() -> Graph {
        Graph::from_edges(4, vec![0, 0, 3, 3], vec![1, 2, 1, 2]).unwrap()
    }

    #[test]
    fn mean_over_zero_in_degree_vertices_is_classified_and_stable() {
        let g = graph_with_isolated_dst();
        assert_eq!(g.in_degree(0), 0, "vertex 0 must be isolated");
        let mean = OpInfo::aggregation_mean();
        // Vertex-parallel mean: sequential single-owner reduction even
        // when some destinations have nothing to average over.
        let k = ir(
            mean,
            Strategy::ThreadVertex,
            g.num_vertices(),
            g.num_edges(),
        );
        let rep = classify(&k);
        assert_eq!(rep.class, DeterminismClass::Sequential);
        assert!(rep.class.bitwise_deterministic());
        // Edge-parallel mean races through atomicAdd: order-dependent.
        let k = ir(mean, Strategy::ThreadEdge, g.num_vertices(), g.num_edges());
        assert_eq!(classify(&k).class, DeterminismClass::AtomicOrderDependent);
        // The zero-in-degree row itself is well-defined (0, not NaN), and
        // repeated functional evaluations are bitwise identical.
        let x = Tensor2::from_fn(4, 8, |r, c| (r * 8 + c) as f32 + 0.5);
        let a = execute(&g, &mean, &OpOperands::single(&x)).unwrap();
        let b = execute(&g, &mean, &OpOperands::single(&x)).unwrap();
        assert_eq!(a.row(0), &[0.0; 8], "empty mean is zero, not NaN");
        assert!(a
            .row(1)
            .iter()
            .zip(b.row(1))
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn float_max_min_cas_under_warp_edge_is_order_insensitive() {
        let k = ir(OpInfo::aggregation_max(), Strategy::WarpEdge, 300, 2400);
        let rep = classify(&k);
        assert_eq!(rep.class, DeterminismClass::AtomicOrderInsensitive);
        assert!(
            rep.class.bitwise_deterministic(),
            "CAS max/min is contended yet bitwise stable"
        );
        assert!(rep.reason.contains("order-insensitive"));
        assert_eq!(k.store().update, UpdateKind::AtomicCasMax);
        // Min gathers exist in the registry; classify them too.
        let min_op = ugrapher_core::abstraction::registry::all_valid_ops()
            .into_iter()
            .find(|o| {
                o.gather_op == ugrapher_core::abstraction::GatherOp::Min && o.c == TensorType::DstV
            })
            .expect("registry has a min reduction");
        let k = ir(min_op, Strategy::WarpEdge, 300, 2400);
        assert_eq!(k.store().update, UpdateKind::AtomicCasMin);
        assert_eq!(classify(&k).class, DeterminismClass::AtomicOrderInsensitive);
    }

    #[test]
    fn edge_output_operators_are_never_atomic_and_always_deterministic() {
        for op in ugrapher_core::abstraction::registry::all_valid_ops()
            .into_iter()
            .filter(|o| o.c == TensorType::Edge)
        {
            for strategy in Strategy::ALL {
                let k = ir(op, strategy, 300, 2400);
                assert!(
                    !k.store().update.is_atomic(),
                    "{op:?} {strategy:?}: edge rows have exactly one writer"
                );
                assert!(!k.store_races());
                assert_eq!(classify(&k).class, DeterminismClass::Sequential);
            }
        }
    }

    #[test]
    fn every_registry_combo_gets_a_label() {
        for op in ugrapher_core::abstraction::registry::all_valid_ops() {
            for strategy in Strategy::ALL {
                let k = ir(op, strategy, 300, 2400);
                let rep = classify(&k);
                assert!(!rep.reason.is_empty());
                // Order-dependence appears only with atomics.
                if rep.class == DeterminismClass::AtomicOrderDependent {
                    assert!(k.store().update.is_atomic());
                    assert!(k.store_races());
                }
            }
        }
    }
}
